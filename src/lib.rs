//! Umbrella crate for the Clouds reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency root. See the individual crates for real APIs.
#![forbid(unsafe_code)]

pub use clouds;
pub use clouds_chaos as chaos;
pub use clouds_codec as codec;
pub use clouds_consistency as consistency;
pub use clouds_dsm as dsm;
pub use clouds_naming as naming;
pub use clouds_pet as pet;
pub use clouds_ra as ra;
pub use clouds_ratp as ratp;
pub use clouds_simnet as simnet;
