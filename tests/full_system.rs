//! Whole-system integration tests spanning every crate: the complete
//! Clouds environment of Figure 3 — workstations, compute servers, data
//! servers — with naming, terminal I/O, consistency and PET running
//! together on one simulated Ethernet.

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_consistency::ConsistencyRuntime;
use clouds_pet::{resilient_invoke, PetOptions, ReplicatedObject};
use clouds_simnet::CostModel;

/// An inventory ledger used by the end-to-end scenario.
struct Ledger;

impl ObjectCode for Ledger {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        ctx.persistent().write_u64(0, 0)
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "record" => {
                let (item, qty): (String, u64) = decode_args(args)?;
                let count = ctx.persistent().read_u64(0)?;
                // Entries stored on the persistent heap as a linked list.
                let node = ctx.persistent().heap_alloc(64)?;
                let head = ctx.persistent().read_u64(8)?;
                let encoded = clouds_codec::to_bytes(&(item.clone(), qty))
                    .map_err(|e| CloudsError::BadArguments(e.to_string()))?;
                ctx.persistent().heap_write(node, &(encoded.len() as u64).to_le_bytes())?;
                ctx.persistent().heap_write(node + 8, &encoded)?;
                ctx.persistent().heap_write(node + 48, &head.to_le_bytes())?;
                ctx.persistent().write_u64(8, node)?;
                ctx.persistent().write_u64(0, count + 1)?;
                ctx.write_line(&format!("recorded {qty} × {item}"))?;
                encode_result(&(count + 1))
            }
            "count" => encode_result(&ctx.persistent().read_u64(0)?),
            "dump" => {
                let mut items = Vec::new();
                let mut cursor = ctx.persistent().read_u64(8)?;
                while cursor != 0 {
                    let len = u64::from_le_bytes(
                        ctx.persistent().heap_read(cursor, 8)?.try_into().expect("8"),
                    );
                    let raw = ctx.persistent().heap_read(cursor + 8, len as usize)?;
                    let (item, qty): (String, u64) = clouds_codec::from_bytes(&raw)
                        .map_err(|e| CloudsError::BadArguments(e.to_string()))?;
                    items.push((item, qty));
                    cursor = u64::from_le_bytes(
                        ctx.persistent().heap_read(cursor + 48, 8)?.try_into().expect("8"),
                    );
                }
                encode_result(&items)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }

    fn label(&self, entry: &str) -> OperationLabel {
        match entry {
            "record" => OperationLabel::Gcp,
            _ => OperationLabel::S,
        }
    }
}

#[test]
fn complete_environment_scenario() {
    // A realistic small site: 2 compute servers, 2 data servers, 1 user
    // workstation, full cost model (virtual time flows like 1988).
    let cluster = Cluster::builder()
        .compute_servers(2)
        .data_servers(2)
        .workstations(1)
        .build()
        .unwrap();
    cluster.register_class("ledger", Ledger).unwrap();
    let runtime = ConsistencyRuntime::install(&cluster);
    let ws = cluster.workstation(0);

    // The user creates the ledger from the workstation and names it.
    ws.create_object("ledger", "Inventory").unwrap();
    let obj = ws.naming().lookup("Inventory").unwrap();

    // Interactive s-thread usage with terminal output.
    let t = ws.spawn(
        "Inventory",
        "record",
        clouds::encode_args(&("widgets".to_string(), 3u64)).unwrap(),
    );
    let tid = t.id();
    t.join().unwrap();
    assert_eq!(ws.output(tid), "recorded 3 × widgets\n");

    // Labeled (gcp) records through the consistency runtime from both
    // compute servers.
    for (i, item) in ["bolts", "nuts", "gears"].iter().enumerate() {
        runtime
            .invoke_labeled(
                cluster.compute(i % 2),
                obj,
                "record",
                &clouds::encode_args(&(item.to_string(), (i as u64 + 1) * 10)).unwrap(),
            )
            .unwrap();
    }

    let count: u64 = ws.run_wait_decode("Inventory", "count", &()).unwrap();
    assert_eq!(count, 4);

    // Crash-restart the second data server; persistent state survives.
    cluster.crash_data_server(1);
    cluster.restart_data_server(1);
    let dump: Vec<(String, u64)> = ws.run_wait_decode("Inventory", "dump", &()).unwrap();
    assert_eq!(dump.len(), 4);
    assert!(dump.iter().any(|(n, q)| n == "widgets" && *q == 3));
    assert!(dump.iter().any(|(n, q)| n == "gears" && *q == 30));

    // Virtual time moved like an actual 1988 run: whole scenario took
    // hundreds of milliseconds of modeled time.
    let vt = cluster
        .network()
        .clock(cluster.compute(0).node_id())
        .unwrap()
        .now();
    assert!(vt > clouds_simnet::Vt::from_millis(100), "vt {vt}");
}

#[test]
fn pet_and_consistency_compose() {
    let cluster = Cluster::builder()
        .compute_servers(3)
        .data_servers(3)
        .workstations(0)
        .cost_model(CostModel::zero())
        .build()
        .unwrap();
    cluster.register_class("ledger", Ledger).unwrap();
    let _runtime = ConsistencyRuntime::install(&cluster);

    let robj = ReplicatedObject::create(cluster.compute(0), "ledger", 3).unwrap();
    let outcome = resilient_invoke(
        cluster.computes(),
        &robj,
        "count",
        &clouds::encode_args(&()).unwrap(),
        &PetOptions {
            pets: 2,
            ..PetOptions::default()
        },
    )
    .unwrap();
    let count: u64 = decode_args(&outcome.result).unwrap();
    assert_eq!(count, 0);

    // A write with one dead replica home still reaches a quorum.
    cluster.crash_data_server(2);
    let outcome = resilient_invoke(
        cluster.computes(),
        &robj,
        "record",
        &clouds::encode_args(&("anvils".to_string(), 1u64)).unwrap(),
        &PetOptions {
            pets: 2,
            ..PetOptions::default()
        },
    )
    .unwrap();
    assert!(outcome.committed_replicas.len() >= 2);
}

#[test]
fn name_space_is_cluster_wide() {
    let cluster = Cluster::builder()
        .compute_servers(2)
        .data_servers(1)
        .workstations(2)
        .cost_model(CostModel::zero())
        .build()
        .unwrap();
    cluster.register_class("ledger", Ledger).unwrap();

    // Created at workstation 0…
    cluster.workstation(0).create_object("ledger", "Shared").unwrap();
    // …visible by name at workstation 1 and both compute servers.
    let from_ws1 = cluster.workstation(1).naming().lookup("Shared").unwrap();
    let from_cs0 = cluster.compute(0).naming().lookup("Shared").unwrap();
    let from_cs1 = cluster.compute(1).naming().lookup("Shared").unwrap();
    assert_eq!(from_ws1, from_cs0);
    assert_eq!(from_cs0, from_cs1);

    // And the listing shows it.
    let names = cluster.naming().list("").unwrap();
    assert!(names.iter().any(|(n, _)| n == "Shared"));
}

#[test]
fn threads_span_machines_with_same_identity() {
    struct Echo;
    impl ObjectCode for Echo {
        fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
            match entry {
                "whoami" => encode_result(&(ctx.thread_id().0, ctx.node_id().0)),
                "relay" => {
                    let (node, target): (u32, SysName) = decode_args(args)?;
                    ctx.invoke_remote(
                        clouds_simnet::NodeId(node),
                        target,
                        "whoami",
                        &clouds::encode_args(&())?,
                    )
                }
                other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
            }
        }
    }

    let cluster = Cluster::builder()
        .compute_servers(2)
        .data_servers(1)
        .workstations(0)
        .cost_model(CostModel::zero())
        .build()
        .unwrap();
    cluster.register_class("echo", Echo).unwrap();
    let obj = cluster.compute(0).create_object("echo", Some("E"), None).unwrap();

    let remote_node = cluster.compute(1).node_id().0;
    let (tid, node): (u64, u32) = decode_args(
        &cluster
            .compute(0)
            .invoke(
                obj,
                "relay",
                &clouds::encode_args(&(remote_node, obj)).unwrap(),
                None,
            )
            .unwrap(),
    )
    .unwrap();
    // The remote segment of the computation ran on the other machine but
    // under the SAME Clouds thread identity (§4.2: a thread is a
    // collection of Clouds processes across nodes).
    assert_eq!(node, remote_node);
    let origin = clouds::ThreadId(tid).origin_node();
    assert_eq!(origin, cluster.compute(0).node_id());
}
