//! Offline shim exposing the `parking_lot` API subset used by this
//! workspace, backed by `std::sync`. Poisoning is swallowed (parking_lot
//! has none): a panicking holder does not poison the lock for others.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Mutual exclusion primitive (shim over [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock (shim over [`std::sync::RwLock`]).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    // std::sync::Condvar panics when used with two different mutexes;
    // parking_lot supports it. We keep std semantics (single mutex),
    // which every caller in this workspace satisfies.
    _single: AtomicBool,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar::default()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
        self._single.store(true, Ordering::Relaxed);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        match Instant::now().checked_add(timeout) {
            Some(deadline) => self.wait_until(guard, deadline),
            None => {
                self.wait(guard);
                WaitTimeoutResult { timed_out: false }
            }
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut done = pair.0.lock();
        while !*done {
            pair.1.wait(&mut done);
        }
        assert!(*done);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
