//! Offline shim for the `bytes` crate: cheaply cloneable immutable byte
//! buffers (`Bytes`) and a growable builder (`BytesMut`). Clones share
//! one allocation; `slice`/`split_to` adjust offsets without copying.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (copied once into a shared allocation).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-buffer sharing this buffer's storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == &other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
    }

    #[test]
    fn equality_ignores_offsets() {
        let a = Bytes::from(vec![9, 7, 7]).slice(1..);
        let b = Bytes::from(vec![7, 7]);
        assert_eq!(a, b);
    }

    #[test]
    fn builder_freezes() {
        let mut m = BytesMut::with_capacity(4);
        m.extend_from_slice(b"ab");
        m.extend_from_slice(b"cd");
        assert_eq!(&m.freeze()[..], b"abcd");
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![b'a', 0]);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
