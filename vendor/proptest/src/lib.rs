//! Offline proptest shim.
//!
//! Differences from real proptest, by design: inputs are sampled from a
//! fixed seed (fully deterministic run-to-run), there is no shrinking, and
//! `prop_assert*` panics immediately instead of collecting a counterexample.
//! The surface mirrors what this workspace's tests use.

use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Test-runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Unrolls `depth` levels of recursion over the leaf strategy, then
    /// samples uniformly across the levels, so both shallow and deep values
    /// appear.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("at least the leaf level").clone();
            levels.push(recurse(prev).boxed());
        }
        Union { arms: levels }.boxed()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Type-erased, shareable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// `any::<T>()` support.
pub trait ArbitrarySample {
    fn arbitrary_sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_word {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary_sample(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_word!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_wide {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary_sample(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t
            }
        }
    )*};
}

impl_arbitrary_wide!(u128, i128);

impl ArbitrarySample for bool {
    fn arbitrary_sample(rng: &mut StdRng) -> Self {
        rng.gen_bool(0.5)
    }
}

impl ArbitrarySample for f64 {
    fn arbitrary_sample(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        // Mostly finite values of wildly varying magnitude, occasional
        // exact bit patterns (which may be inf/NaN) to exercise edge cases.
        if rng.gen_bool(0.1) {
            f64::from_bits(rng.next_u64())
        } else {
            let mag = rng.gen_range(-300i32..300) as f64;
            let mantissa: f64 = rng.gen();
            (mantissa * 2.0 - 1.0) * 10f64.powi(mag as i32)
        }
    }
}

impl ArbitrarySample for f32 {
    fn arbitrary_sample(rng: &mut StdRng) -> Self {
        f64::arbitrary_sample(rng) as f32
    }
}

impl ArbitrarySample for char {
    fn arbitrary_sample(rng: &mut StdRng) -> Self {
        char::from_u32(rng.gen_range(0u32..0xD800)).unwrap_or('\u{FFFD}')
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary_sample(rng)
    }
}

pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String patterns: only the `.{lo,hi}` form this workspace uses — a
/// printable-ASCII string whose length is uniform in `[lo, hi]`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let spec = self
            .strip_prefix(".{")
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or_else(|| panic!("string strategy {self:?}: only `.{{lo,hi}}` is supported"));
        let (lo, hi) = spec
            .split_once(',')
            .map(|(a, b)| (a.trim().parse::<usize>(), b.trim().parse::<usize>()))
            .and_then(|(a, b)| Some((a.ok()?, b.ok()?)))
            .unwrap_or_else(|| panic!("string strategy {self:?}: bad length bounds"));
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| rng.gen_range(0x20u32..0x7F) as u8 as char).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (T0 0, T1 1),
    (T0 0, T1 1, T2 2),
    (T0 0, T1 1, T2 2, T3 3),
    (T0 0, T1 1, T2 2, T3 3, T4 4),
    (T0 0, T1 1, T2 2, T3 3, T4 4, T5 5),
}

// ---------------------------------------------------------------------------
// Collections / option
// ---------------------------------------------------------------------------

/// Element-count bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

pub mod collection {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = BTreeSet::new();
            // Duplicates don't grow the set; bound the draw count so small
            // element domains can't loop forever.
            for _ in 0..(target * 8 + 16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = BTreeMap::new();
            for _ in 0..(target * 8 + 16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.sample(rng), self.value.sample(rng));
            }
            out
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fixed base seed; each case advances the single RNG stream, so every run
/// of the binary sees the same inputs.
pub const BASE_SEED: u64 = 0xC10D_5EED;

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64($crate::BASE_SEED);
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $($crate::Strategy::sample(&($strat), &mut __rng),)+
                );
                let __run = || { $body };
                __run();
                let _ = __case;
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
pub use rand as __rand;

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };

    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_collections(
            v in prop::collection::vec(0u32..10, 0..5),
            s in ".{0,8}",
            opt in prop::option::of(0i32..3),
            set in prop::collection::btree_set(0u64..64, 1..8),
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(s.len() <= 8);
            if let Some(x) = opt {
                prop_assert!((0..3).contains(&x));
            }
            prop_assert!(!set.is_empty() && set.len() < 8);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(
            t in any::<u8>().prop_map(Tree::Leaf).boxed().prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            })
        ) {
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(children) => {
                        1 + children.iter().map(depth).max().unwrap_or(0)
                    }
                }
            }
            prop_assert!(depth(&t) <= 4);
        }
    }

    proptest! {
        #[test]
        fn oneof_mixes_arms(x in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&x));
        }
    }
}
