//! Deserialization half of the mini-serde data model.

use std::fmt;
use std::marker::PhantomData;

/// Error raised by a `Deserializer` or a `Deserialize` impl.
pub trait Error: Sized + std::error::Error {
    fn custom<T: fmt::Display>(msg: T) -> Self;

    fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {exp}"))
    }

    fn invalid_value(unexp: Unexpected<'_>, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid value: {unexp}, expected {exp}"))
    }

    fn unknown_variant(variant: &str, _expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!("unknown variant `{variant}`"))
    }

    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }
}

/// A snippet of unexpected input, for error messages.
#[derive(Clone, Copy, Debug)]
pub enum Unexpected<'a> {
    Bool(bool),
    Unsigned(u64),
    Signed(i64),
    Float(f64),
    Char(char),
    Str(&'a str),
    Bytes(&'a [u8]),
    Unit,
    Option,
    Other(&'a str),
}

impl fmt::Display for Unexpected<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unexpected::Bool(v) => write!(f, "boolean `{v}`"),
            Unexpected::Unsigned(v) => write!(f, "integer `{v}`"),
            Unexpected::Signed(v) => write!(f, "integer `{v}`"),
            Unexpected::Float(v) => write!(f, "float `{v}`"),
            Unexpected::Char(v) => write!(f, "character `{v}`"),
            Unexpected::Str(v) => write!(f, "string {v:?}"),
            Unexpected::Bytes(_) => f.write_str("byte array"),
            Unexpected::Unit => f.write_str("unit value"),
            Unexpected::Option => f.write_str("optional value"),
            Unexpected::Other(v) => f.write_str(v),
        }
    }
}

/// What a `Visitor` was expecting, for error messages.
pub trait Expected {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, T: Visitor<'de>> Expected for T {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Expected for &str {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        formatter.write_str(self)
    }
}

impl fmt::Display for dyn Expected + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, f)
    }
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point; the stateless case is
/// `PhantomData<T>`.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

macro_rules! visit_default_err {
    ($($method:ident: $ty:ty => $variant:ident as $cast:ty,)*) => {$(
        fn $method<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
            Err(E::invalid_value(Unexpected::$variant(v as $cast), &self))
        }
    )*};
}

/// Walks the value produced by a `Deserializer`.
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::invalid_value(Unexpected::Bool(v), &self))
    }

    visit_default_err! {
        visit_i8: i8 => Signed as i64,
        visit_i16: i16 => Signed as i64,
        visit_i32: i32 => Signed as i64,
        visit_i64: i64 => Signed as i64,
        visit_u8: u8 => Unsigned as u64,
        visit_u16: u16 => Unsigned as u64,
        visit_u32: u32 => Unsigned as u64,
        visit_u64: u64 => Unsigned as u64,
        visit_f32: f32 => Float as f64,
        visit_f64: f64 => Float as f64,
        visit_char: char => Char as char,
    }

    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_value(Unexpected::Other("i128"), &self))
    }

    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_value(Unexpected::Other("u128"), &self))
    }

    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::invalid_value(Unexpected::Str(v), &self))
    }

    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        Err(E::invalid_value(Unexpected::Bytes(v), &self))
    }

    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_value(Unexpected::Option, &self))
    }

    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::invalid_value(Unexpected::Option, &self))
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_value(Unexpected::Unit, &self))
    }

    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::invalid_value(Unexpected::Other("newtype struct"), &self))
    }

    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::invalid_value(Unexpected::Other("sequence"), &self))
    }

    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::invalid_value(Unexpected::Other("map"), &self))
    }

    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::invalid_value(Unexpected::Other("enum"), &self))
    }
}

/// A serde data format that can deserialize any supported data structure.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_i64(visitor)
    }
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_u64(visitor)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the data of an already-identified enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T)
        -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Efficiently discards a value of any shape.
#[derive(Clone, Copy, Debug, Default)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("anything at all")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_bytes<E: Error>(self, _: &[u8]) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(V)
    }
}

macro_rules! forward_to_any {
    ($($method:ident)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }
    )*};
}

pub mod value {
    //! Minimal `de::value`: deserializers over primitive values, used by
    //! formats to hand a variant index to `EnumAccess::variant_seed`.

    use super::*;

    /// A `Deserializer` holding one `u32`.
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        pub fn new(value: u32) -> Self {
            U32Deserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        // Everything funnels into `visit_u32`: the sole payload is the u32.
        forward_to_any! {
            deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
            deserialize_i64 deserialize_i128 deserialize_u8 deserialize_u16
            deserialize_u32 deserialize_u64 deserialize_u128 deserialize_f32
            deserialize_f64 deserialize_char deserialize_str deserialize_string
            deserialize_bytes deserialize_byte_buf deserialize_option
            deserialize_unit deserialize_seq deserialize_map
            deserialize_identifier deserialize_ignored_any
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_deserialize_prim {
    ($($ty:ty, $deserialize:ident, $visit:ident, $expect:literal;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$deserialize(V)
            }
        }
    )*};
}

impl_deserialize_prim! {
    bool, deserialize_bool, visit_bool, "a boolean";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    i128, deserialize_i128, visit_i128, "an i128";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    u128, deserialize_u128, visit_u128, "a u128";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
    char, deserialize_char, visit_char, "a character";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v)
                    .map_err(|_| E::invalid_value(Unexpected::Unsigned(v), &"a usize"))
            }
        }
        deserializer.deserialize_u64(V)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::invalid_value(Unexpected::Signed(v), &"an isize"))
            }
        }
        deserializer.deserialize_i64(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct RV<T, E>(PhantomData<(T, E)>);
        impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Visitor<'de> for RV<T, E> {
            type Value = Result<T, E>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a Result")
            }
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
                let (idx, variant): (u32, A::Variant) = data.variant()?;
                match idx {
                    0 => variant.newtype_variant().map(Ok),
                    1 => variant.newtype_variant().map(Err),
                    other => Err(A::Error::custom(format_args!(
                        "invalid Result variant index {other}"
                    ))),
                }
            }
        }
        deserializer.deserialize_enum("Result", &["Ok", "Err"], RV(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::rc::Rc::new)
    }
}

use std::hash::Hash;

macro_rules! impl_deserialize_seq {
    ($ty:ident <T $(: $bound:ident $(+ $bound2:ident)*)?>, $insert:ident, $expect:literal) => {
        impl<'de, T: Deserialize<'de> $(+ $bound $(+ $bound2)*)?> Deserialize<'de>
            for std::collections::$ty<T>
        {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct SV<T>(PhantomData<T>);
                impl<'de, T: Deserialize<'de> $(+ $bound $(+ $bound2)*)?> Visitor<'de> for SV<T> {
                    type Value = std::collections::$ty<T>;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut out = std::collections::$ty::new();
                        while let Some(item) = seq.next_element()? {
                            out.$insert(item);
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_seq(SV(PhantomData))
            }
        }
    };
}

impl_deserialize_seq!(VecDeque<T>, push_back, "a sequence");
impl_deserialize_seq!(BTreeSet<T: Ord>, insert, "a set");
impl_deserialize_seq!(HashSet<T: Eq + Hash>, insert, "a set");

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SV<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for SV<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(SV(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MV<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MV<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MV(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MV<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Visitor<'de> for MV<K, V> {
            type Value = std::collections::HashMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MV(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct AV<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for AV<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(item) => out.push(item),
                        None => return Err(A::Error::invalid_length(i, &self)),
                    }
                }
                out.try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, AV(PhantomData))
    }
}

macro_rules! impl_deserialize_tuple {
    ($($len:expr => ($($name:ident),+),)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TV<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TV<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut idx = 0usize;
                        $(
                            let $name: $name = match seq.next_element()? {
                                Some(v) => v,
                                None => return Err(A::Error::invalid_length(idx, &self)),
                            };
                            idx += 1;
                        )+
                        let _ = idx;
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TV(PhantomData))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    1 => (T0),
    2 => (T0, T1),
    3 => (T0, T1, T2),
    4 => (T0, T1, T2, T3),
    5 => (T0, T1, T2, T3, T4),
    6 => (T0, T1, T2, T3, T4, T5),
    7 => (T0, T1, T2, T3, T4, T5, T6),
    8 => (T0, T1, T2, T3, T4, T5, T6, T7),
}
