//! Offline mini-serde: a faithful subset of serde's data-model traits,
//! sufficient for the Clouds codec (a non-self-describing binary format)
//! and the `#[derive(Serialize, Deserialize)]` types in this workspace.
//!
//! What is intentionally absent relative to real serde: zero-copy
//! deserialization lifetimes beyond `'de` plumbing, field attributes
//! (`#[serde(...)]`), self-describing formats (`deserialize_any` works
//! only if the format implements it), and the full `de::value` module.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros (same names as the traits; separate namespace).
pub use serde_derive::{Deserialize, Serialize};
