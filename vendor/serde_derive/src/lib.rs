//! `#[derive(Serialize, Deserialize)]` without syn/quote.
//!
//! Parses the item's token stream directly. Supported shapes — exactly the
//! ones appearing in this workspace: unit structs, named-field structs, and
//! enums whose variants are unit, tuple, or struct-like. No generics, no
//! `#[serde(...)]` attributes. Variant indices are declaration order, which
//! matches what the Clouds codec encodes on the wire.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

type Peekable = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs_and_vis(iter: &mut Peekable) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };

    let kind = match kw.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            other => panic!("serde_derive: unsupported struct shape for `{name}`: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("serde_derive: `{other}` items are not supported"),
    };

    Item { name, kind }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                iter.next(); // ':'
                skip_type_until_comma(&mut iter);
            }
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
    }
    names
}

/// Consume a type, stopping after the top-level `,` (or at end of stream).
/// `<`/`>` depth tracking keeps commas inside generic arguments from
/// terminating the field early.
fn skip_type_until_comma(iter: &mut Peekable) {
    let mut depth = 0i32;
    loop {
        let stop = match iter.peek() {
            None => true,
            Some(TokenTree::Punct(p)) => {
                let c = p.as_char();
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    depth -= 1;
                }
                c == ',' && depth == 0
            }
            Some(_) => false,
        };
        if stop {
            iter.next(); // the comma itself (no-op at end of stream)
            break;
        }
        iter.next();
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut pending = false;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            if c == '<' {
                depth += 1;
            } else if c == '>' {
                depth -= 1;
            } else if c == ',' && depth == 0 {
                if pending {
                    count += 1;
                    pending = false;
                }
                continue;
            }
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let mut data = VariantData::Unit;
        let mut consume_group = false;
        if let Some(TokenTree::Group(g)) = iter.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    data = VariantData::Tuple(count_tuple_fields(g.stream()));
                    consume_group = true;
                }
                Delimiter::Brace => {
                    data = VariantData::Struct(parse_named_fields(g.stream()));
                    consume_group = true;
                }
                _ => {}
            }
        }
        if consume_group {
            iter.next();
        }
        // Discriminants don't occur here; next is `,` or end of stream.
        loop {
            match iter.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, data });
    }
    variants
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::UnitStruct => {
            let _ = write!(body, "__serializer.serialize_unit_struct(\"{name}\")");
        }
        Kind::Struct(fields) => {
            let n = fields.len();
            let _ = write!(
                body,
                "let mut __s = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {n})?;"
            );
            for f in fields {
                let _ = write!(
                    body,
                    "::serde::ser::SerializeStruct::serialize_field(&mut __s, \"{f}\", &self.{f})?;"
                );
            }
            body.push_str("::serde::ser::SerializeStruct::end(__s)");
        }
        Kind::Enum(variants) => {
            body.push_str("match self {");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.data {
                    VariantData::Unit => {
                        let _ = write!(
                            body,
                            "{name}::{vname} => __serializer.serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),"
                        );
                    }
                    VariantData::Tuple(1) => {
                        let _ = write!(
                            body,
                            "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant(\"{name}\", {idx}u32, \"{vname}\", __f0),"
                        );
                    }
                    VariantData::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let _ = write!(
                            body,
                            "{name}::{vname}({}) => {{ let mut __s = __serializer.serialize_tuple_variant(\"{name}\", {idx}u32, \"{vname}\", {n})?;",
                            pats.join(", ")
                        );
                        for p in &pats {
                            let _ = write!(
                                body,
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __s, {p})?;"
                            );
                        }
                        body.push_str("::serde::ser::SerializeTupleVariant::end(__s) }");
                    }
                    VariantData::Struct(fields) => {
                        let n = fields.len();
                        let _ = write!(
                            body,
                            "{name}::{vname} {{ {} }} => {{ let mut __s = __serializer.serialize_struct_variant(\"{name}\", {idx}u32, \"{vname}\", {n})?;",
                            fields.join(", ")
                        );
                        for f in fields {
                            let _ = write!(
                                body,
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __s, \"{f}\", {f})?;"
                            );
                        }
                        body.push_str("::serde::ser::SerializeStructVariant::end(__s) }");
                    }
                }
            }
            body.push('}');
        }
    }

    format!(
        "const _: () = {{\n\
         impl ::serde::Serialize for {name} {{\n\
           fn serialize<__S>(&self, __serializer: __S) -> ::std::result::Result<__S::Ok, __S::Error>\n\
           where __S: ::serde::Serializer {{ {body} }}\n\
         }}\n\
         }};"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// `field: <take next seq element or error>` constructor arms; types are
/// recovered by inference from the constructor, so the derive never needs to
/// parse them.
fn seq_constructor(target: &str, fields: &[String], named: bool) -> String {
    let mut out = String::new();
    let _ = write!(out, "::std::result::Result::Ok({target}");
    out.push_str(if named { " { " } else { "(" });
    for (i, f) in fields.iter().enumerate() {
        if named {
            let _ = write!(out, "{f}: ");
        }
        let _ = write!(
            out,
            "match ::serde::de::SeqAccess::next_element(&mut __seq)? {{ \
             ::std::option::Option::Some(__v) => __v, \
             ::std::option::Option::None => return ::std::result::Result::Err(::serde::de::Error::invalid_length({i}, &self)) }}, "
        );
    }
    out.push_str(if named { "})" } else { "))" });
    out
}

fn seq_visitor(vis_name: &str, value_ty: &str, expecting: &str, constructor: &str) -> String {
    format!(
        "struct {vis_name};\n\
         impl<'de> ::serde::de::Visitor<'de> for {vis_name} {{\n\
           type Value = {value_ty};\n\
           fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{ __f.write_str(\"{expecting}\") }}\n\
           fn visit_seq<__A>(self, mut __seq: __A) -> ::std::result::Result<{value_ty}, __A::Error>\n\
           where __A: ::serde::de::SeqAccess<'de> {{ {constructor} }}\n\
         }}"
    )
}

fn str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{s}\"")).collect();
    format!("&[{}]", quoted.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
               type Value = {name};\n\
               fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{ __f.write_str(\"unit struct {name}\") }}\n\
               fn visit_unit<__E: ::serde::de::Error>(self) -> ::std::result::Result<{name}, __E> {{ ::std::result::Result::Ok({name}) }}\n\
             }}\n\
             __deserializer.deserialize_unit_struct(\"{name}\", __Visitor)"
        ),
        Kind::Struct(fields) => {
            let visitor = seq_visitor(
                "__Visitor",
                name,
                &format!("struct {name}"),
                &seq_constructor(name, fields, true),
            );
            format!(
                "{visitor}\n__deserializer.deserialize_struct(\"{name}\", {}, __Visitor)",
                str_list(fields)
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.data {
                    VariantData::Unit => {
                        let _ = write!(
                            arms,
                            "{idx}u32 => {{ ::serde::de::VariantAccess::unit_variant(__variant)?; ::std::result::Result::Ok({name}::{vname}) }}"
                        );
                    }
                    VariantData::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{idx}u32 => ::std::result::Result::map(::serde::de::VariantAccess::newtype_variant(__variant), {name}::{vname}),"
                        );
                    }
                    VariantData::Tuple(n) => {
                        let placeholders: Vec<String> =
                            (0..*n).map(|i| format!("__t{i}")).collect();
                        let visitor = seq_visitor(
                            &format!("__V{idx}"),
                            name,
                            &format!("tuple variant {name}::{vname}"),
                            &seq_constructor(&format!("{name}::{vname}"), &placeholders, false),
                        );
                        let _ = write!(
                            arms,
                            "{idx}u32 => {{ {visitor}\n::serde::de::VariantAccess::tuple_variant(__variant, {n}, __V{idx}) }}"
                        );
                    }
                    VariantData::Struct(fields) => {
                        let visitor = seq_visitor(
                            &format!("__V{idx}"),
                            name,
                            &format!("struct variant {name}::{vname}"),
                            &seq_constructor(&format!("{name}::{vname}"), fields, true),
                        );
                        let _ = write!(
                            arms,
                            "{idx}u32 => {{ {visitor}\n::serde::de::VariantAccess::struct_variant(__variant, {}, __V{idx}) }}",
                            str_list(fields)
                        );
                    }
                }
            }
            let variant_names: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                   type Value = {name};\n\
                   fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{ __f.write_str(\"enum {name}\") }}\n\
                   fn visit_enum<__A>(self, __data: __A) -> ::std::result::Result<{name}, __A::Error>\n\
                   where __A: ::serde::de::EnumAccess<'de> {{\n\
                     let (__idx, __variant): (u32, __A::Variant) = ::serde::de::EnumAccess::variant(__data)?;\n\
                     match __idx {{ {arms}\n\
                       _ => ::std::result::Result::Err(::serde::de::Error::custom(\"variant index out of range for {name}\")) }}\n\
                   }}\n\
                 }}\n\
                 __deserializer.deserialize_enum(\"{name}\", {}, __Visitor)",
                str_list(&variant_names)
            )
        }
    };

    format!(
        "const _: () = {{\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
           fn deserialize<__D>(__deserializer: __D) -> ::std::result::Result<Self, __D::Error>\n\
           where __D: ::serde::Deserializer<'de> {{\n{body}\n}}\n\
         }}\n\
         }};"
    )
}
