//! Offline shim for the `rand` crate. Deterministic, seedable PRNG
//! (SplitMix64 core feeding a xorshift mix) with the `Rng`/`SeedableRng`
//! API subset this workspace uses. Not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range or "standard"
/// distribution.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "empty sample range");
                let span = (high_excl as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling; bias is negligible for
                // simulation purposes (span << 2^64).
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high_excl - low)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sample range");
                if hi < <$t>::MAX {
                    <$t>::sample_range(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    <$t>::sample_range(rng, lo - 1, hi).max(lo)
                } else {
                    // Full domain.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_inclusive_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level sampling methods, available on any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Sample a value with the standard distribution for its type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic PRNG of this shim (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(4u32..=4);
            assert_eq!(y, 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
