//! Offline shim providing `crossbeam::channel` — a multi-producer,
//! multi-consumer FIFO channel with cloneable receivers — implemented on
//! `std::sync` primitives. Only the surface used by this workspace.

pub mod channel;
