//! MPMC channels: `unbounded` and `bounded`, with cloneable `Sender` and
//! `Receiver` handles, matching the `crossbeam-channel` API subset the
//! Clouds reproduction uses.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity; the value is handed back.
    Full(T),
    /// Every receiver has been dropped; the value is handed back.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => {
                f.write_str("sending on a disconnected channel")
            }
        }
    }
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or the last sender leaves.
    recv_ready: Condvar,
    /// Signalled when space frees up or the last receiver leaves.
    send_ready: Condvar,
    capacity: Option<usize>,
}

/// Sending half; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half; cloneable (MPMC: each value goes to exactly one
/// receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded channel; `send` blocks while `cap` items are queued.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
        capacity,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().expect("channel lock").senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().expect("channel lock");
        state.senders -= 1;
        if state.senders == 0 {
            self.chan.recv_ready.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().expect("channel lock").receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().expect("channel lock");
        state.receivers -= 1;
        if state.receivers == 0 {
            self.chan.send_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Sender<T> {
    /// Send a value, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .chan
                        .send_ready
                        .wait(state)
                        .expect("channel lock");
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.recv_ready.notify_one();
        Ok(())
    }

    /// Send without blocking: fail instead of waiting on a full
    /// bounded channel.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.chan.state.lock().expect("channel lock");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.chan.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.recv_ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receive a value, blocking until one arrives or all senders leave.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the channel is empty and all senders dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock().expect("channel lock");
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.chan.send_ready.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.recv_ready.wait(state).expect("channel lock");
        }
    }

    /// Receive without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally all senders left.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.chan.state.lock().expect("channel lock");
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.chan.send_ready.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a real-time timeout.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] when all senders left and the
    /// queue is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now().checked_add(timeout);
        let mut state = self.chan.state.lock().expect("channel lock");
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.chan.send_ready.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(deadline) = deadline else {
                state = self.chan.recv_ready.wait(state).expect("channel lock");
                continue;
            };
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self
                .chan
                .recv_ready
                .wait_timeout(state, remaining)
                .expect("channel lock");
            state = guard;
            if result.timed_out() && state.queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.chan.state.lock().expect("channel lock").queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cloned_receivers_split_the_stream() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.try_recv().unwrap();
        let b = rx2.try_recv().unwrap();
        assert_eq!(a + b, 3);
        assert_eq!(rx1.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(2).unwrap())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn try_send_fails_fast_on_full_or_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 3);
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 100 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
