//! Offline criterion shim. Runs each benchmark `sample_size` times, prints
//! min / mean wall-clock per iteration (plus throughput when configured).
//! No statistics, plots, or baseline comparison — just honest timings so
//! `cargo bench` works without the real crate.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // `CRITERION_SAMPLE_SIZE` overrides every group's sample count —
        // CI quick mode sets it low to bound wall-clock.
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.sample_size)
            .max(1);
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
        };
        // Warm-up pass, unmeasured.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..sample_size {
            f(&mut bencher);
        }
        let per_iter: Vec<Duration> = bencher.samples;
        if per_iter.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return self;
        }
        let min = per_iter.iter().min().copied().unwrap_or_default();
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        let mut line = format!(
            "{}/{id}: min {:?}, mean {:?} over {} samples",
            self.name,
            min,
            mean,
            per_iter.len()
        );
        if let Some(t) = self.throughput {
            let secs = mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(b) => {
                    line.push_str(&format!(", {:.1} MiB/s", b as f64 / secs / (1 << 20) as f64));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!(", {:.0} elem/s", n as f64 / secs));
                }
            }
        }
        println!("{line}");
        // `CRITERION_JSON=path` appends one estimate object per bench as
        // a JSON line, the machine-readable counterpart of the printed
        // report (real criterion's estimates.json stand-in).
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            use std::io::Write;
            let throughput_bytes = match self.throughput {
                Some(Throughput::Bytes(b)) => b,
                _ => 0,
            };
            let record = format!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"min_ns\":{},\"mean_ns\":{},\"samples\":{},\"throughput_bytes\":{}}}\n",
                self.name,
                id,
                min.as_nanos(),
                mean.as_nanos(),
                per_iter.len(),
                throughput_bytes,
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| file.write_all(record.as_bytes()));
        }
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one batch of the closure and records the per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        std::hint::black_box(out);
        self.samples.push(elapsed);
    }
}

/// Re-export so user code written against real criterion's `black_box`
/// keeps compiling.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
