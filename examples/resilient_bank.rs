//! Reliability end to end (§5.2): gcp-threads for atomicity, PET for
//! forward progress under failures.
//!
//! A triplicated `vault` object receives deposits as resilient
//! computations while we crash machines under it:
//!
//! * a data server dies *before* a deposit (static failure),
//! * a compute server dies *during* a deposit (dynamic failure),
//!
//! and the vault never loses or double-applies a deposit.
//!
//! Run with: `cargo run --example resilient_bank`

use clouds::prelude::*;
use clouds_consistency::ConsistencyRuntime;
use clouds_pet::{read_any, resilient_invoke, PetOptions, ReplicatedObject};

struct Vault;

impl ObjectCode for Vault {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "deposit" => {
                let amount: u64 = decode_args(args)?;
                // A little work so dynamic failures can hit mid-flight.
                std::thread::sleep(std::time::Duration::from_millis(30));
                let balance = ctx.persistent().read_u64(0)? + amount;
                let count = ctx.persistent().read_u64(8)? + 1;
                ctx.persistent().write_u64(0, balance)?;
                ctx.persistent().write_u64(8, count)?;
                encode_result(&balance)
            }
            "audit" => {
                let balance = ctx.persistent().read_u64(0)?;
                let count = ctx.persistent().read_u64(8)?;
                encode_result(&(balance, count))
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn main() -> Result<(), CloudsError> {
    let cluster = Cluster::builder()
        .compute_servers(3)
        .data_servers(3)
        .workstations(0)
        .build()?;
    cluster.register_class("vault", Vault)?;
    let _runtime = ConsistencyRuntime::install(&cluster);

    println!("creating a triplicated vault (one replica per data server)");
    let vault = ReplicatedObject::create(cluster.compute(0), "vault", 3)?;
    let opts = PetOptions {
        pets: 3,
        ..PetOptions::default()
    };

    println!("deposit #1: healthy cluster");
    let o1 = resilient_invoke(
        cluster.computes(),
        &vault,
        "deposit",
        &encode_args(&100u64)?,
        &opts,
    )?;
    println!("  {o1}");

    println!("deposit #2: data server 2 is DOWN before we start (static failure)");
    cluster.crash_data_server(2);
    let o2 = resilient_invoke(
        cluster.computes(),
        &vault,
        "deposit",
        &encode_args(&50u64)?,
        &opts,
    )?;
    println!("  {o2}");
    cluster.restart_data_server(2);

    println!("deposit #3: compute server 0 crashes MID-RUN (dynamic failure)");
    let net = cluster.network().clone();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(10));
        net.crash(clouds_simnet::NodeId(1));
    });
    let o3 = resilient_invoke(
        cluster.computes(),
        &vault,
        "deposit",
        &encode_args(&25u64)?,
        &opts,
    )?;
    killer.join().expect("killer thread");
    println!("  {o3}");

    // Audit from a surviving compute server via any current replica.
    let audit = read_any(
        cluster.compute(1),
        &vault,
        "audit",
        &encode_args(&())?,
        &o3.committed_replicas,
    )?;
    let (balance, count): (u64, u64) = decode_args(&audit)?;
    println!("audit: balance={balance} after {count} deposits");
    assert_eq!(balance, 175, "every deposit applied exactly once");
    assert_eq!(count, 3);
    println!("three failures survived; the money is all there.");
    Ok(())
}
