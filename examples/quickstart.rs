//! Quickstart: the paper's §2.4 rectangle example, end to end.
//!
//! Builds a small Clouds configuration (one compute server, one data
//! server, one user workstation), loads the `rectangle` class, creates
//! the instance `Rect01`, sets its size and computes its area — the
//! paper's `printf("%d\n", rect.area())` printing 50.
//!
//! Run with: `cargo run --example quickstart`

use clouds::prelude::*;

/// ```text
/// clouds_class rectangle;
///   int x, y;              // persistent data for rect.
///   entry rectangle;       // constructor
///   entry size (int x, y); // set size of rect.
///   entry int area ();     // return area of rect.
/// end_class
/// ```
struct Rectangle;

impl ObjectCode for Rectangle {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        // `entry rectangle` — the constructor: a fresh unit square.
        ctx.persistent().write_i32(0, 1)?;
        ctx.persistent().write_i32(4, 1)
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "size" => {
                let (x, y): (i32, i32) = decode_args(args)?;
                ctx.persistent().write_i32(0, x)?;
                ctx.persistent().write_i32(4, y)?;
                encode_result(&())
            }
            "area" => {
                let x = ctx.persistent().read_i32(0)?;
                let y = ctx.persistent().read_i32(4)?;
                encode_result(&(x * y))
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn main() -> Result<(), CloudsError> {
    println!("booting Clouds: 1 compute server, 1 data server, 1 workstation");
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(1)
        .build()?;

    println!("loading class `rectangle` (the CC++ compiler's job in 1988)");
    cluster.register_class("rectangle", Rectangle)?;

    let ws = cluster.workstation(0);
    println!("creating instance and registering user name Rect01");
    let sysname = ws.create_object("rectangle", "Rect01")?;
    println!("  sysname = {sysname}");

    // rect.bind("Rect01"); rect.size(5, 10); printf("%d\n", rect.area());
    ws.run_wait("Rect01", "size", &(5i32, 10i32))?;
    let area: i32 = ws.run_wait_decode("Rect01", "area", &())?;
    println!("Rect01.area() = {area}");
    assert_eq!(area, 50);

    // The object is persistent: a brand-new thread, later, still sees it.
    let again: i32 = ws.run_wait_decode("Rect01", "area", &())?;
    assert_eq!(again, 50);
    println!("persistent across threads; virtual time spent: {}", {
        let clock = cluster
            .network()
            .clock(cluster.compute(0).node_id())
            .expect("compute clock");
        clock.now()
    });
    Ok(())
}
