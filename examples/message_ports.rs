//! "No Messages?" (§2.3 box): message passing simulated by a buffer
//! object.
//!
//! "The duality of messages and shared memory is well known. If
//! desired, a buffer object with the send and receive invocations
//! defined on it can serve as a port structure between two (or more)
//! communicating processes."
//!
//! A `port` object implements a bounded FIFO in persistent memory,
//! guarded by two distributed semaphores (slots/items) plus a mutex
//! semaphore — the classic producer/consumer, except the "port" is an
//! ordinary persistent object and the processes are Clouds threads on
//! different machines.
//!
//! Run with: `cargo run --example message_ports`

use clouds::prelude::*;

const CAPACITY: u64 = 8;
// Layout: head(0) tail(8) sem-ids at 64.. ; slots of 256 bytes at 512..
const SLOT: u64 = 256;
const SLOTS_AT: u64 = 512;

struct Port;

impl ObjectCode for Port {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        let slots = ctx.sem_create(CAPACITY as u32)?; // free slots
        let items = ctx.sem_create(0)?; // filled slots
        let mutex = ctx.sem_create(1)?;
        ctx.persistent().write_value(64, &(slots, items, mutex))?;
        Ok(())
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        let (slots, items, mutex): (SysName, SysName, SysName) =
            ctx.persistent().read_value(64)?;
        match entry {
            "send" => {
                let message: Vec<u8> = decode_args(args)?;
                if message.len() as u64 > SLOT - 8 {
                    return Err(CloudsError::Application("message too large".into()));
                }
                if !ctx.sem_p(slots, 30_000)? {
                    return Err(CloudsError::Application("port full".into()));
                }
                ctx.sem_p(mutex, 30_000)?;
                let tail = ctx.persistent().read_u64(8)?;
                let at = SLOTS_AT + (tail % CAPACITY) * SLOT;
                ctx.persistent().write_u64(at, message.len() as u64)?;
                ctx.persistent().write_bytes(at + 8, &message)?;
                ctx.persistent().write_u64(8, tail + 1)?;
                ctx.sem_v(mutex)?;
                ctx.sem_v(items)?;
                encode_result(&())
            }
            "receive" => {
                if !ctx.sem_p(items, 30_000)? {
                    return Err(CloudsError::Application("port empty".into()));
                }
                ctx.sem_p(mutex, 30_000)?;
                let head = ctx.persistent().read_u64(0)?;
                let at = SLOTS_AT + (head % CAPACITY) * SLOT;
                let len = ctx.persistent().read_u64(at)?;
                let message = ctx.persistent().read_bytes(at + 8, len as usize)?;
                ctx.persistent().write_u64(0, head + 1)?;
                ctx.sem_v(mutex)?;
                ctx.sem_v(slots)?;
                encode_result(&message)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn main() -> Result<(), CloudsError> {
    let cluster = Cluster::builder()
        .compute_servers(2)
        .data_servers(1)
        .workstations(0)
        .build()?;
    cluster.register_class("port", Port)?;
    let port = cluster.create_object("port", "Mailbox")?;

    // Producer on compute server 0, consumer on compute server 1:
    // message passing through shared persistent memory.
    let producer_cs = cluster.compute(0).clone();
    let producer = std::thread::spawn(move || -> Result<(), CloudsError> {
        for i in 0..20u32 {
            let message = format!("message #{i}").into_bytes();
            producer_cs.invoke(port, "send", &encode_args(&message)?, None)?;
        }
        Ok(())
    });

    let consumer_cs = cluster.compute(1).clone();
    let consumer = std::thread::spawn(move || -> Result<Vec<String>, CloudsError> {
        let mut received = Vec::new();
        for _ in 0..20 {
            let bytes: Vec<u8> = decode_args(&consumer_cs.invoke(
                port,
                "receive",
                &encode_args(&())?,
                None,
            )?)?;
            received.push(String::from_utf8_lossy(&bytes).to_string());
        }
        Ok(received)
    });

    producer.join().expect("producer thread")?;
    let received = consumer.join().expect("consumer thread")?;
    for (i, message) in received.iter().enumerate() {
        assert_eq!(message, &format!("message #{i}"), "FIFO order");
    }
    println!("passed {} messages node1 -> node2 in FIFO order", received.len());
    println!("first: {:?}", received.first().expect("nonempty"));
    println!("last:  {:?}", received.last().expect("nonempty"));
    println!("messages, without messages: a buffer object and semaphores.");
    Ok(())
}
