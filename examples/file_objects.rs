//! "No Files?" (§2.3 box): files simulated by persistent objects.
//!
//! "Files can be simulated by objects that store byte sequential data
//! and have read and write invocations defined to access this data.
//! Such an object will look like a file, even though the operating
//! system does not explicitly support files."
//!
//! This example builds a `file` class (read/write/append/len) on the
//! persistent heap plus a `directory` class mapping names to file
//! objects — a minimal "file system" in ~100 lines of object code,
//! with no file system anywhere in the OS.
//!
//! Run with: `cargo run --example file_objects`

use clouds::prelude::*;

/// Byte-sequential storage: data[0] = length, bytes at HDR..
struct FileObject;

const HDR: u64 = 8;

impl ObjectCode for FileObject {
    fn data_segment_len(&self) -> u64 {
        64 * 1024
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "write" => {
                // write(offset, bytes): overwrite/extend at offset.
                let (offset, bytes): (u64, Vec<u8>) = decode_args(args)?;
                ctx.persistent().write_bytes(HDR + offset, &bytes)?;
                let end = offset + bytes.len() as u64;
                if end > ctx.persistent().read_u64(0)? {
                    ctx.persistent().write_u64(0, end)?;
                }
                encode_result(&end)
            }
            "append" => {
                let bytes: Vec<u8> = decode_args(args)?;
                let len = ctx.persistent().read_u64(0)?;
                ctx.persistent().write_bytes(HDR + len, &bytes)?;
                ctx.persistent().write_u64(0, len + bytes.len() as u64)?;
                encode_result(&(len + bytes.len() as u64))
            }
            "read" => {
                let (offset, want): (u64, u64) = decode_args(args)?;
                let len = ctx.persistent().read_u64(0)?;
                let take = want.min(len.saturating_sub(offset));
                let bytes = ctx.persistent().read_bytes(HDR + offset, take as usize)?;
                encode_result(&bytes)
            }
            "len" => encode_result(&ctx.persistent().read_u64(0)?),
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

/// A directory: name → file sysname, stored with `write_value`.
struct Directory;

impl ObjectCode for Directory {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        // The whole table lives at offset 0 as one encoded value — fine
        // for a demo directory.
        let table: Vec<(String, SysName)> = ctx.persistent().read_value(0).unwrap_or_default();
        match entry {
            "create" => {
                let name: String = decode_args(args)?;
                if table.iter().any(|(n, _)| *n == name) {
                    return Err(CloudsError::Application(format!("{name} exists")));
                }
                // Objects creating objects (§3.1).
                let file = ctx.create_object("file", None)?;
                let mut table = table;
                table.push((name, file));
                ctx.persistent().write_value(0, &table)?;
                encode_result(&file)
            }
            "lookup" => {
                let name: String = decode_args(args)?;
                match table.iter().find(|(n, _)| *n == name) {
                    Some((_, file)) => encode_result(file),
                    None => Err(CloudsError::Application(format!("{name} not found"))),
                }
            }
            "ls" => {
                let names: Vec<String> = table.into_iter().map(|(n, _)| n).collect();
                encode_result(&names)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn main() -> Result<(), CloudsError> {
    let cluster = Cluster::builder()
        .compute_servers(2)
        .data_servers(2)
        .workstations(0)
        .build()?;
    cluster.register_class("file", FileObject)?;
    cluster.register_class("directory", Directory)?;

    let cs0 = cluster.compute(0);
    let cs1 = cluster.compute(1);
    let dir = cluster.create_object("directory", "RootDir")?;

    println!("mkdir-less world: creating files inside the directory object");
    let readme: SysName = decode_args(&cs0.invoke(
        dir,
        "create",
        &encode_args(&"README".to_string())?,
        None,
    )?)?;
    cs0.invoke(
        readme,
        "append",
        &encode_args(&b"Clouds has no file system.\n".to_vec())?,
        None,
    )?;
    cs0.invoke(
        readme,
        "append",
        &encode_args(&b"This file is a persistent object.\n".to_vec())?,
        None,
    )?;

    // Another compute server resolves the same file through the
    // directory and reads it via DSM.
    let found: SysName = decode_args(&cs1.invoke(
        dir,
        "lookup",
        &encode_args(&"README".to_string())?,
        None,
    )?)?;
    assert_eq!(found, readme);
    let len: u64 = decode_args(&cs1.invoke(found, "len", &encode_args(&())?, None)?)?;
    let bytes: Vec<u8> = decode_args(&cs1.invoke(
        found,
        "read",
        &encode_args(&(0u64, len))?,
        None,
    )?)?;
    print!("{}", String::from_utf8_lossy(&bytes));

    // Random-access write, like pwrite(2).
    cs1.invoke(found, "write", &encode_args(&(0u64, b"CLOUDS".to_vec()))?, None)?;
    let head: Vec<u8> = decode_args(&cs0.invoke(
        found,
        "read",
        &encode_args(&(0u64, 6u64))?,
        None,
    )?)?;
    assert_eq!(&head, b"CLOUDS");

    let names: Vec<String> = decode_args(&cs0.invoke(dir, "ls", &encode_args(&())?, None)?)?;
    println!("ls RootDir -> {names:?}");
    println!("files, without a file system: just persistent objects.");
    Ok(())
}
