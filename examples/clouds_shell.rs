//! The Clouds shell (§3.1): "the user interface to Clouds is provided
//! by a suite of programs that run on top of Unix on Sun workstations
//! … including the Clouds user shell".
//!
//! Runs a scripted session against a live cluster, then (if stdin is
//! interactive) drops into a read-eval loop.
//!
//! Run with: `cargo run --example clouds_shell`

use clouds::prelude::*;
use clouds::Shell;
use std::io::{BufRead, IsTerminal, Write};

/// A shell-friendly counter: entry points take `Vec<String>`.
struct Counter;

impl ObjectCode for Counter {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "add" => {
                let words: Vec<String> = decode_args(args)?;
                let delta: u64 = words
                    .first()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or(1);
                let v = ctx.persistent().read_u64(0)? + delta;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&format!("counter = {v}"))
            }
            "show" => {
                let v = ctx.persistent().read_u64(0)?;
                ctx.write_line(&format!("counter holds {v}"))?;
                encode_result(&String::new())
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn main() -> Result<(), CloudsError> {
    let cluster = Cluster::builder()
        .compute_servers(2)
        .data_servers(1)
        .workstations(1)
        .build()?;
    cluster.register_class("counter", Counter)?;
    let shell = Shell::new(cluster.workstation(0), cluster.registry().names());

    println!("Clouds shell — scripted session:");
    for line in [
        "help",
        "classes",
        "create counter C1",
        "invoke C1.add 5",
        "invoke C1.add 37",
        "invoke C1.show",
        "ls",
    ] {
        println!("clouds$ {line}");
        match shell.exec(line) {
            Ok(output) => print!("{output}"),
            Err(e) => println!("error: {e}"),
        }
    }

    if std::io::stdin().is_terminal() {
        println!("\ninteractive mode (ctrl-d to exit):");
        let stdin = std::io::stdin();
        loop {
            print!("clouds$ ");
            std::io::stdout().flush().expect("stdout");
            let mut line = String::new();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            match shell.exec(line.trim()) {
                Ok(output) => print!("{output}"),
                Err(e) => println!("error: {e}"),
            }
        }
    }
    Ok(())
}
