//! A persistent Lisp environment (§5.1 "Lisp Programming Environment").
//!
//! "If the address space containing a Lisp environment can be made
//! persistent, it has several advantages, including not having to
//! save/load the environment on startup and shutdown. Further, by
//! invoking entry points in remote Lisp interpreters it is possible to
//! allow inter-environment operations … Other features that naturally
//! arise due to the distributed nature of the system include concurrent
//! evaluations and load sharing."
//!
//! The `lisp-env` class is a tiny s-expression interpreter whose global
//! environment lives in the object's persistent memory: definitions
//! survive across threads, "sessions", and machine crashes, with no
//! save/load step anywhere. `(remote <EnvName> <expr>)` evaluates a
//! subexpression in *another* environment object — possibly homed on a
//! different data server — implementing the paper's inter-environment
//! operations.
//!
//! Run with: `cargo run --example persistent_lisp`

use clouds::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------- lisp

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Num(i64),
    Sym(String),
    List(Vec<Expr>),
}

fn tokenize(src: &str) -> Vec<String> {
    src.replace('(', " ( ")
        .replace(')', " ) ")
        .split_whitespace()
        .map(str::to_string)
        .collect()
}

fn parse(tokens: &mut Vec<String>) -> Result<Expr, String> {
    if tokens.is_empty() {
        return Err("unexpected end of input".into());
    }
    let token = tokens.remove(0);
    match token.as_str() {
        "(" => {
            let mut items = Vec::new();
            while tokens.first().map(String::as_str) != Some(")") {
                items.push(parse(tokens)?);
            }
            tokens.remove(0); // ')'
            Ok(Expr::List(items))
        }
        ")" => Err("unexpected )".into()),
        t => Ok(t
            .parse::<i64>()
            .map(Expr::Num)
            .unwrap_or_else(|_| Expr::Sym(t.to_string()))),
    }
}

type Env = HashMap<String, i64>;

/// Evaluate with `remote` subexpressions delegated to the callback.
fn eval(
    expr: &Expr,
    env: &mut Env,
    remote: &mut dyn FnMut(&str, &Expr) -> Result<i64, String>,
) -> Result<i64, String> {
    match expr {
        Expr::Num(n) => Ok(*n),
        Expr::Sym(s) => env.get(s).copied().ok_or(format!("unbound symbol {s}")),
        Expr::List(items) => {
            let Some(Expr::Sym(head)) = items.first() else {
                return Err("expected operator".into());
            };
            match head.as_str() {
                "define" => {
                    let [_, Expr::Sym(name), value] = &items[..] else {
                        return Err("usage: (define name expr)".into());
                    };
                    let v = eval(value, env, remote)?;
                    env.insert(name.clone(), v);
                    Ok(v)
                }
                "remote" => {
                    let [_, Expr::Sym(target), sub] = &items[..] else {
                        return Err("usage: (remote EnvName expr)".into());
                    };
                    remote(target, sub)
                }
                op @ ("+" | "-" | "*" | "if") => {
                    let args: Result<Vec<i64>, String> = items[1..]
                        .iter()
                        .map(|e| eval(e, env, remote))
                        .collect();
                    let args = args?;
                    match op {
                        "+" => Ok(args.iter().sum()),
                        "-" => Ok(args
                            .split_first()
                            .map(|(h, t)| t.iter().fold(*h, |a, b| a - b))
                            .unwrap_or(0)),
                        "*" => Ok(args.iter().product()),
                        _ => Ok(if args.first().copied().unwrap_or(0) != 0 {
                            args.get(1).copied().unwrap_or(0)
                        } else {
                            args.get(2).copied().unwrap_or(0)
                        }),
                    }
                }
                other => Err(format!("unknown operator {other}")),
            }
        }
    }
}

fn unparse(e: &Expr) -> String {
    match e {
        Expr::Num(n) => n.to_string(),
        Expr::Sym(s) => s.clone(),
        Expr::List(items) => format!(
            "({})",
            items.iter().map(unparse).collect::<Vec<_>>().join(" ")
        ),
    }
}

// ------------------------------------------------------- clouds object

struct LispEnv;

impl ObjectCode for LispEnv {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "eval" => {
                let src: String = decode_args(args)?;
                // The environment is persistent state: loaded from the
                // object, mutated, stored back. No files, no save/load.
                let mut env: Env = ctx.persistent().read_value(0).unwrap_or_default();
                let mut tokens = tokenize(&src);
                let expr =
                    parse(&mut tokens).map_err(CloudsError::Application)?;
                let mut remote_calls: Vec<(String, Expr)> = Vec::new();
                // First pass gathers remote calls so we can route them
                // through `ctx` (the closure cannot borrow ctx mutably
                // while eval borrows env).
                let result = {
                    let mut pending = |target: &str, sub: &Expr| {
                        remote_calls.push((target.to_string(), sub.clone()));
                        Err("__remote__".to_string())
                    };
                    eval(&expr, &mut env, &mut pending)
                };
                let value = match result {
                    Ok(v) => v,
                    Err(marker) if marker == "__remote__" => {
                        // Re-evaluate with real remote dispatch.
                        let mut remote = |target: &str, sub: &Expr| -> Result<i64, String> {
                            let sysname =
                                ctx.bind(target).map_err(|e| e.to_string())?;
                            let sub_src = unparse(sub);
                            let reply = ctx
                                .invoke(
                                    sysname,
                                    "eval",
                                    &clouds::encode_args(&sub_src)
                                        .map_err(|e| e.to_string())?,
                                )
                                .map_err(|e| e.to_string())?;
                            clouds::decode_args::<i64>(&reply).map_err(|e| e.to_string())
                        };
                        eval(&expr, &mut env, &mut remote)
                            .map_err(CloudsError::Application)?
                    }
                    Err(e) => return Err(CloudsError::Application(e)),
                };
                ctx.persistent().write_value(0, &env)?;
                encode_result(&value)
            }
            "bindings" => {
                let env: Env = ctx.persistent().read_value(0).unwrap_or_default();
                let mut names: Vec<(String, i64)> = env.into_iter().collect();
                names.sort();
                encode_result(&names)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }

    fn data_segment_len(&self) -> u64 {
        4 * clouds_ra::PAGE_SIZE as u64
    }
}

fn main() -> Result<(), CloudsError> {
    let cluster = Cluster::builder()
        .compute_servers(2)
        .data_servers(2)
        .workstations(1)
        .build()?;
    cluster.register_class("lisp-env", LispEnv)?;
    let ws = cluster.workstation(0);
    ws.create_object("lisp-env", "Alice")?;
    ws.create_object("lisp-env", "Bob")?;

    let run = |env: &str, src: &str| -> Result<i64, CloudsError> {
        let v: i64 = ws.run_wait_decode(env, "eval", &src.to_string())?;
        println!("{env}> {src}  =>  {v}");
        Ok(v)
    };

    println!("two persistent Lisp environments on different data servers:\n");
    run("Alice", "(define x 40)")?;
    run("Alice", "(+ x 2)")?;
    run("Bob", "(define y 100)")?;

    // Inter-environment operation: Alice asks Bob for y.
    let v = run("Alice", "(+ x (remote Bob y))")?;
    assert_eq!(v, 140);

    // "No save/load on startup and shutdown": crash the compute servers
    // (the interpreters); the environments live on.
    println!("\ncrash-restarting both compute servers (no save, no load)...");
    cluster.crash_compute(0);
    cluster.crash_compute(1);
    cluster.restart_compute(0);
    cluster.restart_compute(1);

    let v = run("Alice", "(* x 2)")?;
    assert_eq!(v, 80, "x survived the crash in persistent memory");
    let bindings: Vec<(String, i64)> = ws.run_wait_decode("Alice", "bindings", &())?;
    println!("\nAlice's environment after reboot: {bindings:?}");
    Ok(())
}
