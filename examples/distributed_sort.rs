//! Distributed programming over DSM (§5.1).
//!
//! "Using the DSM feature of Clouds, centralized algorithms can be run
//! as distributed computations with the expectation of achieving
//! speedup. For example, sorting algorithms can use multiple threads to
//! perform a sort, with each thread being executed at a different
//! compute server, even though the data itself is contained in one
//! object. … those parts of the data that are in use at a node migrate
//! to that node automatically."
//!
//! One `sortable` object holds an array of u64 in its persistent data
//! segment. Worker threads on different compute servers each sort one
//! chunk in place; a final merge pass runs on one server. The DSM pages
//! the chunks to whichever node is working on them.
//!
//! Run with: `cargo run --release --example distributed_sort`

use clouds::prelude::*;
use clouds_simnet::Vt;

/// Modeled CPU cost of one comparison/swap step on a Sun-3-class
/// machine. Sorting is *charged* to virtual time — computation was not
/// free in 1988 — which is what makes distributing it worthwhile.
const SORT_STEP: Vt = Vt::from_micros(40);

const N: usize = 4096; // u64 elements = 4 pages exactly
/// The array starts page-aligned at offset 0, so a worker's chunk is a
/// whole number of pages: workers never share pages, and the DSM moves
/// each page exactly where it is used (the paper's "those parts of the
/// data that are in use at a node migrate to that node").
const HDR: u64 = 0;

struct Sortable;

impl ObjectCode for Sortable {
    fn data_segment_len(&self) -> u64 {
        HDR + 8 * N as u64
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "fill" => {
                // Deterministic pseudo-random contents.
                let seed: u64 = decode_args(args)?;
                let mut x = seed | 1;
                let mut data = Vec::with_capacity(8 * N);
                for _ in 0..N {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    data.extend_from_slice(&x.to_le_bytes());
                }
                ctx.persistent().write_bytes(HDR, &data)?;
                encode_result(&())
            }
            "load_chunk" => {
                // Phase one: fault the chunk's pages to this node. The
                // driver joins all loads before starting the sorts, so
                // the parallel compute phase starts from aligned virtual
                // clocks (otherwise real-time thread skew lets one
                // worker's charged clock leak into another's page
                // fetches through the data-server clock).
                let (start, len): (u64, u64) = decode_args(args)?;
                let _ = ctx.persistent().read_bytes(HDR + 8 * start, 8 * len as usize)?;
                encode_result(&())
            }
            "sort_chunk" => {
                let (start, len): (u64, u64) = decode_args(args)?;
                let raw = ctx.persistent().read_bytes(HDR + 8 * start, 8 * len as usize)?;
                let mut values: Vec<u64> = raw
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect();
                values.sort_unstable();
                // Charge n·log2(n) comparison steps of modeled CPU time.
                let n = values.len() as u64;
                ctx.charge(SORT_STEP.mul(n * (64 - n.leading_zeros() as u64)));
                let mut out = Vec::with_capacity(raw.len());
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                ctx.persistent().write_bytes(HDR + 8 * start, &out)?;
                encode_result(&())
            }
            "merge" => {
                let chunks: u64 = decode_args(args)?;
                let raw = ctx.persistent().read_bytes(HDR, 8 * N)?;
                let mut values: Vec<u64> = raw
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect();
                // The chunks are sorted; a k-way merge via sort_unstable
                // on nearly-sorted data keeps the example readable.
                let _ = chunks;
                values.sort_unstable();
                // A k-way merge is linear: charge n steps.
                ctx.charge(SORT_STEP.mul(values.len() as u64));
                let mut out = Vec::with_capacity(raw.len());
                for v in &values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                ctx.persistent().write_bytes(HDR, &out)?;
                encode_result(&())
            }
            "is_sorted" => {
                let raw = ctx.persistent().read_bytes(HDR, 8 * N)?;
                let mut prev = 0u64;
                for c in raw.chunks_exact(8) {
                    let v = u64::from_le_bytes(c.try_into().expect("8 bytes"));
                    if v < prev {
                        return encode_result(&false);
                    }
                    prev = v;
                }
                encode_result(&true)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn run_sort(workers: usize) -> Result<(Vt, u64), CloudsError> {
    // workers compute servers for the sort + one for fill/merge, so the
    // coordinator's cached pages are not recalled out of worker clocks.
    let cluster = Cluster::builder()
        .compute_servers(workers + 1)
        .data_servers(1)
        .workstations(0)
        .build()?;
    cluster.register_class("sortable", Sortable)?;
    let coordinator = cluster.compute(workers).clone();
    let obj = coordinator.create_object("sortable", Some("BigArray"), None)?;
    coordinator.invoke(obj, "fill", &encode_args(&42u64)?, None)?;

    let before_stats = cluster.network().stats();
    let chunk = N as u64 / workers as u64;
    // Phase one: every worker faults in its chunk (join = barrier).
    let mut loads = Vec::new();
    for w in 0..workers {
        let cs = cluster.compute(w).clone();
        let args = encode_args(&(w as u64 * chunk, chunk))?;
        loads.push(std::thread::spawn(move || {
            cs.invoke(obj, "load_chunk", &args, None)
        }));
    }
    for h in loads {
        h.join().expect("load thread")?;
    }
    // Phase two: parallel in-place sorts.
    let mut handles = Vec::new();
    for w in 0..workers {
        let cs = cluster.compute(w).clone();
        let args = encode_args(&(w as u64 * chunk, chunk))?;
        handles.push(std::thread::spawn(move || {
            cs.invoke(obj, "sort_chunk", &args, None)
        }));
    }
    for h in handles {
        h.join().expect("worker thread")?;
    }
    coordinator.invoke(obj, "merge", &encode_args(&(workers as u64))?, None)?;
    let sorted: bool = decode_args(&coordinator.invoke(
        obj,
        "is_sorted",
        &encode_args(&())?,
        None,
    )?)?;
    assert!(sorted, "sort must produce sorted data");

    // Virtual completion time: the coordinator's clock causally follows
    // every worker (the merge read their pages), so it is the makespan.
    let vt = cluster
        .network()
        .clock(coordinator.node_id())
        .expect("clock")
        .now();
    let traffic = cluster.network().stats().since(&before_stats);
    Ok((vt, traffic.frames_sent))
}

fn main() -> Result<(), CloudsError> {
    println!("distributed sort of one {N}-element object (§5.1)");
    println!("modeled CPU: {SORT_STEP} per comparison step; network: 10 Mb/s Ethernet");
    println!("{:>8} {:>14} {:>12}", "workers", "virtual time", "frames");
    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let (vt, frames) = run_sort(workers)?;
        let speedup = baseline
            .get_or_insert(vt)
            .as_nanos() as f64
            / vt.as_nanos().max(1) as f64;
        println!("{workers:>8} {:>14} {frames:>12}   speedup ×{speedup:.2}", vt.to_string());
    }
    println!("data migrates to the nodes that use it; one object, many machines.");
    Ok(())
}
