//! Property-based roundtrip tests for the Clouds codec: every encodable
//! value must decode back to itself, and decoding must never panic on
//! arbitrary byte soup.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
struct Nested {
    id: u64,
    name: String,
    tags: Vec<String>,
    coords: Option<(i32, i32)>,
    payload: Vec<u8>,
}

#[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
enum Mixed {
    A,
    B(u64),
    C { s: String, n: Nested },
    D(Vec<Mixed>),
}

fn nested_strategy() -> impl Strategy<Value = Nested> {
    (
        any::<u64>(),
        ".{0,16}",
        prop::collection::vec(".{0,8}", 0..4),
        prop::option::of((any::<i32>(), any::<i32>())),
        prop::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(id, name, tags, coords, payload)| Nested {
            id,
            name,
            tags,
            coords,
            payload,
        })
}

fn mixed_strategy() -> impl Strategy<Value = Mixed> {
    let leaf = prop_oneof![
        Just(Mixed::A),
        any::<u64>().prop_map(Mixed::B),
        (".{0,8}", nested_strategy()).prop_map(|(s, n)| Mixed::C { s, n }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Mixed::D)
    })
}

proptest! {
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(clouds_codec::roundtrip(&v).unwrap(), v);
    }

    #[test]
    fn i128_roundtrip(v in any::<i128>()) {
        prop_assert_eq!(clouds_codec::roundtrip(&v).unwrap(), v);
    }

    #[test]
    fn f64_roundtrip(v in any::<f64>()) {
        let back = clouds_codec::roundtrip(&v).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn string_roundtrip(v in ".{0,64}") {
        prop_assert_eq!(clouds_codec::roundtrip(&v).unwrap(), v);
    }

    #[test]
    fn bytes_roundtrip(v in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(clouds_codec::roundtrip(&v).unwrap(), v);
    }

    #[test]
    fn map_roundtrip(m in prop::collection::btree_map(any::<u32>(), ".{0,8}", 0..16)) {
        let back: BTreeMap<u32, String> = clouds_codec::roundtrip(&m).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn nested_struct_roundtrip(n in nested_strategy()) {
        prop_assert_eq!(clouds_codec::roundtrip(&n).unwrap(), n);
    }

    #[test]
    fn recursive_enum_roundtrip(m in mixed_strategy()) {
        prop_assert_eq!(clouds_codec::roundtrip(&m).unwrap(), m);
    }

    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(any::<u8>(), 0..256)) {
        // Decoding garbage may fail, but must never panic or allocate absurdly.
        let _ = clouds_codec::from_bytes::<Nested>(&raw);
        let _ = clouds_codec::from_bytes::<Mixed>(&raw);
        let _ = clouds_codec::from_bytes::<Vec<String>>(&raw);
    }

    #[test]
    fn encoding_is_deterministic(n in nested_strategy()) {
        let a = clouds_codec::to_bytes(&n).unwrap();
        let b = clouds_codec::to_bytes(&n).unwrap();
        prop_assert_eq!(a, b);
    }
}
