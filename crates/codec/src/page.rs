//! `PageBytes` — a cheaply cloneable byte payload for page-sized data.
//!
//! DSM wire messages carry whole 8 KB pages. Serialized as `Vec<u8>`,
//! serde routes every byte through `serialize_u8`/`visit_u8`; the codec
//! pays a function call per byte on both sides, which dominates the
//! paging hot path. `PageBytes` instead serializes through serde's
//! byte-string fast path (`serialize_bytes` / `deserialize_byte_buf`):
//! one length prefix plus one `memcpy` on encode, and on decode either
//! one `memcpy` — or **zero copies** when the caller decodes with
//! [`from_bytes_shared`], which lets the payload become a refcounted
//! [`Bytes`] slice of the undecoded input buffer.
//!
//! The zero-copy decode works without `unsafe`: the deserializer hands
//! the visitor a subslice of the original input, so when that input is
//! the contents of a [`Bytes`] buffer registered for the current decode,
//! plain pointer arithmetic (`as_ptr() as usize`) locates the subslice's
//! offset inside the parent and `Bytes::slice` shares the allocation.

use crate::error::Result;
use bytes::Bytes;
use serde::de::{self, Visitor};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::ops::Deref;

thread_local! {
    /// Parent buffer of the decode currently running on this thread, if
    /// the caller opted into zero-copy via [`from_bytes_shared`].
    static DECODE_PARENT: RefCell<Option<Bytes>> = const { RefCell::new(None) };
}

/// Restores the previously installed parent when a shared decode ends,
/// so nested or back-to-back decodes never see a stale buffer.
struct ParentGuard {
    prev: Option<Bytes>,
}

impl Drop for ParentGuard {
    fn drop(&mut self) {
        DECODE_PARENT.with(|p| *p.borrow_mut() = self.prev.take());
    }
}

/// Decode a value of type `T` from the full contents of `parent`,
/// letting any [`PageBytes`] fields inside `T` borrow (refcount-share)
/// the parent buffer instead of copying their payloads out.
///
/// Exactly [`crate::from_bytes`] otherwise: the whole input must be
/// consumed.
///
/// # Errors
///
/// As for [`crate::from_bytes`].
pub fn from_bytes_shared<T: de::DeserializeOwned>(parent: &Bytes) -> Result<T> {
    let _guard = DECODE_PARENT.with(|p| ParentGuard {
        prev: p.borrow_mut().replace(parent.clone()),
    });
    crate::from_bytes(parent.as_ref())
}

/// A page-sized byte payload that encodes through the codec's raw-bytes
/// fast path and decodes without copying when the input buffer is shared
/// via [`from_bytes_shared`].
///
/// Cloning is O(1) (refcount bump). Dereferences to `[u8]`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct PageBytes(Bytes);

impl PageBytes {
    /// An empty payload.
    pub fn new() -> PageBytes {
        PageBytes(Bytes::new())
    }

    /// Copy a slice into a fresh payload.
    pub fn copy_from_slice(data: &[u8]) -> PageBytes {
        PageBytes(Bytes::copy_from_slice(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// The underlying shared buffer.
    pub fn into_bytes(self) -> Bytes {
        self.0
    }

    /// View as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        self.0.as_ref()
    }
}

impl Deref for PageBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.0.as_ref()
    }
}

impl AsRef<[u8]> for PageBytes {
    fn as_ref(&self) -> &[u8] {
        self.0.as_ref()
    }
}

impl From<Vec<u8>> for PageBytes {
    /// Zero-copy: wraps the vector's allocation.
    fn from(v: Vec<u8>) -> PageBytes {
        PageBytes(Bytes::from(v))
    }
}

impl From<Bytes> for PageBytes {
    fn from(b: Bytes) -> PageBytes {
        PageBytes(b)
    }
}

impl From<&[u8]> for PageBytes {
    fn from(v: &[u8]) -> PageBytes {
        PageBytes::copy_from_slice(v)
    }
}

impl fmt::Debug for PageBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageBytes[{} bytes]", self.len())
    }
}

impl Serialize for PageBytes {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self.0.as_ref())
    }
}

/// If `v` is a subslice of the decode's registered parent buffer, share
/// the parent's allocation; otherwise copy. The containment test is
/// plain integer arithmetic on `as_ptr()` addresses — no `unsafe`.
fn adopt(v: &[u8]) -> PageBytes {
    DECODE_PARENT.with(|p| {
        if let Some(parent) = p.borrow().as_ref() {
            let base = parent.as_ref().as_ptr() as usize;
            let ptr = v.as_ptr() as usize;
            if ptr >= base && ptr + v.len() <= base + parent.len() {
                let off = ptr - base;
                return PageBytes(parent.slice(off..off + v.len()));
            }
        }
        PageBytes::copy_from_slice(v)
    })
}

struct PageBytesVisitor;

impl<'de> Visitor<'de> for PageBytesVisitor {
    type Value = PageBytes;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a byte string")
    }

    fn visit_borrowed_bytes<E: de::Error>(self, v: &'de [u8]) -> std::result::Result<PageBytes, E> {
        Ok(adopt(v))
    }

    fn visit_bytes<E: de::Error>(self, v: &[u8]) -> std::result::Result<PageBytes, E> {
        Ok(adopt(v))
    }

    fn visit_byte_buf<E: de::Error>(self, v: Vec<u8>) -> std::result::Result<PageBytes, E> {
        Ok(PageBytes::from(v))
    }

    fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> std::result::Result<PageBytes, A::Error> {
        // Formats without a byte-string fast path deliver a u8 sequence.
        let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
        while let Some(b) = seq.next_element::<u8>()? {
            out.push(b);
        }
        Ok(PageBytes::from(out))
    }
}

impl<'de> Deserialize<'de> for PageBytes {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<PageBytes, D::Error> {
        deserializer.deserialize_byte_buf(PageBytesVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Grant {
        page: u32,
        data: PageBytes,
        version: u64,
    }

    fn sample(len: usize) -> Grant {
        Grant {
            page: 7,
            data: PageBytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>()),
            version: 42,
        }
    }

    #[test]
    fn roundtrips_through_plain_decode() {
        let g = sample(8192);
        let bytes = to_bytes(&g).unwrap();
        let back: Grant = from_bytes(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn wire_format_matches_vec_u8() {
        // PageBytes must be drop-in wire-compatible with Vec<u8> fields:
        // same u64 length prefix + raw bytes.
        let payload = vec![1u8, 2, 3, 4, 5];
        let as_vec = to_bytes(&payload).unwrap();
        let as_page = to_bytes(&PageBytes::from(payload.clone())).unwrap();
        assert_eq!(as_vec, as_page);
        let back: Vec<u8> = from_bytes(&as_page).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn shared_decode_borrows_the_input_buffer() {
        let g = sample(8192);
        let wire = Bytes::from(to_bytes(&g).unwrap());
        let base = wire.as_ref().as_ptr() as usize;
        let back: Grant = from_bytes_shared(&wire).unwrap();
        assert_eq!(back, g);
        let ptr = back.data.as_slice().as_ptr() as usize;
        assert!(
            ptr >= base && ptr + back.data.len() <= base + wire.len(),
            "payload must alias the wire buffer, not a copy"
        );
    }

    #[test]
    fn plain_decode_after_shared_decode_copies() {
        let g = sample(64);
        let wire = Bytes::from(to_bytes(&g).unwrap());
        let _shared: Grant = from_bytes_shared(&wire).unwrap();
        // The guard must have cleared the parent: a later plain decode
        // of a different buffer gets an owned copy and stays correct.
        let other = to_bytes(&g).unwrap();
        let back: Grant = from_bytes(&other).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_page_roundtrips() {
        let g = Grant {
            page: 0,
            data: PageBytes::new(),
            version: 0,
        };
        let wire = Bytes::from(to_bytes(&g).unwrap());
        let back: Grant = from_bytes_shared(&wire).unwrap();
        assert_eq!(back, g);
    }
}
