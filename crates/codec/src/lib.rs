//! `clouds-codec` — a compact, self-contained binary serialization format
//! built on [serde], used for Clouds invocation parameters.
//!
//! In the Clouds object–thread model, data crosses object boundaries only
//! as *values*: "these arguments/results are strictly data; they may not be
//! addresses" (§2.2 of the paper). This crate provides the wire form of
//! those values: a deterministic little-endian encoding with
//! length-prefixed sequences, so a parameter block produced on one
//! (simulated) node can be decoded inside any other object's address space.
//!
//! The format is intentionally similar to `bincode`'s fixed-int encoding:
//!
//! * integers: little-endian, fixed width
//! * `bool`: one byte, `0` or `1`
//! * `f32`/`f64`: IEEE-754 bits, little-endian
//! * `char`: `u32` scalar value
//! * strings / byte strings: `u64` length followed by the bytes
//! * `Option<T>`: tag byte (`0` = `None`, `1` = `Some`) then the value
//! * sequences / maps: `u64` length then elements (unknown-length
//!   sequences are rejected)
//! * structs / tuples: fields in order, no framing
//! * enums: `u32` variant index then the variant payload
//!
//! # Examples
//!
//! ```
//! # use serde::{Serialize, Deserialize};
//! # fn main() -> Result<(), clouds_codec::Error> {
//! #[derive(Serialize, Deserialize, Debug, PartialEq)]
//! struct SetSize { x: i32, y: i32 }
//!
//! let bytes = clouds_codec::to_bytes(&SetSize { x: 5, y: 10 })?;
//! let back: SetSize = clouds_codec::from_bytes(&bytes)?;
//! assert_eq!(back, SetSize { x: 5, y: 10 });
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod de;
mod error;
mod page;
mod ser;

pub use de::{from_bytes, Deserializer};
pub use error::{Error, Result};
pub use page::{from_bytes_shared, PageBytes};
pub use ser::{encode_into, to_bytes, Serializer};

/// Encode a value and decode it again; convenience for tests and docs.
///
/// # Errors
///
/// Returns any error produced while encoding or decoding.
pub fn roundtrip<T>(value: &T) -> Result<T>
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    from_bytes(&to_bytes(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Rect {
        x: i32,
        y: i32,
        label: String,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Shape {
        Unit,
        Tuple(u8, u16),
        Struct { r: f64 },
        Newtype(String),
    }

    #[test]
    fn primitives_roundtrip() {
        assert!(roundtrip(&true).unwrap());
        assert!(!roundtrip(&false).unwrap());
        assert_eq!(roundtrip(&0u8).unwrap(), 0u8);
        assert_eq!(roundtrip(&i64::MIN).unwrap(), i64::MIN);
        assert_eq!(roundtrip(&u64::MAX).unwrap(), u64::MAX);
        assert_eq!(roundtrip(&i128::MIN).unwrap(), i128::MIN);
        assert_eq!(roundtrip(&u128::MAX).unwrap(), u128::MAX);
        assert_eq!(roundtrip(&3.5f32).unwrap(), 3.5f32);
        assert_eq!(roundtrip(&-2.25f64).unwrap(), -2.25f64);
        assert_eq!(roundtrip(&'\u{1F600}').unwrap(), '\u{1F600}');
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        assert_eq!(roundtrip(&String::new()).unwrap(), String::new());
        assert_eq!(roundtrip(&"clouds".to_string()).unwrap(), "clouds");
        let v: Vec<u8> = vec![0, 1, 2, 255];
        assert_eq!(roundtrip(&v).unwrap(), v);
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(roundtrip(&Some(42u32)).unwrap(), Some(42u32));
        assert_eq!(roundtrip(&Option::<u32>::None).unwrap(), None);
        assert_eq!(
            roundtrip(&Some(Some("x".to_string()))).unwrap(),
            Some(Some("x".to_string()))
        );
    }

    #[test]
    fn struct_roundtrip() {
        let r = Rect {
            x: -7,
            y: 1 << 30,
            label: "rect01".into(),
        };
        assert_eq!(roundtrip(&r).unwrap(), r);
    }

    #[test]
    fn enum_roundtrip() {
        for s in [
            Shape::Unit,
            Shape::Tuple(3, 9),
            Shape::Struct { r: 2.0 },
            Shape::Newtype("n".into()),
        ] {
            let b = to_bytes(&s).unwrap();
            let d: Shape = from_bytes(&b).unwrap();
            assert_eq!(d, s);
        }
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        assert_eq!(roundtrip(&v).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u8);
        m.insert("b".to_string(), 2u8);
        assert_eq!(roundtrip(&m).unwrap(), m);
        let t = (1u8, "two".to_string(), 3.0f64);
        assert_eq!(roundtrip(&t).unwrap(), t);
    }

    #[test]
    fn unit_roundtrip() {
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct U;
        roundtrip(&()).unwrap();
        assert_eq!(roundtrip(&U).unwrap(), U);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = to_bytes(&5u32).unwrap();
        b.push(0);
        let r: Result<u32> = from_bytes(&b);
        assert!(matches!(r, Err(Error::TrailingBytes(1))));
    }

    #[test]
    fn truncated_input_rejected() {
        let b = to_bytes(&"hello".to_string()).unwrap();
        let r: Result<String> = from_bytes(&b[..b.len() - 1]);
        assert!(matches!(r, Err(Error::Eof)));
    }

    #[test]
    fn invalid_bool_rejected() {
        let r: Result<bool> = from_bytes(&[2]);
        assert!(matches!(r, Err(Error::InvalidBool(2))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // length 1, byte 0xFF
        let raw = [1, 0, 0, 0, 0, 0, 0, 0, 0xFF];
        let r: Result<String> = from_bytes(&raw);
        assert!(matches!(r, Err(Error::InvalidUtf8)));
    }

    #[test]
    fn invalid_char_rejected() {
        let raw = 0xD800u32.to_le_bytes();
        let r: Result<char> = from_bytes(&raw);
        assert!(matches!(r, Err(Error::InvalidChar(0xD800))));
    }

    #[test]
    fn oversized_length_rejected() {
        // Claims a 2^60-element Vec<u8>; must fail fast, not try to allocate.
        let mut raw = Vec::new();
        raw.extend_from_slice(&(1u64 << 60).to_le_bytes());
        let r: Result<Vec<u8>> = from_bytes(&raw);
        assert!(matches!(r, Err(Error::Eof) | Err(Error::LengthOverflow(_))));
    }

    #[test]
    fn deterministic_encoding() {
        let a = to_bytes(&Rect {
            x: 1,
            y: 2,
            label: "z".into(),
        })
        .unwrap();
        let b = to_bytes(&Rect {
            x: 1,
            y: 2,
            label: "z".into(),
        })
        .unwrap();
        assert_eq!(a, b);
    }
}
