//! Deserializer half of the Clouds codec.

use crate::error::{Error, Result};
use serde::de::{self, DeserializeSeed, Visitor};

/// Decode a value of type `T` from `bytes`, requiring the whole input to be
/// consumed.
///
/// # Errors
///
/// Fails on truncated input, trailing bytes, or malformed payloads (bad
/// UTF-8, invalid bool/char encodings, variant indices out of range).
///
/// ```
/// let v: (u16, bool) = clouds_codec::from_bytes(&[1, 0, 1]).unwrap();
/// assert_eq!(v, (1, true));
/// ```
pub fn from_bytes<T: de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut de = Deserializer::new(bytes);
    let value = T::deserialize(&mut de)?;
    let rest = de.remaining();
    if rest == 0 {
        Ok(value)
    } else {
        Err(Error::TrailingBytes(rest))
    }
}

/// Streaming deserializer reading the Clouds binary format from a slice.
#[derive(Debug)]
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Wrap a byte slice for decoding.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(Error::Eof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    fn take_len(&mut self) -> Result<usize> {
        let raw = u64::from_le_bytes(self.take_array()?);
        usize::try_from(raw).map_err(|_| Error::LengthOverflow(raw))
    }
}

macro_rules! de_int {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            visitor.$visit(<$ty>::from_le_bytes(self.take_array()?))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take_array::<1>()?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(Error::InvalidBool(other)),
        }
    }

    de_int!(deserialize_i8, visit_i8, i8);
    de_int!(deserialize_i16, visit_i16, i16);
    de_int!(deserialize_i32, visit_i32, i32);
    de_int!(deserialize_i64, visit_i64, i64);
    de_int!(deserialize_i128, visit_i128, i128);
    de_int!(deserialize_u8, visit_u8, u8);
    de_int!(deserialize_u16, visit_u16, u16);
    de_int!(deserialize_u32, visit_u32, u32);
    de_int!(deserialize_u64, visit_u64, u64);
    de_int!(deserialize_u128, visit_u128, u128);

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_f32(f32::from_bits(u32::from_le_bytes(self.take_array()?)))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_f64(f64::from_bits(u64::from_le_bytes(self.take_array()?)))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let raw = u32::from_le_bytes(self.take_array()?);
        let c = char::from_u32(raw).ok_or(Error::InvalidChar(raw))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take_array::<1>()?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(Error::InvalidBool(other)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted::new(self, len))
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted::new(self, len))
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted::new(self, len))
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_map(Counted::new(self, len))
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted::new(self, fields.len()))
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Sequence/map access that yields exactly `remaining` elements.
struct Counted<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'a, 'de> Counted<'a, 'de> {
    fn new(de: &'a mut Deserializer<'de>, remaining: usize) -> Self {
        Counted { de, remaining }
    }
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = Error;
    type Variant = Self;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self)> {
        let idx = u32::from_le_bytes(self.de.take_array()?);
        let val = seed.deserialize(de::value::U32Deserializer::<Error>::new(idx))?;
        Ok((val, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted::new(self.de, len))
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted::new(self.de, fields.len()))
    }
}
