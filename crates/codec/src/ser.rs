//! Serializer half of the Clouds codec.

use crate::error::{Error, Result};
use serde::ser::{self, Serialize};

/// Encode `value` into a fresh byte vector.
///
/// # Errors
///
/// Fails if the value contains an unknown-length sequence or a
/// `Serialize` impl raises a custom error.
///
/// ```
/// let bytes = clouds_codec::to_bytes(&(1u16, true)).unwrap();
/// assert_eq!(bytes, vec![1, 0, 1]);
/// ```
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    // Most wire values are small structs; page-carrying messages get
    // their real reservation from the byte-string path below.
    let mut ser = Serializer::with_capacity(64);
    value.serialize(&mut ser)?;
    Ok(ser.into_bytes())
}

/// Encode `value` into `out`, reusing its allocation.
///
/// The buffer is cleared first; its capacity is kept, so a caller
/// encoding in a loop (e.g. a transport filling the same send buffer)
/// amortizes away allocation entirely.
///
/// # Errors
///
/// As for [`to_bytes`]. On error `out` is left cleared.
pub fn encode_into<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) -> Result<()> {
    let mut buf = std::mem::take(out);
    buf.clear();
    let mut ser = Serializer { out: buf };
    let result = value.serialize(&mut ser);
    *out = ser.into_bytes();
    if result.is_err() {
        out.clear();
    }
    result
}

/// Streaming serializer writing the Clouds binary format into a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Serializer {
    out: Vec<u8>,
}

impl Serializer {
    /// Create an empty serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty serializer whose buffer pre-reserves `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Serializer {
            out: Vec::with_capacity(cap),
        }
    }

    /// Extract the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    fn put(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    fn put_len(&mut self, len: usize) {
        self.put(&(len as u64).to_le_bytes());
    }
}

macro_rules! ser_int {
    ($method:ident, $ty:ty) => {
        fn $method(self, v: $ty) -> Result<()> {
            self.put(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.put(&[v as u8]);
        Ok(())
    }

    ser_int!(serialize_i8, i8);
    ser_int!(serialize_i16, i16);
    ser_int!(serialize_i32, i32);
    ser_int!(serialize_i64, i64);
    ser_int!(serialize_i128, i128);
    ser_int!(serialize_u8, u8);
    ser_int!(serialize_u16, u16);
    ser_int!(serialize_u32, u32);
    ser_int!(serialize_u64, u64);
    ser_int!(serialize_u128, u128);

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.put(&v.to_bits().to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        self.put(&v.to_bits().to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.put(&(v as u32).to_le_bytes());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        // One reservation for prefix + payload: a page-sized value never
        // grows the buffer more than once.
        self.out.reserve(8 + v.len());
        self.put_len(v.len());
        self.put(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.out.reserve(8 + v.len());
        self.put_len(v.len());
        self.put(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.put(&[0]);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.put(&[1]);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.put(&variant_index.to_le_bytes());
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.put(&variant_index.to_le_bytes());
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>> {
        let len = len.ok_or(Error::UnknownLength)?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>> {
        self.put(&variant_index.to_le_bytes());
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>> {
        let len = len.ok_or(Error::UnknownLength)?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>> {
        self.put(&variant_index.to_le_bytes());
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// In-progress compound value (sequence, map, tuple, struct, variant).
#[derive(Debug)]
pub struct Compound<'a> {
    ser: &'a mut Serializer,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}
