//! Error type for the Clouds codec.

use std::fmt;

/// Alias for `std::result::Result` with [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while encoding or decoding Clouds parameter blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Input ended before the value was fully decoded.
    Eof,
    /// Extra bytes remained after the value was fully decoded.
    TrailingBytes(usize),
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A `char` scalar value was not a valid Unicode code point.
    InvalidChar(u32),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A declared length does not fit in `usize`.
    LengthOverflow(u64),
    /// A sequence was serialized without a known length.
    UnknownLength,
    /// An enum variant index was out of range for the target type.
    InvalidVariant(u32),
    /// `deserialize_any` was requested; the format is not self-describing.
    NotSelfDescribing,
    /// Custom error raised by a `Serialize`/`Deserialize` impl.
    Message(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eof => write!(f, "unexpected end of input"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            Error::InvalidBool(b) => write!(f, "invalid bool byte {b}"),
            Error::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            Error::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            Error::LengthOverflow(n) => write!(f, "declared length {n} overflows usize"),
            Error::UnknownLength => write!(f, "sequence length must be known up front"),
            Error::InvalidVariant(v) => write!(f, "invalid enum variant index {v}"),
            Error::NotSelfDescribing => {
                write!(f, "clouds-codec is not self-describing; deserialize_any unsupported")
            }
            Error::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}
