//! Property-based pins for the two claims the recovery path leans on:
//!
//! 1. **Compaction is invisible to replay** — `replay(compact(log))`
//!    reconstructs exactly the state `replay(log)` does, so the store
//!    may compact at any moment (including between a crash and the
//!    replay) without changing what a rebooting data server recovers.
//! 2. **Replay is order-insensitive within a log segment** — the
//!    reconstructed state is a function of the *set* of records, not
//!    the order they landed in, because every reducer is a join
//!    (version max, epoch max, destroy-beats-create, set union). This
//!    is what lets compaction rewrite records in index order rather
//!    than arrival order.
//!
//! The generator keeps ambiguous payloads keyed: a page image is a
//! function of its version, an intent of its txn id, a replica set of
//! its epoch. The log store itself never emits two records with equal
//! keys and different bodies (versions and epochs are monotonic), so
//! the properties are stated over the inputs the store can produce.

use clouds_ra::SysName;
use clouds_store::{IntentPage, LogConfig, LogRecord, LogStore, ReplayState, ReplicaRecord};
use proptest::prelude::*;

fn seg_name(i: u8) -> SysName {
    SysName::from_parts(70, i as u64)
}

/// Segment length as a function of the name, so duplicate creates of
/// one sysname (idempotent re-creates) agree on the body.
fn seg_len(i: u8) -> u64 {
    (i as u64 + 1) * 4096
}

/// The staged images of txn `t`, as the commit participant would build
/// them: one page per txn, image bytes derived from the id.
fn intent_pages(t: u64) -> Vec<IntentPage> {
    vec![IntentPage {
        seg: seg_name((t % 3) as u8),
        page: t as u32,
        data: vec![t as u8; 16],
    }]
}

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        (0u8..3).prop_map(|i| LogRecord::SegmentCreate {
            seg: seg_name(i),
            len: seg_len(i),
        }),
        (0u8..3).prop_map(|i| LogRecord::SegmentDestroy { seg: seg_name(i) }),
        (0u8..3, 0u32..4, 1u64..16).prop_map(|(i, page, version)| LogRecord::PageWrite {
            seg: seg_name(i),
            page,
            // The image is a function of the version: the store never
            // reuses a version for a different image.
            version,
            data: vec![version as u8; 32],
        }),
        (0u64..6).prop_map(|txn| LogRecord::TxnIntent {
            txn,
            pages: intent_pages(txn),
        }),
        (0u64..6).prop_map(|txn| LogRecord::TxnResolved { txn }),
        (0u64..6).prop_map(|txn| LogRecord::TxnOutcome { txn }),
        (0u8..3, 0u64..8).prop_map(|(i, epoch)| LogRecord::ReplicaConfig {
            seg: seg_name(i),
            // Members are a function of the epoch: a real view change
            // always bumps the epoch.
            config: ReplicaRecord {
                members: vec![epoch as u32, epoch as u32 + 1],
                epoch,
            },
        }),
    ]
}

fn log_strategy() -> impl Strategy<Value = Vec<LogRecord>> {
    prop::collection::vec(record_strategy(), 0..64)
}

/// Small segments so the generated logs actually span several of them
/// and compaction has dead bytes to drop.
fn small_segments() -> LogConfig {
    LogConfig {
        segment_bytes: 256,
        auto_compact: false,
        compact_min_bytes: u64::MAX,
    }
}

/// One segment big enough to hold any generated log, for the
/// within-a-segment ordering property.
fn one_segment() -> LogConfig {
    LogConfig {
        segment_bytes: 1 << 20,
        auto_compact: false,
        compact_min_bytes: u64::MAX,
    }
}

fn replay_of(cfg: LogConfig, records: &[LogRecord]) -> ReplayState {
    let store = LogStore::new(cfg);
    for rec in records {
        store.append(rec.clone());
    }
    store.crash(); // replay must not depend on the volatile index
    store.replay().state
}

/// Deterministic Fisher–Yates driven by a generated seed (the shim has
/// no shuffle strategy).
fn permute(records: &[LogRecord], seed: u64) -> Vec<LogRecord> {
    let mut out = records.to_vec();
    let mut state = seed | 1;
    for i in (1..out.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        out.swap(i, (state >> 33) as usize % (i + 1));
    }
    out
}

proptest! {
    #[test]
    fn replay_equals_replay_of_compacted_log(records in log_strategy()) {
        let store = LogStore::new(small_segments());
        for rec in &records {
            store.append(rec.clone());
        }
        let before = store.replay();
        store.compact();
        store.crash();
        let after = store.replay();
        prop_assert_eq!(&before.state, &after.state);
        // Compaction keeps only the live image of the state: replaying
        // its output can never scan more than the original log.
        prop_assert!(after.bytes <= before.bytes);
    }

    #[test]
    fn replay_is_order_insensitive_within_a_segment(
        records in log_strategy(),
        seed in proptest::prelude::any::<u64>(),
    ) {
        let in_order = replay_of(one_segment(), &records);
        let permuted = replay_of(one_segment(), &permute(&records, seed));
        prop_assert_eq!(in_order, permuted);
    }

    #[test]
    fn compaction_is_idempotent(records in log_strategy()) {
        let store = LogStore::new(small_segments());
        for rec in &records {
            store.append(rec.clone());
        }
        store.compact();
        let once = store.replay();
        store.compact();
        let twice = store.replay();
        prop_assert_eq!(once.state, twice.state);
        prop_assert_eq!(once.bytes, twice.bytes);
    }
}
