//! `clouds-store` — the data server's stable store as a
//! **segment-structured append-only log** (§5.2's single-level store,
//! made recoverable for real).
//!
//! Until this crate existed, a data server's durability was simulated
//! by keeping the process-wide `SegmentStore` map alive across a
//! "crash". Clouds' storage story is stronger than that: segments are
//! the *only* persistence abstraction, and a data server that crashes
//! must come back with exactly the committed state. This crate earns
//! those semantics the way real object stores do — from a recoverable
//! log:
//!
//! * The only durable state is [`LogStore`]'s **media**: a list of
//!   fixed-size log segments (byte buffers, [`LogConfig::segment_bytes`]
//!   each, the layout Pelikan's seg cache popularized) holding
//!   checksummed, length-prefixed records. Everything else — the
//!   `(segment, page) → latest record` index, the live-segment table,
//!   the pending-intent map — is volatile and rebuilt by replay.
//! * [`LogStore::append`] serializes a [`LogRecord`] into the open log
//!   segment, sealing it and opening a fresh one when full.
//! * [`LogStore::crash`] models the power failure: every volatile
//!   structure is dropped on the floor; only the media bytes remain.
//! * [`LogStore::replay`] rescans the media record by record, verifying
//!   each record's checksum, and folds the survivors into a
//!   [`ReplayState`]: materialized pages (highest version wins),
//!   pending two-phase-commit intents (intent without a matching
//!   resolution), the commit-outcome set, and replica/epoch metadata.
//!   A torn final record — a tail truncated mid-write — fails its
//!   length or checksum test and is **dropped, not applied**.
//! * [`LogStore::compact`] rewrites the live records into fresh log
//!   segments and discards the dead ones (superseded page versions,
//!   resolved intents, destroyed segments). Replay of the compacted
//!   log is equivalent to replay of the original — a property pinned
//!   by this crate's proptest suite.
//!
//! Replay order-insensitivity is by construction, not by luck: pages
//! carry monotonically increasing versions (highest wins), intents pair
//! with resolutions by transaction id, replica configs carry epochs
//! (highest wins), and destruction beats creation outright — sysnames
//! are never reused, so "a destroy record exists" means the segment is
//! gone no matter where the record sits.
//!
//! # Cost model
//!
//! Appends charge no virtual time: the pre-existing store writes were
//! already free (the write-behind is assumed to overlap with the next
//! request, as a battery-backed controller would), and keeping them
//! free preserves every calibrated number in EXPERIMENTS.md. Replay
//! *is* on the critical recovery path, so [`replay_cost`] models a
//! 1988-class disk scanning the log sequentially: one seek per log
//! segment plus ~1 MB/s of streaming reads. The data server charges
//! its virtual clock with this cost and records it in the
//! `store.replay` histogram (see OBS_SCHEMA.md).
//!
//! ```
//! use clouds_ra::{SysName, PAGE_SIZE};
//! use clouds_store::{LogConfig, LogRecord, LogStore};
//!
//! let store = LogStore::new(LogConfig::default());
//! let seg = SysName::from_parts(1, 1);
//! store.append(LogRecord::SegmentCreate { seg, len: PAGE_SIZE as u64 });
//! store.append(LogRecord::PageWrite { seg, page: 0, version: 1, data: vec![7; PAGE_SIZE] });
//!
//! store.crash(); // power fails: only the media bytes survive
//! let replayed = store.replay();
//! assert_eq!(replayed.state.segments[&seg].pages[&0].1[0], 7);
//! ```

#![forbid(unsafe_code)]

use clouds_obs::{Counter, NodeObs};
use clouds_ra::SysName;
use clouds_simnet::Vt;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Default size of one log segment: 256 KiB holds ~31 page records.
pub const LOG_SEGMENT_BYTES: usize = 256 * 1024;

/// Bytes of framing before each record payload: a `u32` length and a
/// `u32` FNV-1a checksum of the payload.
pub const RECORD_HEADER_BYTES: usize = 8;

/// Virtual-time cost of the seek to the start of each log segment
/// during replay (1988-class disk).
pub const REPLAY_SEEK: Vt = Vt::from_millis(10);

/// Virtual-time cost per byte streamed during replay: 1 µs/byte, i.e.
/// the ~1 MB/s sequential bandwidth of the era's SCSI disks.
pub const REPLAY_NS_PER_BYTE: u64 = 1_000;

/// Virtual time a data server spends replaying `bytes` of log spread
/// over `log_segments` log segments: one seek per segment plus the
/// sequential streaming cost. This is what `DataServer::restart`
/// charges its clock and records in the `store.replay` histogram.
pub fn replay_cost(bytes: u64, log_segments: u64) -> Vt {
    REPLAY_SEEK.mul(log_segments) + Vt::from_nanos(REPLAY_NS_PER_BYTE).mul(bytes)
}

/// One page image staged by a two-phase-commit prepare, as carried in a
/// [`LogRecord::TxnIntent`] write-ahead record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentPage {
    /// Segment the staged write targets.
    pub seg: SysName,
    /// Page index within the segment.
    pub page: u32,
    /// The staged bytes (at most one page).
    pub data: Vec<u8>,
}

/// The durable record of which nodes hold a segment's replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaRecord {
    /// Raw node ids, primary first.
    pub members: Vec<u32>,
    /// Configuration epoch; higher epochs supersede lower ones.
    pub epoch: u64,
}

/// One record in the log. Every durable mutation of a data server is
/// exactly one append of one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A segment was created with `len` bytes.
    SegmentCreate {
        /// The new segment's sysname.
        seg: SysName,
        /// Its length in bytes.
        len: u64,
    },
    /// A segment was destroyed. Destruction beats creation regardless
    /// of record order: sysnames are never reused.
    SegmentDestroy {
        /// The destroyed segment.
        seg: SysName,
    },
    /// A page reached version `version`. Replay keeps the highest
    /// version per `(seg, page)`, which is what makes it insensitive
    /// to record order within a log segment.
    PageWrite {
        /// Owning segment.
        seg: SysName,
        /// Page index within the segment.
        page: u32,
        /// Monotonic per-page version assigned by the store.
        version: u64,
        /// The full page image.
        data: Vec<u8>,
    },
    /// Write-ahead intent: transaction `txn` staged these page images
    /// at prepare time and this participant voted to commit.
    TxnIntent {
        /// Transaction id.
        txn: u64,
        /// The staged images.
        pages: Vec<IntentPage>,
    },
    /// Transaction `txn`'s staged intent was resolved (committed pages
    /// were logged as `PageWrite`s, or the abort dropped them); the
    /// intent is no longer pending.
    TxnResolved {
        /// Transaction id.
        txn: u64,
    },
    /// The commit coordinator durably decided *commit* for `txn`
    /// (the outcome registry's record; presumed abort otherwise).
    TxnOutcome {
        /// Transaction id.
        txn: u64,
    },
    /// The replica set of `seg` changed (creation, adoption, or
    /// promotion). Replay keeps the highest epoch.
    ReplicaConfig {
        /// The replicated segment.
        seg: SysName,
        /// The new configuration.
        config: ReplicaRecord,
    },
}

/// Tuning knobs for a [`LogStore`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Capacity of one log segment; a record larger than this gets a
    /// private oversized segment.
    pub segment_bytes: usize,
    /// Automatically compact when the dead bytes in the media exceed
    /// half of it and the media exceeds `compact_min_bytes`.
    pub auto_compact: bool,
    /// Minimum media size before auto-compaction considers running.
    pub compact_min_bytes: u64,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            segment_bytes: LOG_SEGMENT_BYTES,
            auto_compact: true,
            compact_min_bytes: 4 * LOG_SEGMENT_BYTES as u64,
        }
    }
}

/// Everything replay reconstructed about one stored segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplaySegment {
    /// Segment length in bytes.
    pub len: u64,
    /// Materialized pages: index → (version, image). Pages never
    /// written stay zero-filled and are absent here.
    pub pages: BTreeMap<u32, (u64, Vec<u8>)>,
}

/// The state a data server reconstructs from the log alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayState {
    /// Live segments (created, not destroyed) and their pages.
    pub segments: BTreeMap<SysName, ReplaySegment>,
    /// Prepared-but-unresolved transactions and their staged images;
    /// the 2PC participant re-stages these and resolves them against
    /// the outcome registry (presumed abort).
    pub pending_intents: BTreeMap<u64, Vec<IntentPage>>,
    /// Transactions the local outcome registry durably committed.
    pub outcomes: BTreeSet<u64>,
    /// Replica configuration per segment, highest epoch.
    pub replicas: BTreeMap<SysName, ReplicaRecord>,
}

/// A [`ReplayState`] plus the scan statistics of the pass that built it.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The reconstructed state.
    pub state: ReplayState,
    /// Valid records scanned.
    pub records: u64,
    /// Media bytes scanned (including framing).
    pub bytes: u64,
    /// Log segments scanned.
    pub log_segments: u64,
    /// Torn tails detected and dropped (length/checksum mismatches at
    /// the end of a log segment's valid prefix).
    pub torn_dropped: u64,
}

/// Counters describing a [`LogStore`]'s lifetime so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended.
    pub appends: u64,
    /// Media bytes appended (including framing).
    pub append_bytes: u64,
    /// Log segments sealed because they filled up.
    pub segments_sealed: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Current media size in bytes.
    pub media_bytes: u64,
    /// Current number of log segments (sealed + open).
    pub media_segments: u64,
    /// Estimated dead bytes awaiting compaction (superseded page
    /// versions, resolved intents, destroyed segments).
    pub dead_bytes: u64,
}

/// Obs counters, resolved once at construction; metric names are
/// literals here and listed in OBS_SCHEMA.md (the `obs-schema` lint
/// keeps the two in sync).
struct StoreMetrics {
    appends: Arc<Counter>,
    append_bytes: Arc<Counter>,
    segments_sealed: Arc<Counter>,
    compactions: Arc<Counter>,
    replay_records: Arc<Counter>,
    torn_dropped: Arc<Counter>,
}

impl StoreMetrics {
    fn new(obs: &NodeObs) -> StoreMetrics {
        StoreMetrics {
            appends: obs.counter("store.appends"),
            append_bytes: obs.counter("store.append_bytes"),
            segments_sealed: obs.counter("store.segments_sealed"),
            compactions: obs.counter("store.compactions"),
            replay_records: obs.counter("store.replay.records"),
            torn_dropped: obs.counter("store.replay.torn_dropped"),
        }
    }
}

/// Size of the latest record for a `(seg, page)` in the media, for
/// dead-byte accounting when a newer version supersedes it.
#[derive(Debug, Clone, Copy)]
struct RecordPtr {
    framed_len: u64,
}

/// Volatile state: the index and live-set caches that a crash destroys
/// and replay rebuilds. Byte-for-byte derivable from the media.
#[derive(Default)]
struct VolatileIndex {
    /// (seg, page) → latest record, for dead-byte accounting.
    pages: BTreeMap<(SysName, u32), RecordPtr>,
    /// Live segment lengths.
    creates: BTreeMap<SysName, u64>,
    /// Pending intents: txn → framed length of the intent record.
    intents: BTreeMap<u64, u64>,
    /// Estimated dead bytes in the media.
    dead_bytes: u64,
}

struct LogInner {
    /// The durable media: sealed log segments plus the open tail.
    media: Vec<Vec<u8>>,
    /// Volatile; `None` after a crash until replay rebuilds it.
    index: Option<VolatileIndex>,
    stats: StoreStats,
}

/// The append-only log store. One per data server; the simulated disk.
pub struct LogStore {
    cfg: LogConfig,
    inner: Mutex<LogInner>,
    metrics: Option<StoreMetrics>,
}

/// FNV-1a over the payload; cheap, deterministic, and plenty to catch
/// a torn tail (we are detecting truncation, not adversaries).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn put_sysname(out: &mut Vec<u8>, s: SysName) {
    let v = s.as_u128();
    out.extend_from_slice(&((v >> 64) as u64).to_le_bytes());
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let b = buf.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(b.try_into().ok()?))
}

fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let b = buf.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(b.try_into().ok()?))
}

fn get_sysname(buf: &[u8], at: &mut usize) -> Option<SysName> {
    let hi = get_u64(buf, at)?;
    let lo = get_u64(buf, at)?;
    Some(SysName::from_parts(hi, lo))
}

const TAG_CREATE: u8 = 1;
const TAG_DESTROY: u8 = 2;
const TAG_PAGE: u8 = 3;
const TAG_INTENT: u8 = 4;
const TAG_RESOLVED: u8 = 5;
const TAG_OUTCOME: u8 = 6;
const TAG_REPLICAS: u8 = 7;

impl LogRecord {
    /// Serialize the payload (tag byte + fixed-width little-endian
    /// fields + raw page bytes). Hand-rolled rather than codec-based:
    /// the layout *is* the on-media format and must stay stable.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            LogRecord::SegmentCreate { seg, len } => {
                out.push(TAG_CREATE);
                put_sysname(&mut out, *seg);
                out.extend_from_slice(&len.to_le_bytes());
            }
            LogRecord::SegmentDestroy { seg } => {
                out.push(TAG_DESTROY);
                put_sysname(&mut out, *seg);
            }
            LogRecord::PageWrite {
                seg,
                page,
                version,
                data,
            } => {
                out.reserve(data.len() + 40);
                out.push(TAG_PAGE);
                put_sysname(&mut out, *seg);
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            LogRecord::TxnIntent { txn, pages } => {
                out.push(TAG_INTENT);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for p in pages {
                    put_sysname(&mut out, p.seg);
                    out.extend_from_slice(&p.page.to_le_bytes());
                    out.extend_from_slice(&(p.data.len() as u32).to_le_bytes());
                    out.extend_from_slice(&p.data);
                }
            }
            LogRecord::TxnResolved { txn } => {
                out.push(TAG_RESOLVED);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::TxnOutcome { txn } => {
                out.push(TAG_OUTCOME);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::ReplicaConfig { seg, config } => {
                out.push(TAG_REPLICAS);
                put_sysname(&mut out, *seg);
                out.extend_from_slice(&config.epoch.to_le_bytes());
                out.extend_from_slice(&(config.members.len() as u32).to_le_bytes());
                for m in &config.members {
                    out.extend_from_slice(&m.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decode one payload; `None` on any malformation (unknown tag,
    /// short buffer, trailing garbage) — the caller treats that the
    /// same as a checksum failure.
    fn decode(buf: &[u8]) -> Option<LogRecord> {
        let tag = *buf.first()?;
        let mut at = 1usize;
        let rec = match tag {
            TAG_CREATE => LogRecord::SegmentCreate {
                seg: get_sysname(buf, &mut at)?,
                len: get_u64(buf, &mut at)?,
            },
            TAG_DESTROY => LogRecord::SegmentDestroy {
                seg: get_sysname(buf, &mut at)?,
            },
            TAG_PAGE => {
                let seg = get_sysname(buf, &mut at)?;
                let page = get_u32(buf, &mut at)?;
                let version = get_u64(buf, &mut at)?;
                let dlen = get_u32(buf, &mut at)? as usize;
                let data = buf.get(at..at + dlen)?.to_vec();
                at += dlen;
                LogRecord::PageWrite {
                    seg,
                    page,
                    version,
                    data,
                }
            }
            TAG_INTENT => {
                let txn = get_u64(buf, &mut at)?;
                let count = get_u32(buf, &mut at)?;
                let mut pages = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let seg = get_sysname(buf, &mut at)?;
                    let page = get_u32(buf, &mut at)?;
                    let dlen = get_u32(buf, &mut at)? as usize;
                    let data = buf.get(at..at + dlen)?.to_vec();
                    at += dlen;
                    pages.push(IntentPage { seg, page, data });
                }
                LogRecord::TxnIntent { txn, pages }
            }
            TAG_RESOLVED => LogRecord::TxnResolved {
                txn: get_u64(buf, &mut at)?,
            },
            TAG_OUTCOME => LogRecord::TxnOutcome {
                txn: get_u64(buf, &mut at)?,
            },
            TAG_REPLICAS => {
                let seg = get_sysname(buf, &mut at)?;
                let epoch = get_u64(buf, &mut at)?;
                let count = get_u32(buf, &mut at)?;
                let mut members = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    members.push(get_u32(buf, &mut at)?);
                }
                LogRecord::ReplicaConfig {
                    seg,
                    config: ReplicaRecord { members, epoch },
                }
            }
            _ => return None,
        };
        (at == buf.len()).then_some(rec)
    }
}

impl LogStore {
    /// A store with no obs wiring (tests, benches).
    pub fn new(cfg: LogConfig) -> LogStore {
        LogStore {
            cfg,
            inner: Mutex::new(LogInner {
                media: vec![Vec::new()],
                index: Some(VolatileIndex::default()),
                stats: StoreStats::default(),
            }),
            metrics: None,
        }
    }

    /// A store whose counters feed `obs`'s metrics registry.
    pub fn with_obs(cfg: LogConfig, obs: &NodeObs) -> LogStore {
        LogStore {
            metrics: Some(StoreMetrics::new(obs)),
            ..LogStore::new(cfg)
        }
    }

    /// Append one record durably. This is the *only* way state enters
    /// the media; callers append before acknowledging the operation
    /// the record describes (write-ahead discipline).
    pub fn append(&self, rec: LogRecord) {
        let payload = rec.encode();
        let framed_len = (RECORD_HEADER_BYTES + payload.len()) as u64;
        let mut inner = self.inner.lock();
        let inner = &mut *inner;

        // Seal the open segment if this record will not fit.
        let open_len = inner.media.last().map_or(0, Vec::len);
        if open_len > 0 && open_len + RECORD_HEADER_BYTES + payload.len() > self.cfg.segment_bytes {
            inner.media.push(Vec::new());
            inner.stats.segments_sealed += 1;
            if let Some(m) = &self.metrics {
                m.segments_sealed.add(1);
            }
        }
        let open = inner.media.last_mut().expect("media always has an open segment");
        open.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        open.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        open.extend_from_slice(&payload);

        inner.stats.appends += 1;
        inner.stats.append_bytes += framed_len;
        inner.stats.media_bytes += framed_len;
        inner.stats.media_segments = inner.media.len() as u64;
        if let Some(m) = &self.metrics {
            m.appends.add(1);
            m.append_bytes.add(framed_len);
        }

        // Dead-byte accounting, tracked only while the volatile index
        // is alive (after a crash nothing appends until replay).
        if let Some(idx) = inner.index.as_mut() {
            match &rec {
                LogRecord::SegmentCreate { seg, len } => {
                    idx.creates.insert(*seg, *len);
                }
                LogRecord::SegmentDestroy { seg } => {
                    idx.creates.remove(seg);
                    let doomed: Vec<(SysName, u32)> = idx
                        .pages
                        .range((*seg, 0)..=(*seg, u32::MAX))
                        .map(|(k, _)| *k)
                        .collect();
                    for k in doomed {
                        if let Some(p) = idx.pages.remove(&k) {
                            idx.dead_bytes += p.framed_len;
                        }
                    }
                    // The destroy + create records themselves die too;
                    // count the pair's framing as dead.
                    idx.dead_bytes += 2 * framed_len;
                }
                LogRecord::PageWrite { seg, page, .. } => {
                    let ptr = RecordPtr { framed_len };
                    if let Some(old) = idx.pages.insert((*seg, *page), ptr) {
                        idx.dead_bytes += old.framed_len;
                    }
                }
                LogRecord::TxnIntent { txn, .. } => {
                    idx.intents.insert(*txn, framed_len);
                }
                LogRecord::TxnResolved { txn } => {
                    if let Some(intent_len) = idx.intents.remove(txn) {
                        idx.dead_bytes += intent_len + framed_len;
                    }
                }
                LogRecord::TxnOutcome { .. } | LogRecord::ReplicaConfig { .. } => {}
            }
            inner.stats.dead_bytes = idx.dead_bytes;
        }

        if self.cfg.auto_compact
            && inner.stats.media_bytes >= self.cfg.compact_min_bytes
            && inner.index.as_ref().is_some_and(|i| 2 * i.dead_bytes >= inner.stats.media_bytes)
        {
            self.compact_locked(inner);
        }
    }

    /// The power failure: drop every volatile structure. The media —
    /// and nothing else — survives; [`LogStore::replay`] rebuilds the
    /// rest. Appends between crash and replay would be a bug in the
    /// caller (a crashed server serves nothing), and are not indexed.
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        inner.index = None;
        inner.stats.dead_bytes = 0;
    }

    /// Scan the media and reconstruct the store's logical state,
    /// rebuilding the volatile index as a side effect. Torn tails are
    /// detected (length or checksum mismatch), dropped, and truncated
    /// off the media so subsequent appends land after valid data.
    pub fn replay(&self) -> ReplayOutcome {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let scan = scan_media(&inner.media);
        let outcome = scan.outcome;
        for (segment, &prefix) in inner.media.iter_mut().zip(&scan.valid_prefix) {
            segment.truncate(prefix);
        }
        while inner.media.len() > 1 && inner.media.last().is_some_and(Vec::is_empty) {
            inner.media.pop();
        }
        inner.stats.media_bytes = inner.media.iter().map(|s| s.len() as u64).sum();
        inner.stats.media_segments = inner.media.len() as u64;

        // Rebuild the volatile index from the replayed state.
        let mut idx = VolatileIndex::default();
        for (seg, rs) in &outcome.state.segments {
            idx.creates.insert(*seg, rs.len);
            for (page, (version, data)) in &rs.pages {
                let framed_len = (RECORD_HEADER_BYTES
                    + LogRecord::PageWrite {
                        seg: *seg,
                        page: *page,
                        version: *version,
                        data: data.clone(),
                    }
                    .encode()
                    .len()) as u64;
                idx.pages.insert((*seg, *page), RecordPtr { framed_len });
            }
        }
        for (txn, pages) in &outcome.state.pending_intents {
            let framed_len = (RECORD_HEADER_BYTES
                + LogRecord::TxnIntent {
                    txn: *txn,
                    pages: pages.clone(),
                }
                .encode()
                .len()) as u64;
            idx.intents.insert(*txn, framed_len);
        }
        // Dead bytes cannot be reconstructed per-record cheaply; the
        // conservative estimate is "everything the live set does not
        // account for", which is exactly what compaction would free.
        let live: u64 = idx.pages.values().map(|p| p.framed_len).sum::<u64>()
            + idx.intents.values().sum::<u64>();
        idx.dead_bytes = inner.stats.media_bytes.saturating_sub(live);
        inner.stats.dead_bytes = idx.dead_bytes;
        inner.index = Some(idx);

        if let Some(m) = &self.metrics {
            m.replay_records.add(outcome.records);
            m.torn_dropped.add(outcome.torn_dropped);
        }
        outcome
    }

    /// Rewrite live records into fresh log segments and discard the
    /// dead ones. `replay(compact(log)) ≡ replay(log)` — pinned by the
    /// proptest suite.
    pub fn compact(&self) {
        let mut inner = self.inner.lock();
        self.compact_locked(&mut inner);
    }

    fn compact_locked(&self, inner: &mut LogInner) {
        let state = scan_media(&inner.media).outcome.state;
        let mut media = vec![Vec::new()];
        let mut append_raw = |payload: Vec<u8>| {
            let open_len = media.last().map_or(0, Vec::len);
            if open_len > 0 && open_len + RECORD_HEADER_BYTES + payload.len() > self.cfg.segment_bytes
            {
                media.push(Vec::new());
            }
            let open = media.last_mut().expect("media always has an open segment");
            open.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            open.extend_from_slice(&fnv1a(&payload).to_le_bytes());
            open.extend_from_slice(&payload);
        };
        let mut idx = VolatileIndex::default();
        for (seg, rs) in &state.segments {
            append_raw(
                LogRecord::SegmentCreate {
                    seg: *seg,
                    len: rs.len,
                }
                .encode(),
            );
            idx.creates.insert(*seg, rs.len);
            for (page, (version, data)) in &rs.pages {
                let rec = LogRecord::PageWrite {
                    seg: *seg,
                    page: *page,
                    version: *version,
                    data: data.clone(),
                };
                let payload = rec.encode();
                idx.pages.insert(
                    (*seg, *page),
                    RecordPtr {
                        framed_len: (RECORD_HEADER_BYTES + payload.len()) as u64,
                    },
                );
                append_raw(payload);
            }
        }
        for (seg, config) in &state.replicas {
            // Keep the config even for destroyed segments? No: a
            // destroyed segment has no replicas to resync.
            if state.segments.contains_key(seg) {
                append_raw(
                    LogRecord::ReplicaConfig {
                        seg: *seg,
                        config: config.clone(),
                    }
                    .encode(),
                );
            }
        }
        for (txn, pages) in &state.pending_intents {
            let payload = LogRecord::TxnIntent {
                txn: *txn,
                pages: pages.clone(),
            }
            .encode();
            idx.intents
                .insert(*txn, (RECORD_HEADER_BYTES + payload.len()) as u64);
            append_raw(payload);
        }
        for txn in &state.outcomes {
            append_raw(LogRecord::TxnOutcome { txn: *txn }.encode());
        }

        inner.stats.media_bytes = media.iter().map(|s| s.len() as u64).sum();
        inner.stats.media_segments = media.len() as u64;
        inner.stats.compactions += 1;
        inner.stats.dead_bytes = 0;
        inner.media = media;
        inner.index = Some(idx);
        if let Some(m) = &self.metrics {
            m.compactions.add(1);
        }
    }

    /// Lifetime counters and current media shape.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Truncate `drop_bytes` off the end of the media, simulating a
    /// write torn by the power failure. Test hook for the torn-tail
    /// recovery path; a real caller never truncates its own log.
    pub fn tear_tail(&self, drop_bytes: usize) {
        let mut inner = self.inner.lock();
        let mut remaining = drop_bytes;
        while remaining > 0 {
            let Some(last) = inner.media.last_mut() else { break };
            let cut = remaining.min(last.len());
            let new_len = last.len() - cut;
            last.truncate(new_len);
            remaining -= cut;
            if new_len == 0 && inner.media.len() > 1 {
                inner.media.pop();
            } else {
                break;
            }
        }
        let media_bytes = inner.media.iter().map(|s| s.len() as u64).sum();
        inner.stats.media_bytes = media_bytes;
        inner.stats.media_segments = inner.media.len() as u64;
    }
}

/// A [`ReplayOutcome`] plus, per media segment, the length of the
/// prefix that parsed cleanly (everything after it is torn).
struct ScanResult {
    outcome: ReplayOutcome,
    valid_prefix: Vec<usize>,
}

/// Pure scan of media bytes → replayed state. Order-insensitive within
/// a log segment by construction (versions, epochs, id-pairing,
/// destroy-beats-create).
fn scan_media(media: &[Vec<u8>]) -> ScanResult {
    let mut records = 0u64;
    let mut bytes = 0u64;
    let mut torn = 0u64;
    let mut valid_prefix = Vec::with_capacity(media.len());

    let mut creates: BTreeMap<SysName, u64> = BTreeMap::new();
    let mut destroyed: BTreeSet<SysName> = BTreeSet::new();
    let mut pages: BTreeMap<(SysName, u32), (u64, Vec<u8>)> = BTreeMap::new();
    let mut intents: BTreeMap<u64, Vec<IntentPage>> = BTreeMap::new();
    let mut resolved: BTreeSet<u64> = BTreeSet::new();
    let mut outcomes: BTreeSet<u64> = BTreeSet::new();
    let mut replicas: BTreeMap<SysName, ReplicaRecord> = BTreeMap::new();

    for segment in media {
        let mut at = 0usize;
        let mut clean_to = 0usize;
        while at < segment.len() {
            // Frame: [len u32][crc u32][payload]. Anything that does
            // not parse cleanly is a torn tail: drop it and stop
            // scanning this log segment (append-only means nothing
            // valid can follow a torn write).
            let Some(hdr) = segment.get(at..at + RECORD_HEADER_BYTES) else {
                torn += 1;
                break;
            };
            let len = u32::from_le_bytes(hdr[0..4].try_into().expect("4-byte slice")) as usize;
            let crc = u32::from_le_bytes(hdr[4..8].try_into().expect("4-byte slice"));
            let Some(payload) = segment.get(at + RECORD_HEADER_BYTES..at + RECORD_HEADER_BYTES + len)
            else {
                torn += 1;
                break;
            };
            if fnv1a(payload) != crc {
                torn += 1;
                break;
            }
            let Some(rec) = LogRecord::decode(payload) else {
                torn += 1;
                break;
            };
            at += RECORD_HEADER_BYTES + len;
            clean_to = at;
            records += 1;
            bytes += (RECORD_HEADER_BYTES + len) as u64;

            match rec {
                LogRecord::SegmentCreate { seg, len } => {
                    creates.insert(seg, len);
                }
                LogRecord::SegmentDestroy { seg } => {
                    destroyed.insert(seg);
                }
                LogRecord::PageWrite {
                    seg,
                    page,
                    version,
                    data,
                } => {
                    let slot = pages.entry((seg, page)).or_insert((0, Vec::new()));
                    if version >= slot.0 {
                        *slot = (version, data);
                    }
                }
                LogRecord::TxnIntent { txn, pages: p } => {
                    intents.insert(txn, p);
                }
                LogRecord::TxnResolved { txn } => {
                    resolved.insert(txn);
                }
                LogRecord::TxnOutcome { txn } => {
                    outcomes.insert(txn);
                }
                LogRecord::ReplicaConfig { seg, config } => {
                    match replicas.get(&seg) {
                        Some(existing) if existing.epoch > config.epoch => {}
                        _ => {
                            replicas.insert(seg, config);
                        }
                    }
                }
            }
        }
        valid_prefix.push(clean_to);
    }

    let mut segments: BTreeMap<SysName, ReplaySegment> = BTreeMap::new();
    for (seg, len) in creates {
        if !destroyed.contains(&seg) {
            segments.insert(
                seg,
                ReplaySegment {
                    len,
                    pages: BTreeMap::new(),
                },
            );
        }
    }
    for ((seg, page), (version, data)) in pages {
        if let Some(rs) = segments.get_mut(&seg) {
            rs.pages.insert(page, (version, data));
        }
    }
    replicas.retain(|seg, _| segments.contains_key(seg));
    intents.retain(|txn, _| !resolved.contains(txn));

    let log_segments = media.len() as u64;
    ScanResult {
        outcome: ReplayOutcome {
            state: ReplayState {
                segments,
                pending_intents: intents,
                outcomes,
                replicas,
            },
            records,
            bytes,
            log_segments,
            torn_dropped: torn,
        },
        valid_prefix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clouds_ra::PAGE_SIZE;

    fn seg(n: u64) -> SysName {
        SysName::from_parts(7, n)
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE]
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let records = vec![
            LogRecord::SegmentCreate { seg: seg(1), len: 16384 },
            LogRecord::SegmentDestroy { seg: seg(2) },
            LogRecord::PageWrite { seg: seg(1), page: 1, version: 3, data: page(9) },
            LogRecord::TxnIntent {
                txn: 42,
                pages: vec![IntentPage { seg: seg(1), page: 0, data: page(1) }],
            },
            LogRecord::TxnResolved { txn: 42 },
            LogRecord::TxnOutcome { txn: 42 },
            LogRecord::ReplicaConfig {
                seg: seg(1),
                config: ReplicaRecord { members: vec![3, 4, 5], epoch: 2 },
            },
        ];
        for rec in records {
            let enc = rec.encode();
            assert_eq!(LogRecord::decode(&enc).as_ref(), Some(&rec));
        }
    }

    #[test]
    fn replay_survives_crash() {
        let store = LogStore::new(LogConfig::default());
        store.append(LogRecord::SegmentCreate { seg: seg(1), len: 3 * PAGE_SIZE as u64 });
        store.append(LogRecord::PageWrite { seg: seg(1), page: 0, version: 1, data: page(1) });
        store.append(LogRecord::PageWrite { seg: seg(1), page: 0, version: 2, data: page(2) });
        store.append(LogRecord::PageWrite { seg: seg(1), page: 2, version: 1, data: page(3) });
        store.crash();
        let out = store.replay();
        let rs = &out.state.segments[&seg(1)];
        assert_eq!(rs.pages[&0], (2, page(2)));
        assert_eq!(rs.pages[&2], (1, page(3)));
        assert_eq!(out.records, 4);
        assert_eq!(out.torn_dropped, 0);
    }

    #[test]
    fn destroy_beats_create_in_any_order() {
        let store = LogStore::new(LogConfig::default());
        store.append(LogRecord::SegmentDestroy { seg: seg(1) });
        store.append(LogRecord::SegmentCreate { seg: seg(1), len: PAGE_SIZE as u64 });
        store.append(LogRecord::PageWrite { seg: seg(1), page: 0, version: 1, data: page(1) });
        assert!(store.replay().state.segments.is_empty());
    }

    #[test]
    fn pending_intent_pairs_with_resolution() {
        let store = LogStore::new(LogConfig::default());
        let images = vec![IntentPage { seg: seg(1), page: 0, data: page(5) }];
        store.append(LogRecord::TxnIntent { txn: 1, pages: images.clone() });
        store.append(LogRecord::TxnIntent { txn: 2, pages: images.clone() });
        store.append(LogRecord::TxnResolved { txn: 1 });
        store.append(LogRecord::TxnOutcome { txn: 1 });
        let out = store.replay();
        assert_eq!(out.state.pending_intents.len(), 1);
        assert_eq!(out.state.pending_intents[&2], images);
        assert!(out.state.outcomes.contains(&1));
    }

    #[test]
    fn torn_final_record_is_dropped_not_applied() {
        let store = LogStore::new(LogConfig::default());
        store.append(LogRecord::SegmentCreate { seg: seg(1), len: 2 * PAGE_SIZE as u64 });
        store.append(LogRecord::PageWrite { seg: seg(1), page: 0, version: 1, data: page(1) });
        store.append(LogRecord::PageWrite { seg: seg(1), page: 1, version: 1, data: page(2) });
        // Power fails mid-way through the last page write: the tail of
        // the record never hit the media.
        store.tear_tail(100);
        store.crash();
        let out = store.replay();
        assert_eq!(out.torn_dropped, 1);
        let rs = &out.state.segments[&seg(1)];
        assert_eq!(rs.pages[&0], (1, page(1)), "earlier records still apply");
        assert!(!rs.pages.contains_key(&1), "torn record must not apply");

        // A half-written *checksum* (garbage bytes, full length) is
        // equally torn.
        store.append(LogRecord::PageWrite { seg: seg(1), page: 1, version: 2, data: page(3) });
        store.tear_tail(1);
        {
            let mut inner = store.inner.lock();
            inner.media.last_mut().unwrap().push(0xFF);
        }
        let out = store.replay();
        assert_eq!(out.torn_dropped, 1);
        assert!(!out.state.segments[&seg(1)].pages.contains_key(&1));
    }

    #[test]
    fn segments_seal_and_compaction_shrinks_media() {
        let cfg = LogConfig {
            segment_bytes: 64 * 1024,
            auto_compact: false,
            ..LogConfig::default()
        };
        let store = LogStore::new(cfg);
        store.append(LogRecord::SegmentCreate { seg: seg(1), len: PAGE_SIZE as u64 });
        for version in 1..=40u64 {
            store.append(LogRecord::PageWrite { seg: seg(1), page: 0, version, data: page(version as u8) });
        }
        let before = store.stats();
        assert!(before.segments_sealed >= 4, "40 page records overflow 64 KiB segments");
        assert!(before.dead_bytes > 0);

        let replay_before = store.replay().state;
        store.compact();
        let after = store.stats();
        assert!(after.media_bytes < before.media_bytes / 10, "39 of 40 page records were dead");
        assert_eq!(after.compactions, 1);
        assert_eq!(store.replay().state, replay_before);
    }

    #[test]
    fn auto_compaction_bounds_media_growth() {
        let cfg = LogConfig {
            segment_bytes: 64 * 1024,
            auto_compact: true,
            compact_min_bytes: 128 * 1024,
        };
        let store = LogStore::new(cfg);
        store.append(LogRecord::SegmentCreate { seg: seg(1), len: PAGE_SIZE as u64 });
        for version in 1..=200u64 {
            store.append(LogRecord::PageWrite { seg: seg(1), page: 0, version, data: page(version as u8) });
        }
        let stats = store.stats();
        assert!(stats.compactions >= 1, "rewriting one page 200 times must trigger compaction");
        assert!(
            stats.media_bytes < 256 * 1024,
            "media stays bounded near the live set, got {}",
            stats.media_bytes
        );
        assert_eq!(store.replay().state.segments[&seg(1)].pages[&0], (200, page(200)));
    }

    #[test]
    fn replay_cost_charges_seek_plus_stream() {
        let cost = replay_cost(1_000_000, 4);
        assert_eq!(cost, Vt::from_millis(40) + Vt::from_millis(1_000));
    }
}
