//! Sysnames: the flat, global, unique names of Clouds (§2.1).
//!
//! "Each Clouds object has a global system-level name called a sysname,
//! which is a bit string that is unique over the entire distributed
//! system. Therefore, the sysname-based naming scheme in Clouds creates a
//! uniform, flat system name space."
//!
//! Segments, objects and classes all carry sysnames. A sysname is 128
//! bits: the high 64 encode the generating node, the low 64 a per-node
//! counter — unique without coordination, exactly what a real system
//! derives from station ids.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A systemwide unique name for a segment, object, or class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SysName {
    hi: u64,
    lo: u64,
}

impl SysName {
    /// The reserved nil sysname (never generated).
    pub const NIL: SysName = SysName { hi: 0, lo: 0 };

    /// Construct from raw halves; used by generators and tests.
    pub const fn from_parts(hi: u64, lo: u64) -> SysName {
        SysName { hi, lo }
    }

    /// The raw 128-bit value.
    pub const fn as_u128(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// Whether this is the nil sysname.
    pub const fn is_nil(self) -> bool {
        self.hi == 0 && self.lo == 0
    }

    /// Parse the `{hi:016x}-{lo:016x}` form produced by `Display`.
    pub fn parse(s: &str) -> Option<SysName> {
        let (hi, lo) = s.split_once('-')?;
        if hi.len() != 16 || lo.len() != 16 {
            return None;
        }
        Some(SysName {
            hi: u64::from_str_radix(hi, 16).ok()?,
            lo: u64::from_str_radix(lo, 16).ok()?,
        })
    }
}

impl fmt::Display for SysName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}-{:016x}", self.hi, self.lo)
    }
}

impl fmt::Debug for SysName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SysName({self})")
    }
}

/// Per-node sysname generator.
///
/// ```
/// use clouds_ra::SysNameGen;
/// let g = SysNameGen::new(3);
/// let a = g.next();
/// let b = g.next();
/// assert_ne!(a, b);
/// ```
#[derive(Debug)]
pub struct SysNameGen {
    node: u64,
    counter: AtomicU64,
}

impl SysNameGen {
    /// Generator for names minted by `node`.
    pub fn new(node: u32) -> SysNameGen {
        SysNameGen {
            node: node as u64,
            counter: AtomicU64::new(1),
        }
    }

    /// Mint a fresh, never-before-returned sysname.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&self) -> SysName {
        SysName {
            hi: self.node,
            lo: self.counter.fetch_add(1, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_parse_roundtrip() {
        let s = SysName::from_parts(0xABCD, 42);
        let text = s.to_string();
        assert_eq!(SysName::parse(&text), Some(s));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(SysName::parse("xyz").is_none());
        assert!(SysName::parse("0-0").is_none());
        assert!(SysName::parse("000000000000000g-0000000000000001").is_none());
    }

    #[test]
    fn nil_detection() {
        assert!(SysName::NIL.is_nil());
        assert!(!SysName::from_parts(0, 1).is_nil());
    }

    #[test]
    fn generators_never_collide() {
        let g1 = SysNameGen::new(1);
        let g2 = SysNameGen::new(2);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(g1.next()));
            assert!(seen.insert(g2.next()));
        }
    }

    #[test]
    fn generator_is_thread_safe() {
        use std::sync::Arc;
        let g = Arc::new(SysNameGen::new(7));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || (0..500).map(|_| g.next()).collect::<Vec<_>>())
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for s in h.join().unwrap() {
                assert!(seen.insert(s));
            }
        }
        assert_eq!(seen.len(), 2000);
    }

    #[test]
    fn ordering_is_lexicographic_on_parts() {
        assert!(SysName::from_parts(1, 99) < SysName::from_parts(2, 0));
        assert!(SysName::from_parts(1, 1) < SysName::from_parts(1, 2));
    }

    #[test]
    fn as_u128_packs_parts() {
        let s = SysName::from_parts(1, 2);
        assert_eq!(s.as_u128(), (1u128 << 64) | 2);
    }
}
