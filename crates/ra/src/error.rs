//! Kernel error type.

use crate::sysname::SysName;
use std::fmt;

/// Errors surfaced by Ra kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RaError {
    /// No segment with this sysname exists in the contacted partition.
    SegmentNotFound(SysName),
    /// A segment with this sysname already exists.
    SegmentExists(SysName),
    /// Access beyond the end of a segment.
    OutOfRange {
        /// Segment that was accessed.
        segment: SysName,
        /// Byte offset of the access.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// Segment size in bytes.
        segment_len: u64,
    },
    /// A virtual address that no mapping covers.
    Unmapped(u64),
    /// An access that would span two mappings (or run past one).
    CrossesMapping(u64),
    /// A new mapping overlaps an existing one.
    OverlappingMapping(u64),
    /// Write attempted through a read-only mapping.
    ReadOnly(u64),
    /// The partition could not service the request (e.g. remote data
    /// server unreachable).
    PartitionUnavailable(String),
    /// The segment's home answered but could not reach a backup
    /// replica, so the write is not durable on the full replica set.
    /// Unlike [`RaError::PartitionUnavailable`], re-resolving the home
    /// cannot help — the home has not moved, a *backup* is down.
    ReplicaUnavailable(String),
    /// An invalidation or lock protocol conflict; retry after backoff.
    Conflict(String),
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaError::SegmentNotFound(s) => write!(f, "segment {s} not found"),
            RaError::SegmentExists(s) => write!(f, "segment {s} already exists"),
            RaError::OutOfRange {
                segment,
                offset,
                len,
                segment_len,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) outside segment {segment} of {segment_len} bytes"
            ),
            RaError::Unmapped(a) => write!(f, "virtual address {a:#x} is unmapped"),
            RaError::CrossesMapping(a) => {
                write!(f, "access at {a:#x} crosses a mapping boundary")
            }
            RaError::OverlappingMapping(a) => {
                write!(f, "mapping at {a:#x} overlaps an existing mapping")
            }
            RaError::ReadOnly(a) => write!(f, "write to read-only mapping at {a:#x}"),
            RaError::PartitionUnavailable(m) => write!(f, "partition unavailable: {m}"),
            RaError::ReplicaUnavailable(m) => write!(f, "replica unavailable: {m}"),
            RaError::Conflict(m) => write!(f, "protocol conflict: {m}"),
        }
    }
}

impl std::error::Error for RaError {}
