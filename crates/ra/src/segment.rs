//! Segments and the stable segment store (§4.1).
//!
//! A segment is "a sequence of uninterpreted bytes of variable length
//! that exists either on the disk or in physical memory". The canonical,
//! durable copy of every segment lives in the [`SegmentStore`] of exactly
//! one data server; compute servers only hold demand-paged cached frames
//! (see `clouds-dsm`).

use crate::error::RaError;
use crate::sysname::SysName;
use crate::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Size of a kernel page in bytes, matching the Sun-3's 8 KB pages used
/// in the paper's measurements.
pub const PAGE_SIZE: usize = 8192;

/// One page worth of bytes. Pages start zero-filled and are allocated
/// lazily, so touching a fresh page models the paper's "zero-filled
/// page fault".
pub type PageData = Box<[u8; PAGE_SIZE]>;

fn zero_page() -> PageData {
    // `vec!` then convert keeps the 8 KB off the stack.
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("exact page size")
}

/// A segment: named, variable-length, persistent byte storage.
///
/// Pages are `None` until first written; a `None` page reads as zeros.
/// Every page carries a version counter incremented on each write-back,
/// used by the DSM coherence protocol and PET's quorum reads.
#[derive(Debug)]
pub struct Segment {
    name: SysName,
    len: u64,
    pages: Vec<Option<PageData>>,
    versions: Vec<u64>,
}

impl Segment {
    /// Create an all-zero segment of `len` bytes.
    pub fn new(name: SysName, len: u64) -> Segment {
        let n_pages = (len as usize).div_ceil(PAGE_SIZE);
        Segment {
            name,
            len,
            pages: (0..n_pages).map(|_| None).collect(),
            versions: vec![0; n_pages],
        }
    }

    /// The segment's sysname.
    pub fn name(&self) -> SysName {
        self.name
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Whether `page` has ever been written (false ⇒ reads as zeros).
    pub fn is_page_materialized(&self, page: u32) -> bool {
        self.pages
            .get(page as usize)
            .is_some_and(|p| p.is_some())
    }

    /// Version counter of `page` (0 if never written).
    pub fn page_version(&self, page: u32) -> u64 {
        self.versions.get(page as usize).copied().unwrap_or(0)
    }

    fn check_page(&self, page: u32) -> Result<usize> {
        let idx = page as usize;
        if idx >= self.pages.len() {
            return Err(RaError::OutOfRange {
                segment: self.name,
                offset: page as u64 * PAGE_SIZE as u64,
                len: PAGE_SIZE as u64,
                segment_len: self.len,
            });
        }
        Ok(idx)
    }

    /// Copy out one full page (zeros if never written).
    ///
    /// # Errors
    ///
    /// [`RaError::OutOfRange`] if `page` is past the end.
    pub fn read_page(&self, page: u32) -> Result<Vec<u8>> {
        let idx = self.check_page(page)?;
        Ok(match &self.pages[idx] {
            Some(data) => data.to_vec(),
            None => vec![0u8; PAGE_SIZE],
        })
    }

    /// Overwrite one full page, bumping its version.
    ///
    /// # Errors
    ///
    /// [`RaError::OutOfRange`] if `page` is past the end or `data` is not
    /// exactly one page.
    pub fn write_page(&mut self, page: u32, data: &[u8]) -> Result<u64> {
        let idx = self.check_page(page)?;
        if data.len() != PAGE_SIZE {
            return Err(RaError::OutOfRange {
                segment: self.name,
                offset: page as u64 * PAGE_SIZE as u64,
                len: data.len() as u64,
                segment_len: self.len,
            });
        }
        let dst = self.pages[idx].get_or_insert_with(zero_page);
        dst.copy_from_slice(data);
        self.versions[idx] += 1;
        Ok(self.versions[idx])
    }

    /// Install a replayed page image *and* its logged version — the
    /// recovery path of a data server rebuilding its in-memory segment
    /// cache from the append-only log (`clouds-store`). Unlike
    /// [`Segment::write_page`] this does not mint a new version: the
    /// version counter must continue exactly where the pre-crash server
    /// left it, or post-restart mirror pushes would be mistaken for
    /// stale duplicates by their receivers.
    ///
    /// # Errors
    ///
    /// [`RaError::OutOfRange`] if `page` is past the end or `data` is
    /// not exactly one page.
    pub fn restore_page(&mut self, page: u32, data: &[u8], version: u64) -> Result<()> {
        let idx = self.check_page(page)?;
        if data.len() != PAGE_SIZE {
            return Err(RaError::OutOfRange {
                segment: self.name,
                offset: page as u64 * PAGE_SIZE as u64,
                len: data.len() as u64,
                segment_len: self.len,
            });
        }
        let dst = self.pages[idx].get_or_insert_with(zero_page);
        dst.copy_from_slice(data);
        self.versions[idx] = self.versions[idx].max(version);
        Ok(())
    }

    /// Read an arbitrary byte range (may span pages).
    ///
    /// # Errors
    ///
    /// [`RaError::OutOfRange`] if the range extends past the segment.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.check_range(offset, len as u64)?;
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let pos = offset as usize + done;
            let page = pos / PAGE_SIZE;
            let in_page = pos % PAGE_SIZE;
            let chunk = (PAGE_SIZE - in_page).min(len - done);
            if let Some(Some(data)) = self.pages.get(page) {
                out[done..done + chunk].copy_from_slice(&data[in_page..in_page + chunk]);
            }
            done += chunk;
        }
        Ok(out)
    }

    /// Write an arbitrary byte range (may span pages), bumping versions
    /// of the touched pages.
    ///
    /// # Errors
    ///
    /// [`RaError::OutOfRange`] if the range extends past the segment.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_range(offset, data.len() as u64)?;
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset as usize + done;
            let page = pos / PAGE_SIZE;
            let in_page = pos % PAGE_SIZE;
            let chunk = (PAGE_SIZE - in_page).min(data.len() - done);
            let dst = self.pages[page].get_or_insert_with(zero_page);
            dst[in_page..in_page + chunk].copy_from_slice(&data[done..done + chunk]);
            self.versions[page] += 1;
            done += chunk;
        }
        Ok(())
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<()> {
        if offset.saturating_add(len) > self.len {
            return Err(RaError::OutOfRange {
                segment: self.name,
                offset,
                len,
                segment_len: self.len,
            });
        }
        Ok(())
    }
}

/// The in-memory segment cache of a data server. Despite the name this
/// is *volatile* state: durability lives in the append-only log
/// (`clouds-store`), which every mutation writes through before it is
/// acknowledged. A crash wipes this map ([`SegmentStore::clear`]) and
/// restart rebuilds it by replaying the log — the same split as the
/// prototype's data service, where DRAM caching fronted the Unix files
/// that actually persisted.
///
/// Cheap to clone; clones share the same store.
#[derive(Debug, Clone, Default)]
pub struct SegmentStore {
    segments: Arc<RwLock<HashMap<SysName, Arc<RwLock<Segment>>>>>,
}

impl SegmentStore {
    /// An empty store.
    pub fn new() -> SegmentStore {
        SegmentStore::default()
    }

    /// Create a segment of `len` zero bytes.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentExists`] if the sysname is taken.
    pub fn create(&self, name: SysName, len: u64) -> Result<()> {
        let mut map = self.segments.write();
        if map.contains_key(&name) {
            return Err(RaError::SegmentExists(name));
        }
        map.insert(name, Arc::new(RwLock::new(Segment::new(name, len))));
        Ok(())
    }

    /// Destroy a segment ("segments persist until explicitly destroyed").
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`] if absent.
    pub fn destroy(&self, name: SysName) -> Result<()> {
        self.segments
            .write()
            .remove(&name)
            .map(|_| ())
            .ok_or(RaError::SegmentNotFound(name))
    }

    /// Shared handle to a segment.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`] if absent.
    pub fn get(&self, name: SysName) -> Result<Arc<RwLock<Segment>>> {
        self.segments
            .read()
            .get(&name)
            .cloned()
            .ok_or(RaError::SegmentNotFound(name))
    }

    /// Whether a segment exists.
    pub fn contains(&self, name: SysName) -> bool {
        self.segments.read().contains_key(&name)
    }

    /// Drop every segment — the crash simulation wiping the data
    /// server's DRAM. The caller is expected to repopulate from the
    /// durable log before serving again.
    pub fn clear(&self) {
        self.segments.write().clear();
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.segments.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.read().is_empty()
    }

    /// Sysnames of all stored segments, in sysname order.
    pub fn names(&self) -> Vec<SysName> {
        // lint:allow(hash-iter) — sorted before returning.
        let mut names: Vec<SysName> = self.segments.read().keys().copied().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: u64) -> SysName {
        SysName::from_parts(1, n)
    }

    #[test]
    fn fresh_segment_reads_zeros() {
        let s = Segment::new(name(1), 3 * PAGE_SIZE as u64);
        assert_eq!(s.page_count(), 3);
        assert!(!s.is_page_materialized(0));
        assert_eq!(s.read(100, 8).unwrap(), vec![0u8; 8]);
        assert_eq!(s.read_page(2).unwrap(), vec![0u8; PAGE_SIZE]);
    }

    #[test]
    fn partial_last_page() {
        let s = Segment::new(name(1), PAGE_SIZE as u64 + 100);
        assert_eq!(s.page_count(), 2);
        assert_eq!(s.len(), PAGE_SIZE as u64 + 100);
    }

    #[test]
    fn write_then_read_across_pages() {
        let mut s = Segment::new(name(1), 3 * PAGE_SIZE as u64);
        let data: Vec<u8> = (0..(PAGE_SIZE + 500)).map(|i| (i % 256) as u8).collect();
        let offset = PAGE_SIZE as u64 - 250;
        s.write(offset, &data).unwrap();
        assert_eq!(s.read(offset, data.len()).unwrap(), data);
        assert!(s.is_page_materialized(0));
        assert!(s.is_page_materialized(1));
        assert!(s.is_page_materialized(2));
    }

    #[test]
    fn versions_bump_on_write() {
        let mut s = Segment::new(name(1), 2 * PAGE_SIZE as u64);
        assert_eq!(s.page_version(0), 0);
        s.write(0, b"x").unwrap();
        assert_eq!(s.page_version(0), 1);
        assert_eq!(s.page_version(1), 0);
        s.write_page(1, &vec![7u8; PAGE_SIZE]).unwrap();
        assert_eq!(s.page_version(1), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = Segment::new(name(1), 100);
        assert!(matches!(
            s.read(90, 20),
            Err(RaError::OutOfRange { .. })
        ));
        assert!(matches!(
            s.write(101, b"a"),
            Err(RaError::OutOfRange { .. })
        ));
        assert!(matches!(s.read_page(1), Err(RaError::OutOfRange { .. })));
    }

    #[test]
    fn write_page_requires_exact_size() {
        let mut s = Segment::new(name(1), PAGE_SIZE as u64);
        assert!(s.write_page(0, &[0u8; 10]).is_err());
        assert!(s.write_page(0, &vec![0u8; PAGE_SIZE]).is_ok());
    }

    #[test]
    fn store_create_get_destroy() {
        let store = SegmentStore::new();
        store.create(name(1), 100).unwrap();
        assert!(matches!(
            store.create(name(1), 100),
            Err(RaError::SegmentExists(_))
        ));
        assert!(store.contains(name(1)));
        assert_eq!(store.len(), 1);
        store.get(name(1)).unwrap().write().write(0, b"hi").unwrap();
        assert_eq!(
            store.get(name(1)).unwrap().read().read(0, 2).unwrap(),
            b"hi"
        );
        store.destroy(name(1)).unwrap();
        assert!(matches!(
            store.get(name(1)),
            Err(RaError::SegmentNotFound(_))
        ));
        assert!(matches!(
            store.destroy(name(1)),
            Err(RaError::SegmentNotFound(_))
        ));
    }

    #[test]
    fn store_clones_share_state() {
        let store = SegmentStore::new();
        let alias = store.clone();
        store.create(name(9), 10).unwrap();
        assert!(alias.contains(name(9)));
    }

    #[test]
    fn zero_length_segment() {
        let s = Segment::new(name(1), 0);
        assert!(s.is_empty());
        assert_eq!(s.page_count(), 0);
        assert_eq!(s.read(0, 0).unwrap(), Vec::<u8>::new());
    }
}
