//! Partitions and the per-node page-frame cache (§4.1, §4.2).
//!
//! "A partition is an entity that provides non-volatile data storage for
//! segments. … In order to access a segment, the partition containing
//! the segment has to be contacted. The partition communicates with the
//! data server where the segment is stored to page the segment in and
//! out when necessary. Note that Ra only defines the interface to the
//! partitions."
//!
//! Ra defines [`Partition`]; two implementations exist:
//!
//! * [`LocalPartition`] (here) — backed directly by a [`SegmentStore`],
//!   used by data servers and by single-node configurations. It charges
//!   the paper's page-fault service costs to the node clock.
//! * `DsmClientPartition` (in `clouds-dsm`) — pages segments over RaTP
//!   from remote data servers with coherence.
//!
//! The [`PageCache`] is the node's "physical memory": resident page
//! frames shared by all address spaces on the node, with LRU eviction
//! and write-back.

use crate::segment::SegmentStore;
use crate::sysname::SysName;
use crate::Result;
use clouds_simnet::{CostModel, VirtualClock};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a page will be used; determines the coherence mode requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessMode {
    /// Read-only access; many nodes may share the page.
    Read,
    /// Read–write access; requires exclusive ownership under DSM.
    Write,
}

/// A page delivered by a partition.
#[derive(Debug, Clone)]
pub struct PageFetch {
    /// Exactly [`PAGE_SIZE`](crate::PAGE_SIZE) bytes.
    pub data: Vec<u8>,
    /// Version counter at the canonical store.
    pub version: u64,
    /// True if the page had never been written (zero-fill fault).
    pub zero_filled: bool,
    /// Coherence grant sequence number; echoed back through
    /// [`Partition::ack_page_install`] once the frame is resident, so
    /// the manager knows recalls can no longer miss the copy. Zero for
    /// partitions without a coherence protocol.
    pub grant_seq: u64,
}

/// Interface between virtual memory and segment storage.
///
/// All methods may block (the DSM implementation performs network
/// transactions); callers inside IsiBas should wrap faults in
/// [`crate::sched::IsiBaCtx::blocking`].
pub trait Partition: Send + Sync {
    /// Create a segment of `len` zero bytes.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentExists`](crate::RaError::SegmentExists) if the sysname is taken;
    /// [`RaError::PartitionUnavailable`](crate::RaError::PartitionUnavailable) if storage is unreachable.
    fn create_segment(&self, seg: SysName, len: u64) -> Result<()>;

    /// Destroy a segment permanently.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`](crate::RaError::SegmentNotFound) if absent.
    fn destroy_segment(&self, seg: SysName) -> Result<()>;

    /// Length of a segment in bytes.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`](crate::RaError::SegmentNotFound) if absent.
    fn segment_len(&self, seg: SysName) -> Result<u64>;

    /// Fetch one page in the given mode (demand paging).
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`](crate::RaError::SegmentNotFound) / [`RaError::OutOfRange`](crate::RaError::OutOfRange) for bad
    /// addresses; [`RaError::PartitionUnavailable`](crate::RaError::PartitionUnavailable) on data-server
    /// failure.
    fn fetch_page(&self, seg: SysName, page: u32, mode: AccessMode) -> Result<PageFetch>;

    /// Write a dirty page back to the canonical store, returning its new
    /// version.
    ///
    /// # Errors
    ///
    /// As for [`Partition::fetch_page`].
    fn write_back(&self, seg: SysName, page: u32, data: &[u8]) -> Result<u64>;

    /// Relinquish any coherence state held for the page (clean drop).
    ///
    /// # Errors
    ///
    /// [`RaError::PartitionUnavailable`](crate::RaError::PartitionUnavailable) on data-server failure.
    fn release_page(&self, seg: SysName, page: u32) -> Result<()>;

    /// Acknowledge that the page from a [`Partition::fetch_page`] grant
    /// is now resident locally. Coherence-managed partitions forward
    /// this to the manager; the default is a no-op.
    ///
    /// Every [`Partition::fetch_page`] grant MUST eventually be
    /// acknowledged — either by the page cache once the frame is
    /// resident, or immediately by the caller when the page is not
    /// retained (use [`Partition::fetch_page_transient`] for that).
    fn ack_page_install(&self, seg: SysName, page: u32, grant_seq: u64) {
        let _ = (seg, page, grant_seq);
    }

    /// Fetch a page read-only without retaining a coherent copy: the
    /// grant is acknowledged immediately. For one-shot reads (object
    /// headers, code paging) outside the page cache.
    ///
    /// # Errors
    ///
    /// As for [`Partition::fetch_page`].
    fn fetch_page_transient(&self, seg: SysName, page: u32) -> Result<PageFetch> {
        let fetch = self.fetch_page(seg, page, AccessMode::Read)?;
        self.ack_page_install(seg, page, fetch.grant_seq);
        Ok(fetch)
    }
}

/// Partition backed by a local [`SegmentStore`] — the configuration of a
/// machine whose disk holds the segments it uses.
pub struct LocalPartition {
    store: SegmentStore,
    clock: Arc<VirtualClock>,
    cost: CostModel,
}

impl fmt::Debug for LocalPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalPartition")
            .field("segments", &self.store.len())
            .finish()
    }
}

impl LocalPartition {
    /// Wrap a segment store, charging fault costs to `clock`.
    pub fn new(store: SegmentStore, clock: Arc<VirtualClock>, cost: CostModel) -> LocalPartition {
        LocalPartition { store, clock, cost }
    }

    /// The underlying store.
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }
}

impl Partition for LocalPartition {
    fn create_segment(&self, seg: SysName, len: u64) -> Result<()> {
        self.store.create(seg, len)
    }

    fn destroy_segment(&self, seg: SysName) -> Result<()> {
        self.store.destroy(seg)
    }

    fn segment_len(&self, seg: SysName) -> Result<u64> {
        Ok(self.store.get(seg)?.read().len())
    }

    fn fetch_page(&self, seg: SysName, page: u32, _mode: AccessMode) -> Result<PageFetch> {
        let segment = self.store.get(seg)?;
        let segment = segment.read();
        let zero_filled = !segment.is_page_materialized(page);
        let data = segment.read_page(page)?;
        // Paper §4.3: 1.5 ms to service a zero-filled 8K fault, 0.629 ms
        // for a non-zero-filled (copied) page.
        self.clock.charge(if zero_filled {
            self.cost.page_fault_zero
        } else {
            self.cost.page_fault_copy
        });
        Ok(PageFetch {
            data,
            version: segment.page_version(page),
            zero_filled,
            grant_seq: 0,
        })
    }

    fn write_back(&self, seg: SysName, page: u32, data: &[u8]) -> Result<u64> {
        self.store.get(seg)?.write().write_page(page, data)
    }

    fn release_page(&self, _seg: SysName, _page: u32) -> Result<()> {
        Ok(())
    }
}

/// A resident page frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Page contents ([`PAGE_SIZE`](crate::PAGE_SIZE) bytes).
    pub data: Vec<u8>,
    /// Mode the frame is held in.
    pub mode: AccessMode,
    /// Whether the frame has unwritten modifications.
    pub dirty: bool,
    /// Version the frame was fetched at.
    pub version: u64,
}

/// Why a slot is temporarily unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusyKind {
    /// A fault is in flight; the local copy (if any) has been dropped.
    Fetch,
    /// An eviction write-back is in flight; the latest data is still on
    /// its way to the canonical store.
    Evict,
}

enum Slot {
    /// A fault or eviction is in progress.
    Busy(BusyKind),
    Present(Frame),
}

#[derive(Default)]
struct CacheInner {
    slots: HashMap<(SysName, u32), Slot>,
    lru: VecDeque<(SysName, u32)>,
}

/// Result of [`PageCache::reclaim`], used by the DSM client service when
/// the data server recalls a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReclaimOutcome {
    /// The page was not resident (already evicted).
    NotPresent,
    /// The page was resident; contains the latest data if it was dirty.
    Taken {
        /// Dirty contents that must reach the canonical store, if any.
        dirty_data: Option<Vec<u8>>,
    },
}

/// Counters describing fault behaviour; basis of experiment E1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses satisfied from a resident frame.
    pub hits: u64,
    /// Faults that required a partition fetch.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Mode upgrades (shared ➜ exclusive).
    pub upgrades: u64,
}

/// The node's resident page frames ("physical memory"), shared by every
/// address space on the node.
pub struct PageCache {
    inner: Mutex<CacheInner>,
    cvar: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    upgrades: AtomicU64,
}

impl fmt::Debug for PageCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageCache")
            .field("resident", &self.inner.lock().slots.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl PageCache {
    /// A cache holding at most `capacity` page frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PageCache {
        assert!(capacity > 0, "page cache needs at least one frame");
        PageCache {
            inner: Mutex::new(CacheInner::default()),
            cvar: Condvar::new(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            upgrades: AtomicU64::new(0),
        }
    }

    /// Access a page in `mode`, faulting it in through `partition` if
    /// necessary, and run `f` on the resident frame.
    ///
    /// Writes through `f` must set `frame.dirty = true` (the
    /// [`crate::AddressSpace`] write path does this).
    ///
    /// # Errors
    ///
    /// Propagates partition errors from the fault path.
    pub fn access<R>(
        &self,
        key: (SysName, u32),
        mode: AccessMode,
        partition: &dyn Partition,
        f: impl FnOnce(&mut Frame) -> R,
    ) -> Result<R> {
        loop {
            let mut inner = self.inner.lock();
            match inner.slots.get_mut(&key) {
                Some(Slot::Present(frame)) if frame.mode >= mode => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let result = f(frame);
                    Self::touch_lru(&mut inner, key);
                    return Ok(result);
                }
                Some(Slot::Present(_)) => {
                    // Mode upgrade: refetch exclusively. Take the slot so
                    // concurrent faulters wait. The shared copy is clean
                    // by construction (writes require exclusive mode), so
                    // dropping it loses nothing.
                    self.upgrades.fetch_add(1, Ordering::Relaxed);
                    inner.slots.insert(key, Slot::Busy(BusyKind::Fetch));
                    drop(inner);
                    return self.fault_in(key, mode, partition, f);
                }
                Some(Slot::Busy(_)) => {
                    self.cvar.wait(&mut inner);
                    continue;
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    inner.slots.insert(key, Slot::Busy(BusyKind::Fetch));
                    // Evict beyond capacity before fetching more.
                    let victim = Self::pick_victim(&mut inner, self.capacity);
                    drop(inner);
                    if let Some((vkey, vframe)) = victim {
                        self.write_out(vkey, vframe, partition)?;
                    }
                    return self.fault_in(key, mode, partition, f);
                }
            }
        }
    }

    fn fault_in<R>(
        &self,
        key: (SysName, u32),
        mode: AccessMode,
        partition: &dyn Partition,
        f: impl FnOnce(&mut Frame) -> R,
    ) -> Result<R> {
        let fetched = partition.fetch_page(key.0, key.1, mode);
        let mut inner = self.inner.lock();
        match fetched {
            Ok(page) => {
                let grant_seq = page.grant_seq;
                let mut frame = Frame {
                    data: page.data,
                    mode,
                    dirty: false,
                    version: page.version,
                };
                let result = f(&mut frame);
                inner.slots.insert(key, Slot::Present(frame));
                Self::touch_lru(&mut inner, key);
                self.cvar.notify_all();
                drop(inner);
                // The frame is now visible to recalls: tell the manager
                // so it may issue the next grant for this page.
                partition.ack_page_install(key.0, key.1, grant_seq);
                Ok(result)
            }
            Err(e) => {
                inner.slots.remove(&key);
                self.cvar.notify_all();
                Err(e)
            }
        }
    }

    fn touch_lru(inner: &mut CacheInner, key: (SysName, u32)) {
        if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
            inner.lru.remove(pos);
        }
        inner.lru.push_back(key);
    }

    /// Select and detach an LRU victim if over capacity (the caller
    /// performs the write-back outside the lock; the victim slot is
    /// marked Busy meanwhile).
    fn pick_victim(inner: &mut CacheInner, capacity: usize) -> Option<((SysName, u32), Frame)> {
        let resident = inner
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Present(_)))
            .count();
        if resident < capacity {
            return None;
        }
        while let Some(key) = inner.lru.pop_front() {
            if let Some(Slot::Present(_)) = inner.slots.get(&key) {
                if let Some(Slot::Present(frame)) = inner.slots.remove(&key) {
                    inner.slots.insert(key, Slot::Busy(BusyKind::Evict));
                    return Some((key, frame));
                }
            }
            // else: stale LRU entry (slot busy or gone); keep scanning.
        }
        None
    }

    fn write_out(
        &self,
        key: (SysName, u32),
        frame: Frame,
        partition: &dyn Partition,
    ) -> Result<()> {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let result = (|| {
            if frame.dirty {
                partition.write_back(key.0, key.1, &frame.data)?;
            }
            partition.release_page(key.0, key.1)
        })();
        let mut inner = self.inner.lock();
        inner.slots.remove(&key); // clear the Busy marker
        self.cvar.notify_all();
        result
    }

    /// Recall a page on behalf of the DSM server: removes the frame
    /// (waiting out any in-flight fault) and returns dirty data if the
    /// local copy was modified.
    pub fn reclaim(&self, key: (SysName, u32)) -> ReclaimOutcome {
        let mut inner = self.inner.lock();
        loop {
            match inner.slots.get(&key) {
                // A fetch in flight means the local copy was dropped; the
                // fetch will be (re)serialized by the data server, so the
                // page is effectively not here. Waiting would deadlock
                // with the server-side coherence transition.
                Some(Slot::Busy(BusyKind::Fetch)) => return ReclaimOutcome::NotPresent,
                // An eviction's dirty data is still in flight to the
                // store: wait it out so the caller sees it there.
                Some(Slot::Busy(BusyKind::Evict)) => self.cvar.wait(&mut inner),
                Some(Slot::Present(_)) => {
                    let Some(Slot::Present(frame)) = inner.slots.remove(&key) else {
                        unreachable!("checked above")
                    };
                    if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                        inner.lru.remove(pos);
                    }
                    self.cvar.notify_all();
                    return ReclaimOutcome::Taken {
                        dirty_data: frame.dirty.then_some(frame.data),
                    };
                }
                None => return ReclaimOutcome::NotPresent,
            }
        }
    }

    /// Downgrade an exclusively held page to shared, returning dirty
    /// data that must reach the canonical store.
    pub fn downgrade(&self, key: (SysName, u32)) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        loop {
            match inner.slots.get_mut(&key) {
                Some(Slot::Busy(BusyKind::Fetch)) => return None,
                Some(Slot::Busy(BusyKind::Evict)) => self.cvar.wait(&mut inner),
                Some(Slot::Present(frame)) => {
                    frame.mode = AccessMode::Read;
                    let dirty = std::mem::take(&mut frame.dirty);
                    return dirty.then(|| frame.data.clone());
                }
                None => return None,
            }
        }
    }

    /// Write every dirty frame back through `partition` (e.g. at commit
    /// or orderly shutdown), leaving frames resident and clean.
    ///
    /// Each frame is marked busy (as during eviction) while its data is
    /// in flight, so a concurrent DSM recall waits for the write-back
    /// instead of reporting a stale-clean copy — reporting clean early
    /// would serve other nodes stale canonical data (a lost update).
    ///
    /// # Errors
    ///
    /// Propagates the first write-back failure (the frame is reinstated
    /// dirty so the data is not lost).
    pub fn flush(&self, partition: &dyn Partition) -> Result<()> {
        let dirty_keys: Vec<(SysName, u32)> = {
            let inner = self.inner.lock();
            inner
                .slots
                .iter()
                .filter_map(|(key, slot)| match slot {
                    Slot::Present(frame) if frame.dirty => Some(*key),
                    _ => None,
                })
                .collect()
        };
        for key in dirty_keys {
            // Detach the frame behind an Evict marker.
            let frame = {
                let mut inner = self.inner.lock();
                match inner.slots.get(&key) {
                    Some(Slot::Present(frame)) if frame.dirty => {
                        let Some(Slot::Present(frame)) = inner.slots.remove(&key) else {
                            unreachable!("checked above")
                        };
                        inner.slots.insert(key, Slot::Busy(BusyKind::Evict));
                        frame
                    }
                    // Raced with eviction/reclaim; nothing to do here.
                    _ => continue,
                }
            };
            let result = partition.write_back(key.0, key.1, &frame.data);
            let mut inner = self.inner.lock();
            // Only reinstate if nobody reclaimed the page meanwhile.
            if matches!(inner.slots.get(&key), Some(Slot::Busy(BusyKind::Evict))) {
                let mut frame = frame;
                frame.dirty = result.is_err();
                inner.slots.insert(key, Slot::Present(frame));
            }
            self.cvar.notify_all();
            drop(inner);
            result?;
        }
        Ok(())
    }

    /// Drop all frames without write-back (crash simulation).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.slots.clear();
        inner.lru.clear();
        self.cvar.notify_all();
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.inner
            .lock()
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Present(_)))
            .count()
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RaError;
    use crate::segment::PAGE_SIZE;
    use clouds_simnet::Vt;

    fn setup(capacity: usize) -> (Arc<LocalPartition>, PageCache, Arc<VirtualClock>, SysName) {
        let clock = Arc::new(VirtualClock::new());
        let store = SegmentStore::new();
        let seg = SysName::from_parts(1, 1);
        store.create(seg, 8 * PAGE_SIZE as u64).unwrap();
        let part = Arc::new(LocalPartition::new(
            store,
            Arc::clone(&clock),
            CostModel::sun3_ethernet(),
        ));
        (part, PageCache::new(capacity), clock, seg)
    }

    #[test]
    fn zero_fill_fault_charges_paper_cost() {
        let (part, cache, clock, seg) = setup(4);
        cache
            .access((seg, 0), AccessMode::Read, &*part, |f| {
                assert_eq!(f.data.len(), PAGE_SIZE);
                assert!(f.data.iter().all(|&b| b == 0));
            })
            .unwrap();
        assert_eq!(clock.now(), Vt::from_micros(1500));
    }

    #[test]
    fn copy_fault_charges_smaller_cost() {
        let (part, cache, clock, seg) = setup(4);
        // Materialize page 0 in the store first.
        part.store()
            .get(seg)
            .unwrap()
            .write()
            .write(0, b"data")
            .unwrap();
        cache
            .access((seg, 0), AccessMode::Read, &*part, |f| {
                assert_eq!(&f.data[..4], b"data");
            })
            .unwrap();
        assert_eq!(clock.now(), Vt::from_micros(629));
    }

    #[test]
    fn hit_charges_nothing() {
        let (part, cache, clock, seg) = setup(4);
        cache
            .access((seg, 0), AccessMode::Read, &*part, |_| {})
            .unwrap();
        let after_fault = clock.now();
        cache
            .access((seg, 0), AccessMode::Read, &*part, |_| {})
            .unwrap();
        assert_eq!(clock.now(), after_fault);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (part, cache, _clock, seg) = setup(1);
        cache
            .access((seg, 0), AccessMode::Write, &*part, |f| {
                f.data[0] = 0xAA;
                f.dirty = true;
            })
            .unwrap();
        // Touch another page; capacity 1 forces eviction of page 0.
        cache
            .access((seg, 1), AccessMode::Read, &*part, |_| {})
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        let stored = part.store().get(seg).unwrap().read().read(0, 1).unwrap();
        assert_eq!(stored[0], 0xAA);
    }

    #[test]
    fn reclaim_returns_dirty_data() {
        let (part, cache, _clock, seg) = setup(4);
        cache
            .access((seg, 2), AccessMode::Write, &*part, |f| {
                f.data[7] = 9;
                f.dirty = true;
            })
            .unwrap();
        match cache.reclaim((seg, 2)) {
            ReclaimOutcome::Taken { dirty_data: Some(d) } => assert_eq!(d[7], 9),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cache.reclaim((seg, 2)), ReclaimOutcome::NotPresent);
        assert_eq!(cache.resident(), 0);
    }

    #[test]
    fn reclaim_clean_page_has_no_data() {
        let (part, cache, _clock, seg) = setup(4);
        cache
            .access((seg, 0), AccessMode::Read, &*part, |_| {})
            .unwrap();
        assert_eq!(
            cache.reclaim((seg, 0)),
            ReclaimOutcome::Taken { dirty_data: None }
        );
    }

    #[test]
    fn downgrade_clears_dirty_and_mode() {
        let (part, cache, _clock, seg) = setup(4);
        cache
            .access((seg, 0), AccessMode::Write, &*part, |f| {
                f.data[0] = 5;
                f.dirty = true;
            })
            .unwrap();
        let dirty = cache.downgrade((seg, 0));
        assert_eq!(dirty.unwrap()[0], 5);
        // Second downgrade: already clean.
        assert!(cache.downgrade((seg, 0)).is_none());
        // A subsequent write access needs an upgrade.
        cache
            .access((seg, 0), AccessMode::Write, &*part, |f| {
                f.dirty = true;
            })
            .unwrap();
        assert_eq!(cache.stats().upgrades, 1);
    }

    #[test]
    fn flush_writes_all_dirty_frames() {
        let (part, cache, _clock, seg) = setup(8);
        for page in 0..3u32 {
            cache
                .access((seg, page), AccessMode::Write, &*part, |f| {
                    f.data[0] = page as u8 + 1;
                    f.dirty = true;
                })
                .unwrap();
        }
        cache.flush(&*part).unwrap();
        for page in 0..3u32 {
            let stored = part
                .store()
                .get(seg)
                .unwrap()
                .read()
                .read(page as u64 * PAGE_SIZE as u64, 1)
                .unwrap();
            assert_eq!(stored[0], page as u8 + 1);
        }
        // Frames stay resident and clean.
        assert_eq!(cache.resident(), 3);
        cache.flush(&*part).unwrap(); // second flush is a no-op
    }

    #[test]
    fn clear_drops_without_writeback() {
        let (part, cache, _clock, seg) = setup(8);
        cache
            .access((seg, 0), AccessMode::Write, &*part, |f| {
                f.data[0] = 42;
                f.dirty = true;
            })
            .unwrap();
        cache.clear();
        assert_eq!(cache.resident(), 0);
        let stored = part.store().get(seg).unwrap().read().read(0, 1).unwrap();
        assert_eq!(stored[0], 0, "crash must not persist dirty data");
    }

    #[test]
    fn fetch_error_propagates_and_unblocks() {
        let (part, cache, _clock, _seg) = setup(4);
        let missing = SysName::from_parts(9, 9);
        let err = cache
            .access((missing, 0), AccessMode::Read, &*part, |_| {})
            .unwrap_err();
        assert!(matches!(err, RaError::SegmentNotFound(_)));
        // The Busy marker must have been cleaned up: retry also errors
        // (rather than deadlocking).
        let err2 = cache
            .access((missing, 0), AccessMode::Read, &*part, |_| {})
            .unwrap_err();
        assert!(matches!(err2, RaError::SegmentNotFound(_)));
    }

    #[test]
    fn concurrent_access_to_same_page_is_serialized() {
        let (part, cache, _clock, seg) = setup(8);
        let cache = Arc::new(cache);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let part = Arc::clone(&part);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    cache
                        .access((seg, 0), AccessMode::Write, &*part, |f| {
                            let v = u64::from_le_bytes(f.data[..8].try_into().unwrap());
                            f.data[..8].copy_from_slice(&(v + 1).to_le_bytes());
                            f.dirty = true;
                        })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        cache
            .access((seg, 0), AccessMode::Read, &*part, |f| {
                let v = u64::from_le_bytes(f.data[..8].try_into().unwrap());
                assert_eq!(v, 800);
            })
            .unwrap();
    }
}
