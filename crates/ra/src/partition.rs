//! Partitions and the per-node page-frame cache (§4.1, §4.2).
//!
//! "A partition is an entity that provides non-volatile data storage for
//! segments. … In order to access a segment, the partition containing
//! the segment has to be contacted. The partition communicates with the
//! data server where the segment is stored to page the segment in and
//! out when necessary. Note that Ra only defines the interface to the
//! partitions."
//!
//! Ra defines [`Partition`]; two implementations exist:
//!
//! * [`LocalPartition`] (here) — backed directly by a [`SegmentStore`],
//!   used by data servers and by single-node configurations. It charges
//!   the paper's page-fault service costs to the node clock.
//! * `DsmClientPartition` (in `clouds-dsm`) — pages segments over RaTP
//!   from remote data servers with coherence.
//!
//! The [`PageCache`] is the node's "physical memory": resident page
//! frames shared by all address spaces on the node, with LRU eviction
//! and write-back.

use crate::segment::SegmentStore;
use crate::sysname::SysName;
use crate::Result;
use clouds_simnet::{CostModel, VirtualClock};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a page will be used; determines the coherence mode requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessMode {
    /// Read-only access; many nodes may share the page.
    Read,
    /// Read–write access; requires exclusive ownership under DSM.
    Write,
}

/// One dirty page handed to [`Partition::write_back_batch`].
#[derive(Debug, Clone)]
pub struct WriteBackItem {
    /// Segment the page belongs to.
    pub seg: SysName,
    /// Page index within the segment.
    pub page: u32,
    /// Full page contents ([`PAGE_SIZE`](crate::PAGE_SIZE) bytes).
    pub data: Vec<u8>,
}

/// A page delivered by a partition.
#[derive(Debug, Clone)]
pub struct PageFetch {
    /// Exactly [`PAGE_SIZE`](crate::PAGE_SIZE) bytes.
    pub data: Vec<u8>,
    /// Version counter at the canonical store.
    pub version: u64,
    /// True if the page had never been written (zero-fill fault).
    pub zero_filled: bool,
    /// Coherence grant sequence number; echoed back through
    /// [`Partition::ack_page_install`] once the frame is resident, so
    /// the manager knows recalls can no longer miss the copy. Zero for
    /// partitions without a coherence protocol.
    pub grant_seq: u64,
}

/// Interface between virtual memory and segment storage.
///
/// All methods may block (the DSM implementation performs network
/// transactions); callers inside IsiBas should wrap faults in
/// [`crate::sched::IsiBaCtx::blocking`].
pub trait Partition: Send + Sync {
    /// Create a segment of `len` zero bytes.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentExists`](crate::RaError::SegmentExists) if the sysname is taken;
    /// [`RaError::PartitionUnavailable`](crate::RaError::PartitionUnavailable) if storage is unreachable.
    fn create_segment(&self, seg: SysName, len: u64) -> Result<()>;

    /// Destroy a segment permanently.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`](crate::RaError::SegmentNotFound) if absent.
    fn destroy_segment(&self, seg: SysName) -> Result<()>;

    /// Length of a segment in bytes.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`](crate::RaError::SegmentNotFound) if absent.
    fn segment_len(&self, seg: SysName) -> Result<u64>;

    /// Fetch one page in the given mode (demand paging).
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`](crate::RaError::SegmentNotFound) / [`RaError::OutOfRange`](crate::RaError::OutOfRange) for bad
    /// addresses; [`RaError::PartitionUnavailable`](crate::RaError::PartitionUnavailable) on data-server
    /// failure.
    fn fetch_page(&self, seg: SysName, page: u32, mode: AccessMode) -> Result<PageFetch>;

    /// Write a dirty page back to the canonical store, returning its new
    /// version.
    ///
    /// # Errors
    ///
    /// As for [`Partition::fetch_page`].
    fn write_back(&self, seg: SysName, page: u32, data: &[u8]) -> Result<u64>;

    /// Write a batch of dirty pages back, returning one result per item
    /// (aligned with the input). The frames stay held by the caller in
    /// whatever coherence mode they were in — this is a write-*through*,
    /// not a release.
    ///
    /// The default performs one [`Partition::write_back`] per page;
    /// network partitions override it to coalesce the batch into one
    /// round trip per remote home (the commit-flush fast path).
    fn write_back_batch(&self, pages: &[WriteBackItem]) -> Vec<Result<u64>> {
        pages
            .iter()
            .map(|p| self.write_back(p.seg, p.page, &p.data))
            .collect()
    }

    /// Write a dirty page back *and* relinquish the copy in one step
    /// (dirty eviction). The default is the two-call sequence; coherent
    /// partitions override it to piggyback the release on the write-back
    /// message, halving the eviction round trips.
    ///
    /// # Errors
    ///
    /// As for [`Partition::write_back`] / [`Partition::release_page`].
    fn write_back_and_release(&self, seg: SysName, page: u32, data: &[u8]) -> Result<u64> {
        let version = self.write_back(seg, page, data)?;
        self.release_page(seg, page)?;
        Ok(version)
    }

    /// Relinquish any coherence state held for the page (clean drop).
    ///
    /// # Errors
    ///
    /// [`RaError::PartitionUnavailable`](crate::RaError::PartitionUnavailable) on data-server failure.
    fn release_page(&self, seg: SysName, page: u32) -> Result<()>;

    /// Acknowledge that the page from a [`Partition::fetch_page`] grant
    /// is now resident locally. Coherence-managed partitions forward
    /// this to the manager; the default is a no-op.
    ///
    /// Every [`Partition::fetch_page`] grant MUST eventually be
    /// acknowledged — either by the page cache once the frame is
    /// resident, or immediately by the caller when the page is not
    /// retained (use [`Partition::fetch_page_transient`] for that).
    fn ack_page_install(&self, seg: SysName, page: u32, grant_seq: u64) {
        let _ = (seg, page, grant_seq);
    }

    /// Fetch a page read-only without retaining a coherent copy: the
    /// grant is acknowledged immediately. For one-shot reads (object
    /// headers, code paging) outside the page cache.
    ///
    /// # Errors
    ///
    /// As for [`Partition::fetch_page`].
    fn fetch_page_transient(&self, seg: SysName, page: u32) -> Result<PageFetch> {
        let fetch = self.fetch_page(seg, page, AccessMode::Read)?;
        self.ack_page_install(seg, page, fetch.grant_seq);
        Ok(fetch)
    }
}

/// Partition backed by a local [`SegmentStore`] — the configuration of a
/// machine whose disk holds the segments it uses.
pub struct LocalPartition {
    store: SegmentStore,
    clock: Arc<VirtualClock>,
    cost: CostModel,
}

impl fmt::Debug for LocalPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalPartition")
            .field("segments", &self.store.len())
            .finish()
    }
}

impl LocalPartition {
    /// Wrap a segment store, charging fault costs to `clock`.
    pub fn new(store: SegmentStore, clock: Arc<VirtualClock>, cost: CostModel) -> LocalPartition {
        LocalPartition { store, clock, cost }
    }

    /// The underlying store.
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }
}

impl Partition for LocalPartition {
    fn create_segment(&self, seg: SysName, len: u64) -> Result<()> {
        self.store.create(seg, len)
    }

    fn destroy_segment(&self, seg: SysName) -> Result<()> {
        self.store.destroy(seg)
    }

    fn segment_len(&self, seg: SysName) -> Result<u64> {
        Ok(self.store.get(seg)?.read().len())
    }

    fn fetch_page(&self, seg: SysName, page: u32, _mode: AccessMode) -> Result<PageFetch> {
        let segment = self.store.get(seg)?;
        let segment = segment.read();
        let zero_filled = !segment.is_page_materialized(page);
        let data = segment.read_page(page)?;
        // Paper §4.3: 1.5 ms to service a zero-filled 8K fault, 0.629 ms
        // for a non-zero-filled (copied) page.
        self.clock.charge(if zero_filled {
            self.cost.page_fault_zero
        } else {
            self.cost.page_fault_copy
        });
        Ok(PageFetch {
            data,
            version: segment.page_version(page),
            zero_filled,
            grant_seq: 0,
        })
    }

    fn write_back(&self, seg: SysName, page: u32, data: &[u8]) -> Result<u64> {
        self.store.get(seg)?.write().write_page(page, data)
    }

    fn release_page(&self, _seg: SysName, _page: u32) -> Result<()> {
        Ok(())
    }
}

/// A resident page frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Page contents ([`PAGE_SIZE`](crate::PAGE_SIZE) bytes).
    pub data: Vec<u8>,
    /// Mode the frame is held in.
    pub mode: AccessMode,
    /// Whether the frame has unwritten modifications.
    pub dirty: bool,
    /// Version the frame was fetched at.
    pub version: u64,
}

/// Why a slot is temporarily unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusyKind {
    /// A fault is in flight; the local copy (if any) has been dropped.
    Fetch,
    /// An eviction write-back is in flight; the latest data is still on
    /// its way to the canonical store.
    Evict,
}

enum Slot {
    /// A fault or eviction is in progress.
    Busy(BusyKind),
    Present {
        frame: Frame,
        /// Stamp of this slot's newest entry in the lazy LRU queue; older
        /// queue entries for the key are stale and skipped on eviction.
        touch: u64,
        /// Installed speculatively by read-ahead and not yet accessed.
        prefetched: bool,
    },
}

#[derive(Default)]
struct CacheInner {
    slots: HashMap<(SysName, u32), Slot>,
    /// Lazily pruned LRU queue of `(key, stamp)` pairs. An entry is live
    /// iff the slot is `Present` with a matching `touch` stamp, which
    /// makes every touch O(1) (append-only) instead of a linear scan.
    lru: VecDeque<((SysName, u32), u64)>,
    /// Monotonic stamp source for `lru` entries.
    touch_counter: u64,
}

/// Result of [`PageCache::reclaim`], used by the DSM client service when
/// the data server recalls a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReclaimOutcome {
    /// The page was not resident (already evicted).
    NotPresent,
    /// The page was resident; contains the latest data if it was dirty.
    Taken {
        /// Dirty contents that must reach the canonical store, if any.
        dirty_data: Option<Vec<u8>>,
    },
}

/// Counters describing fault behaviour; basis of experiment E1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses satisfied from a resident frame.
    pub hits: u64,
    /// Faults that required a partition fetch.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Mode upgrades (shared ➜ exclusive).
    pub upgrades: u64,
    /// Read-ahead frames installed speculatively.
    pub prefetch_installs: u64,
    /// Accesses satisfied by a frame that read-ahead installed (a fault
    /// and its round trip avoided).
    pub prefetch_hits: u64,
    /// Read-ahead frames evicted or reclaimed before any access used
    /// them (wasted transfer).
    pub prefetch_wasted: u64,
}

/// The node's resident page frames ("physical memory"), shared by every
/// address space on the node.
pub struct PageCache {
    inner: Mutex<CacheInner>,
    cvar: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    upgrades: AtomicU64,
    prefetch_installs: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_wasted: AtomicU64,
}

impl fmt::Debug for PageCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageCache")
            .field("resident", &self.inner.lock().slots.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl PageCache {
    /// A cache holding at most `capacity` page frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PageCache {
        assert!(capacity > 0, "page cache needs at least one frame");
        PageCache {
            inner: Mutex::new(CacheInner::default()),
            cvar: Condvar::new(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            upgrades: AtomicU64::new(0),
            prefetch_installs: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
            prefetch_wasted: AtomicU64::new(0),
        }
    }

    /// Access a page in `mode`, faulting it in through `partition` if
    /// necessary, and run `f` on the resident frame.
    ///
    /// Writes through `f` must set `frame.dirty = true` (the
    /// [`crate::AddressSpace`] write path does this).
    ///
    /// # Errors
    ///
    /// Propagates partition errors from the fault path.
    pub fn access<R>(
        &self,
        key: (SysName, u32),
        mode: AccessMode,
        partition: &dyn Partition,
        f: impl FnOnce(&mut Frame) -> R,
    ) -> Result<R> {
        loop {
            let mut inner = self.inner.lock();
            match inner.slots.get_mut(&key) {
                Some(Slot::Present {
                    frame, prefetched, ..
                }) if frame.mode >= mode => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if std::mem::take(prefetched) {
                        self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    let result = f(frame);
                    Self::touch_lru(&mut inner, key);
                    return Ok(result);
                }
                Some(Slot::Present { .. }) => {
                    // Mode upgrade: refetch exclusively. Take the slot so
                    // concurrent faulters wait. The shared copy is clean
                    // by construction (writes require exclusive mode), so
                    // dropping it loses nothing.
                    self.upgrades.fetch_add(1, Ordering::Relaxed);
                    inner.slots.insert(key, Slot::Busy(BusyKind::Fetch));
                    drop(inner);
                    return self.fault_in(key, mode, partition, f);
                }
                Some(Slot::Busy(_)) => {
                    self.cvar.wait(&mut inner);
                    continue;
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    inner.slots.insert(key, Slot::Busy(BusyKind::Fetch));
                    // Evict beyond capacity before fetching more.
                    let victim = Self::pick_victim(&mut inner, self.capacity);
                    drop(inner);
                    if let Some((vkey, vframe, was_prefetched)) = victim {
                        if was_prefetched {
                            self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
                        }
                        self.write_out(vkey, vframe, partition)?;
                    }
                    return self.fault_in(key, mode, partition, f);
                }
            }
        }
    }

    fn fault_in<R>(
        &self,
        key: (SysName, u32),
        mode: AccessMode,
        partition: &dyn Partition,
        f: impl FnOnce(&mut Frame) -> R,
    ) -> Result<R> {
        let fetched = partition.fetch_page(key.0, key.1, mode);
        let mut inner = self.inner.lock();
        match fetched {
            Ok(page) => {
                let grant_seq = page.grant_seq;
                let mut frame = Frame {
                    data: page.data,
                    mode,
                    dirty: false,
                    version: page.version,
                };
                let result = f(&mut frame);
                inner.slots.insert(
                    key,
                    Slot::Present {
                        frame,
                        touch: 0,
                        prefetched: false,
                    },
                );
                Self::touch_lru(&mut inner, key);
                self.cvar.notify_all();
                drop(inner);
                // The frame is now visible to recalls: tell the manager
                // so it may issue the next grant for this page.
                partition.ack_page_install(key.0, key.1, grant_seq);
                Ok(result)
            }
            Err(e) => {
                inner.slots.remove(&key);
                self.cvar.notify_all();
                Err(e)
            }
        }
    }

    /// O(1) amortized touch: bump the stamp stored in the slot and append
    /// a fresh queue entry. Older entries for the key become stale (their
    /// stamp no longer matches) and are skipped by [`Self::pick_victim`];
    /// the queue is pruned wholesale when it outgrows the slot table, so
    /// its length stays bounded by `2 * slots + 64`.
    fn touch_lru(inner: &mut CacheInner, key: (SysName, u32)) {
        inner.touch_counter += 1;
        let stamp = inner.touch_counter;
        if let Some(Slot::Present { touch, .. }) = inner.slots.get_mut(&key) {
            *touch = stamp;
        }
        inner.lru.push_back((key, stamp));
        if inner.lru.len() > 2 * inner.slots.len() + 64 {
            let CacheInner { slots, lru, .. } = inner;
            lru.retain(
                |(k, s)| matches!(slots.get(k), Some(Slot::Present { touch, .. }) if touch == s),
            );
        }
    }

    /// Select and detach an LRU victim if over capacity (the caller
    /// performs the write-back outside the lock; the victim slot is
    /// marked Busy meanwhile). The returned flag reports whether the
    /// victim was an unused read-ahead frame.
    fn pick_victim(
        inner: &mut CacheInner,
        capacity: usize,
    ) -> Option<((SysName, u32), Frame, bool)> {
        let resident = inner
            .slots
            // lint:allow(hash-iter) — commutative count.
            .values()
            .filter(|s| matches!(s, Slot::Present { .. }))
            .count();
        if resident < capacity {
            return None;
        }
        while let Some((key, stamp)) = inner.lru.pop_front() {
            match inner.slots.get(&key) {
                Some(Slot::Present { touch, .. }) if *touch == stamp => {
                    let Some(Slot::Present {
                        frame, prefetched, ..
                    }) = inner.slots.remove(&key)
                    else {
                        unreachable!("checked above")
                    };
                    inner.slots.insert(key, Slot::Busy(BusyKind::Evict));
                    return Some((key, frame, prefetched));
                }
                // Stale entry (slot busy, gone, or re-touched since);
                // keep scanning.
                _ => {}
            }
        }
        None
    }

    fn write_out(
        &self,
        key: (SysName, u32),
        frame: Frame,
        partition: &dyn Partition,
    ) -> Result<()> {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let result = if frame.dirty {
            // Piggyback the release on the write-back: a dirty eviction
            // costs one round trip instead of two.
            partition
                .write_back_and_release(key.0, key.1, &frame.data)
                .map(|_| ())
        } else {
            partition.release_page(key.0, key.1)
        };
        let mut inner = self.inner.lock();
        inner.slots.remove(&key); // clear the Busy marker
        self.cvar.notify_all();
        result
    }

    /// Recall a page on behalf of the DSM server: removes the frame
    /// (waiting out any in-flight fault) and returns dirty data if the
    /// local copy was modified.
    pub fn reclaim(&self, key: (SysName, u32)) -> ReclaimOutcome {
        let mut inner = self.inner.lock();
        loop {
            match inner.slots.get(&key) {
                // A fetch in flight means the local copy was dropped; the
                // fetch will be (re)serialized by the data server, so the
                // page is effectively not here. Waiting would deadlock
                // with the server-side coherence transition.
                Some(Slot::Busy(BusyKind::Fetch)) => return ReclaimOutcome::NotPresent,
                // An eviction's dirty data is still in flight to the
                // store: wait it out so the caller sees it there.
                Some(Slot::Busy(BusyKind::Evict)) => self.cvar.wait(&mut inner),
                Some(Slot::Present { .. }) => {
                    let Some(Slot::Present {
                        frame, prefetched, ..
                    }) = inner.slots.remove(&key)
                    else {
                        unreachable!("checked above")
                    };
                    if prefetched {
                        self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
                    }
                    // Stale LRU entries are skipped lazily by
                    // pick_victim; no scan needed here.
                    self.cvar.notify_all();
                    return ReclaimOutcome::Taken {
                        dirty_data: frame.dirty.then_some(frame.data),
                    };
                }
                None => return ReclaimOutcome::NotPresent,
            }
        }
    }

    /// Downgrade an exclusively held page to shared, returning dirty
    /// data that must reach the canonical store.
    pub fn downgrade(&self, key: (SysName, u32)) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        loop {
            match inner.slots.get_mut(&key) {
                Some(Slot::Busy(BusyKind::Fetch)) => return None,
                Some(Slot::Busy(BusyKind::Evict)) => self.cvar.wait(&mut inner),
                Some(Slot::Present { frame, .. }) => {
                    frame.mode = AccessMode::Read;
                    let dirty = std::mem::take(&mut frame.dirty);
                    return dirty.then(|| frame.data.clone());
                }
                None => return None,
            }
        }
    }

    /// Write every dirty frame back through `partition` (e.g. at commit
    /// or orderly shutdown), leaving frames resident and clean.
    ///
    /// All dirty frames are detached behind Busy(Evict) markers in one
    /// lock pass and shipped through [`Partition::write_back_batch`], so
    /// a coherent partition can coalesce an N-page commit into one round
    /// trip per home server instead of N. While a frame's data is in
    /// flight a concurrent DSM recall waits for the write-back instead of
    /// reporting a stale-clean copy — reporting clean early would serve
    /// other nodes stale canonical data (a lost update).
    ///
    /// # Errors
    ///
    /// Propagates the first write-back failure (failed frames are
    /// reinstated dirty so the data is not lost).
    pub fn flush(&self, partition: &dyn Partition) -> Result<()> {
        // Detach every dirty frame behind an Evict marker in one pass.
        let mut detached: Vec<((SysName, u32), Frame)> = Vec::new();
        {
            let mut inner = self.inner.lock();
            let mut dirty_keys: Vec<(SysName, u32)> = inner
                .slots
                // lint:allow(hash-iter) — sorted below, so write-back
                // order is (seg, page) order regardless of table layout.
                .iter()
                .filter_map(|(key, slot)| match slot {
                    Slot::Present { frame, .. } if frame.dirty => Some(*key),
                    _ => None,
                })
                .collect();
            dirty_keys.sort();
            for key in dirty_keys {
                let Some(Slot::Present { frame, .. }) = inner.slots.remove(&key) else {
                    unreachable!("selected above under the same lock")
                };
                inner.slots.insert(key, Slot::Busy(BusyKind::Evict));
                detached.push((key, frame));
            }
        }
        if detached.is_empty() {
            return Ok(());
        }
        let items: Vec<WriteBackItem> = detached
            .iter()
            .map(|((seg, page), frame)| WriteBackItem {
                seg: *seg,
                page: *page,
                data: frame.data.clone(),
            })
            .collect();
        let results = partition.write_back_batch(&items);
        debug_assert_eq!(results.len(), detached.len());
        let mut first_err = None;
        let mut inner = self.inner.lock();
        for (i, (key, mut frame)) in detached.into_iter().enumerate() {
            let result = results.get(i).cloned().unwrap_or_else(|| {
                Err(crate::RaError::PartitionUnavailable(
                    "write_back_batch returned too few results".into(),
                ))
            });
            // Only reinstate if nobody reclaimed the page meanwhile.
            if matches!(inner.slots.get(&key), Some(Slot::Busy(BusyKind::Evict))) {
                frame.dirty = result.is_err();
                inner.slots.insert(
                    key,
                    Slot::Present {
                        frame,
                        touch: 0,
                        prefetched: false,
                    },
                );
                Self::touch_lru(&mut inner, key);
            }
            if let Err(e) = result {
                first_err.get_or_insert(e);
            }
        }
        self.cvar.notify_all();
        drop(inner);
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Install a speculatively fetched page as a clean read-mode frame
    /// (read-ahead). Returns `false` — dropping the data — when the page
    /// is already resident or busy, or when the cache is at capacity:
    /// read-ahead must never evict demand-loaded frames.
    pub fn install_prefetched(&self, key: (SysName, u32), data: Vec<u8>, version: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.slots.contains_key(&key) {
            return false;
        }
        let resident = inner
            .slots
            // lint:allow(hash-iter) — commutative count.
            .values()
            .filter(|s| matches!(s, Slot::Present { .. }))
            .count();
        if resident >= self.capacity {
            return false;
        }
        inner.slots.insert(
            key,
            Slot::Present {
                frame: Frame {
                    data,
                    mode: AccessMode::Read,
                    dirty: false,
                    version,
                },
                touch: 0,
                prefetched: true,
            },
        );
        Self::touch_lru(&mut inner, key);
        self.prefetch_installs.fetch_add(1, Ordering::Relaxed);
        self.cvar.notify_all();
        true
    }

    /// Drop all frames without write-back (crash simulation).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.slots.clear();
        inner.lru.clear();
        inner.touch_counter = 0;
        self.cvar.notify_all();
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.inner
            .lock()
            .slots
            // lint:allow(hash-iter) — commutative count.
            .values()
            .filter(|s| matches!(s, Slot::Present { .. }))
            .count()
    }

    /// Frame capacity the cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            prefetch_installs: self.prefetch_installs.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_wasted: self.prefetch_wasted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RaError;
    use crate::segment::PAGE_SIZE;
    use clouds_simnet::Vt;

    fn setup(capacity: usize) -> (Arc<LocalPartition>, PageCache, Arc<VirtualClock>, SysName) {
        let clock = Arc::new(VirtualClock::new());
        let store = SegmentStore::new();
        let seg = SysName::from_parts(1, 1);
        store.create(seg, 8 * PAGE_SIZE as u64).unwrap();
        let part = Arc::new(LocalPartition::new(
            store,
            Arc::clone(&clock),
            CostModel::sun3_ethernet(),
        ));
        (part, PageCache::new(capacity), clock, seg)
    }

    #[test]
    fn zero_fill_fault_charges_paper_cost() {
        let (part, cache, clock, seg) = setup(4);
        cache
            .access((seg, 0), AccessMode::Read, &*part, |f| {
                assert_eq!(f.data.len(), PAGE_SIZE);
                assert!(f.data.iter().all(|&b| b == 0));
            })
            .unwrap();
        assert_eq!(clock.now(), Vt::from_micros(1500));
    }

    #[test]
    fn copy_fault_charges_smaller_cost() {
        let (part, cache, clock, seg) = setup(4);
        // Materialize page 0 in the store first.
        part.store()
            .get(seg)
            .unwrap()
            .write()
            .write(0, b"data")
            .unwrap();
        cache
            .access((seg, 0), AccessMode::Read, &*part, |f| {
                assert_eq!(&f.data[..4], b"data");
            })
            .unwrap();
        assert_eq!(clock.now(), Vt::from_micros(629));
    }

    #[test]
    fn hit_charges_nothing() {
        let (part, cache, clock, seg) = setup(4);
        cache
            .access((seg, 0), AccessMode::Read, &*part, |_| {})
            .unwrap();
        let after_fault = clock.now();
        cache
            .access((seg, 0), AccessMode::Read, &*part, |_| {})
            .unwrap();
        assert_eq!(clock.now(), after_fault);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (part, cache, _clock, seg) = setup(1);
        cache
            .access((seg, 0), AccessMode::Write, &*part, |f| {
                f.data[0] = 0xAA;
                f.dirty = true;
            })
            .unwrap();
        // Touch another page; capacity 1 forces eviction of page 0.
        cache
            .access((seg, 1), AccessMode::Read, &*part, |_| {})
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        let stored = part.store().get(seg).unwrap().read().read(0, 1).unwrap();
        assert_eq!(stored[0], 0xAA);
    }

    #[test]
    fn reclaim_returns_dirty_data() {
        let (part, cache, _clock, seg) = setup(4);
        cache
            .access((seg, 2), AccessMode::Write, &*part, |f| {
                f.data[7] = 9;
                f.dirty = true;
            })
            .unwrap();
        match cache.reclaim((seg, 2)) {
            ReclaimOutcome::Taken { dirty_data: Some(d) } => assert_eq!(d[7], 9),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cache.reclaim((seg, 2)), ReclaimOutcome::NotPresent);
        assert_eq!(cache.resident(), 0);
    }

    #[test]
    fn reclaim_clean_page_has_no_data() {
        let (part, cache, _clock, seg) = setup(4);
        cache
            .access((seg, 0), AccessMode::Read, &*part, |_| {})
            .unwrap();
        assert_eq!(
            cache.reclaim((seg, 0)),
            ReclaimOutcome::Taken { dirty_data: None }
        );
    }

    #[test]
    fn downgrade_clears_dirty_and_mode() {
        let (part, cache, _clock, seg) = setup(4);
        cache
            .access((seg, 0), AccessMode::Write, &*part, |f| {
                f.data[0] = 5;
                f.dirty = true;
            })
            .unwrap();
        let dirty = cache.downgrade((seg, 0));
        assert_eq!(dirty.unwrap()[0], 5);
        // Second downgrade: already clean.
        assert!(cache.downgrade((seg, 0)).is_none());
        // A subsequent write access needs an upgrade.
        cache
            .access((seg, 0), AccessMode::Write, &*part, |f| {
                f.dirty = true;
            })
            .unwrap();
        assert_eq!(cache.stats().upgrades, 1);
    }

    #[test]
    fn flush_writes_all_dirty_frames() {
        let (part, cache, _clock, seg) = setup(8);
        for page in 0..3u32 {
            cache
                .access((seg, page), AccessMode::Write, &*part, |f| {
                    f.data[0] = page as u8 + 1;
                    f.dirty = true;
                })
                .unwrap();
        }
        cache.flush(&*part).unwrap();
        for page in 0..3u32 {
            let stored = part
                .store()
                .get(seg)
                .unwrap()
                .read()
                .read(page as u64 * PAGE_SIZE as u64, 1)
                .unwrap();
            assert_eq!(stored[0], page as u8 + 1);
        }
        // Frames stay resident and clean.
        assert_eq!(cache.resident(), 3);
        cache.flush(&*part).unwrap(); // second flush is a no-op
    }

    #[test]
    fn clear_drops_without_writeback() {
        let (part, cache, _clock, seg) = setup(8);
        cache
            .access((seg, 0), AccessMode::Write, &*part, |f| {
                f.data[0] = 42;
                f.dirty = true;
            })
            .unwrap();
        cache.clear();
        assert_eq!(cache.resident(), 0);
        let stored = part.store().get(seg).unwrap().read().read(0, 1).unwrap();
        assert_eq!(stored[0], 0, "crash must not persist dirty data");
    }

    #[test]
    fn fetch_error_propagates_and_unblocks() {
        let (part, cache, _clock, _seg) = setup(4);
        let missing = SysName::from_parts(9, 9);
        let err = cache
            .access((missing, 0), AccessMode::Read, &*part, |_| {})
            .unwrap_err();
        assert!(matches!(err, RaError::SegmentNotFound(_)));
        // The Busy marker must have been cleaned up: retry also errors
        // (rather than deadlocking).
        let err2 = cache
            .access((missing, 0), AccessMode::Read, &*part, |_| {})
            .unwrap_err();
        assert!(matches!(err2, RaError::SegmentNotFound(_)));
    }

    #[test]
    fn concurrent_access_to_same_page_is_serialized() {
        let (part, cache, _clock, seg) = setup(8);
        let cache = Arc::new(cache);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let part = Arc::clone(&part);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    cache
                        .access((seg, 0), AccessMode::Write, &*part, |f| {
                            let v = u64::from_le_bytes(f.data[..8].try_into().unwrap());
                            f.data[..8].copy_from_slice(&(v + 1).to_le_bytes());
                            f.dirty = true;
                        })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        cache
            .access((seg, 0), AccessMode::Read, &*part, |f| {
                let v = u64::from_le_bytes(f.data[..8].try_into().unwrap());
                assert_eq!(v, 800);
            })
            .unwrap();
    }
}
