//! Virtual spaces and demand-paged address spaces (§4.1).
//!
//! "A virtual space is the abstraction of an addressing domain, and is a
//! monotonically increasing range of virtual addresses with possible
//! holes in the range. Each contiguous range of virtual addresses is
//! mapped to (a portion of) a segment."
//!
//! [`VirtualSpace`] is the pure mapping structure; [`AddressSpace`]
//! combines it with the node's [`PageCache`] and [`Partition`] to give
//! the faulting read/write path every Clouds object invocation uses.

use crate::error::RaError;
use crate::partition::{AccessMode, PageCache, Partition};
use crate::segment::PAGE_SIZE;
use crate::sysname::SysName;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One contiguous virtual range backed by (a portion of) a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// First virtual address of the range.
    pub base: u64,
    /// Length of the range in bytes.
    pub len: u64,
    /// Backing segment.
    pub segment: SysName,
    /// Offset within the segment where the range begins.
    pub seg_offset: u64,
    /// Whether writes are permitted.
    pub writable: bool,
}

impl Mapping {
    fn end(&self) -> u64 {
        self.base + self.len
    }
}

/// An addressing domain: ordered, non-overlapping mappings with holes.
#[derive(Debug, Clone, Default)]
pub struct VirtualSpace {
    ranges: BTreeMap<u64, Mapping>,
}

impl VirtualSpace {
    /// An empty space.
    pub fn new() -> VirtualSpace {
        VirtualSpace::default()
    }

    /// Map `[base, base+len)` to `segment[seg_offset ..]`.
    ///
    /// # Errors
    ///
    /// [`RaError::OverlappingMapping`] if the range intersects an
    /// existing mapping.
    pub fn map(
        &mut self,
        base: u64,
        segment: SysName,
        seg_offset: u64,
        len: u64,
        writable: bool,
    ) -> Result<()> {
        let new = Mapping {
            base,
            len,
            segment,
            seg_offset,
            writable,
        };
        // Check the neighbour below and all ranges starting inside us.
        if let Some((_, prev)) = self.ranges.range(..=base).next_back() {
            if prev.end() > base {
                return Err(RaError::OverlappingMapping(base));
            }
        }
        if self.ranges.range(base..new.end()).next().is_some() {
            return Err(RaError::OverlappingMapping(base));
        }
        self.ranges.insert(base, new);
        Ok(())
    }

    /// Remove the mapping starting exactly at `base`.
    ///
    /// # Errors
    ///
    /// [`RaError::Unmapped`] if no mapping starts there.
    pub fn unmap(&mut self, base: u64) -> Result<Mapping> {
        self.ranges.remove(&base).ok_or(RaError::Unmapped(base))
    }

    /// Translate an access of `len` bytes at `vaddr` to a segment range.
    ///
    /// # Errors
    ///
    /// [`RaError::Unmapped`] if no mapping covers `vaddr`;
    /// [`RaError::CrossesMapping`] if the access runs past the mapping's
    /// end (accesses may span *pages*, not mappings).
    pub fn translate(&self, vaddr: u64, len: u64) -> Result<(SysName, u64, bool)> {
        let (_, m) = self
            .ranges
            .range(..=vaddr)
            .next_back()
            .ok_or(RaError::Unmapped(vaddr))?;
        if vaddr >= m.end() {
            return Err(RaError::Unmapped(vaddr));
        }
        if vaddr + len > m.end() {
            return Err(RaError::CrossesMapping(vaddr));
        }
        Ok((m.segment, m.seg_offset + (vaddr - m.base), m.writable))
    }

    /// All mappings in address order.
    pub fn mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.ranges.values()
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the space has no mappings.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Lowest address at or above `hint` with `len` bytes of hole,
    /// for allocating new regions ("monotonically increasing range").
    pub fn find_hole(&self, hint: u64, len: u64) -> u64 {
        let mut candidate = hint;
        for m in self.ranges.values() {
            if m.end() <= candidate {
                continue;
            }
            if m.base >= candidate + len {
                break;
            }
            candidate = m.end();
        }
        candidate
    }
}

/// A demand-paged view of a [`VirtualSpace`]: the execution environment
/// of a Clouds object activation.
pub struct AddressSpace {
    vspace: VirtualSpace,
    cache: Arc<PageCache>,
    partition: Arc<dyn Partition>,
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressSpace")
            .field("mappings", &self.vspace.len())
            .finish()
    }
}

impl AddressSpace {
    /// Build an address space over the node's cache and partition.
    pub fn new(cache: Arc<PageCache>, partition: Arc<dyn Partition>) -> AddressSpace {
        AddressSpace {
            vspace: VirtualSpace::new(),
            cache,
            partition,
        }
    }

    /// The mapping structure.
    pub fn vspace(&self) -> &VirtualSpace {
        &self.vspace
    }

    /// The partition backing this space.
    pub fn partition(&self) -> &Arc<dyn Partition> {
        &self.partition
    }

    /// Add a mapping (see [`VirtualSpace::map`]).
    ///
    /// # Errors
    ///
    /// As for [`VirtualSpace::map`].
    pub fn map(
        &mut self,
        base: u64,
        segment: SysName,
        seg_offset: u64,
        len: u64,
        writable: bool,
    ) -> Result<()> {
        self.vspace.map(base, segment, seg_offset, len, writable)
    }

    /// Remove a mapping (see [`VirtualSpace::unmap`]).
    ///
    /// # Errors
    ///
    /// As for [`VirtualSpace::unmap`].
    pub fn unmap(&mut self, base: u64) -> Result<Mapping> {
        self.vspace.unmap(base)
    }

    /// Read `len` bytes at `vaddr`, demand-paging as needed.
    ///
    /// # Errors
    ///
    /// Translation errors ([`RaError::Unmapped`],
    /// [`RaError::CrossesMapping`]) or partition failures.
    pub fn read(&self, vaddr: u64, len: usize) -> Result<Vec<u8>> {
        let (segment, seg_off, _w) = self.vspace.translate(vaddr, len as u64)?;
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let pos = seg_off as usize + done;
            let page = (pos / PAGE_SIZE) as u32;
            let in_page = pos % PAGE_SIZE;
            let chunk = (PAGE_SIZE - in_page).min(len - done);
            self.cache
                .access((segment, page), AccessMode::Read, &*self.partition, |f| {
                    out[done..done + chunk].copy_from_slice(&f.data[in_page..in_page + chunk]);
                })?;
            done += chunk;
        }
        Ok(out)
    }

    /// Write `data` at `vaddr`, demand-paging (exclusively) as needed.
    ///
    /// # Errors
    ///
    /// Translation errors, [`RaError::ReadOnly`] for read-only mappings,
    /// or partition failures.
    pub fn write(&self, vaddr: u64, data: &[u8]) -> Result<()> {
        let (segment, seg_off, writable) = self.vspace.translate(vaddr, data.len() as u64)?;
        if !writable {
            return Err(RaError::ReadOnly(vaddr));
        }
        let mut done = 0usize;
        while done < data.len() {
            let pos = seg_off as usize + done;
            let page = (pos / PAGE_SIZE) as u32;
            let in_page = pos % PAGE_SIZE;
            let chunk = (PAGE_SIZE - in_page).min(data.len() - done);
            self.cache
                .access((segment, page), AccessMode::Write, &*self.partition, |f| {
                    f.data[in_page..in_page + chunk].copy_from_slice(&data[done..done + chunk]);
                    f.dirty = true;
                })?;
            done += chunk;
        }
        Ok(())
    }

    /// Read a little-endian `u64` at `vaddr`.
    ///
    /// # Errors
    ///
    /// As for [`AddressSpace::read`].
    pub fn read_u64(&self, vaddr: u64) -> Result<u64> {
        let bytes = self.read(vaddr, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Write a little-endian `u64` at `vaddr`.
    ///
    /// # Errors
    ///
    /// As for [`AddressSpace::write`].
    pub fn write_u64(&self, vaddr: u64, value: u64) -> Result<()> {
        self.write(vaddr, &value.to_le_bytes())
    }

    /// Flush all dirty pages of the node cache through this partition.
    ///
    /// # Errors
    ///
    /// Propagates write-back failures.
    pub fn flush(&self) -> Result<()> {
        self.cache.flush(&*self.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::LocalPartition;
    use crate::segment::SegmentStore;
    use clouds_simnet::{CostModel, VirtualClock};

    fn seg(n: u64) -> SysName {
        SysName::from_parts(1, n)
    }

    #[test]
    fn map_rejects_overlap() {
        let mut v = VirtualSpace::new();
        v.map(0x1000, seg(1), 0, 0x2000, true).unwrap();
        assert!(matches!(
            v.map(0x2000, seg(2), 0, 0x1000, true),
            Err(RaError::OverlappingMapping(_))
        ));
        assert!(matches!(
            v.map(0x0800, seg(2), 0, 0x1000, true),
            Err(RaError::OverlappingMapping(_))
        ));
        // Adjacent is fine.
        v.map(0x3000, seg(2), 0, 0x1000, true).unwrap();
        v.map(0x0, seg(3), 0, 0x1000, true).unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn translate_respects_holes_and_bounds() {
        let mut v = VirtualSpace::new();
        v.map(0x1000, seg(1), 0x100, 0x1000, false).unwrap();
        assert!(matches!(v.translate(0x0500, 1), Err(RaError::Unmapped(_))));
        assert!(matches!(v.translate(0x2000, 1), Err(RaError::Unmapped(_))));
        let (s, off, w) = v.translate(0x1004, 4).unwrap();
        assert_eq!((s, off, w), (seg(1), 0x104, false));
        assert!(matches!(
            v.translate(0x1FFF, 2),
            Err(RaError::CrossesMapping(_))
        ));
    }

    #[test]
    fn unmap_then_translate_fails() {
        let mut v = VirtualSpace::new();
        v.map(0x1000, seg(1), 0, 0x1000, true).unwrap();
        let m = v.unmap(0x1000).unwrap();
        assert_eq!(m.segment, seg(1));
        assert!(matches!(v.translate(0x1000, 1), Err(RaError::Unmapped(_))));
        assert!(matches!(v.unmap(0x1000), Err(RaError::Unmapped(_))));
    }

    #[test]
    fn find_hole_skips_mappings() {
        let mut v = VirtualSpace::new();
        v.map(0x1000, seg(1), 0, 0x1000, true).unwrap();
        v.map(0x3000, seg(2), 0, 0x1000, true).unwrap();
        assert_eq!(v.find_hole(0, 0x1000), 0);
        assert_eq!(v.find_hole(0x1000, 0x1000), 0x2000);
        assert_eq!(v.find_hole(0x1000, 0x2000), 0x4000);
    }

    fn space() -> (AddressSpace, Arc<LocalPartition>) {
        let clock = Arc::new(VirtualClock::new());
        let store = SegmentStore::new();
        store.create(seg(1), 4 * PAGE_SIZE as u64).unwrap();
        store.create(seg(2), PAGE_SIZE as u64).unwrap();
        let part = Arc::new(LocalPartition::new(store, clock, CostModel::zero()));
        let cache = Arc::new(PageCache::new(64));
        (
            AddressSpace::new(cache, Arc::clone(&part) as Arc<dyn Partition>),
            part,
        )
    }

    #[test]
    fn read_write_roundtrip_across_pages() {
        let (mut a, _p) = space();
        a.map(0x10000, seg(1), 0, 4 * PAGE_SIZE as u64, true).unwrap();
        let data: Vec<u8> = (0..PAGE_SIZE + 100).map(|i| (i % 256) as u8).collect();
        let addr = 0x10000 + PAGE_SIZE as u64 - 50;
        a.write(addr, &data).unwrap();
        assert_eq!(a.read(addr, data.len()).unwrap(), data);
    }

    #[test]
    fn write_to_readonly_mapping_rejected() {
        let (mut a, _p) = space();
        a.map(0x10000, seg(1), 0, PAGE_SIZE as u64, false).unwrap();
        assert!(matches!(
            a.write(0x10000, b"nope"),
            Err(RaError::ReadOnly(_))
        ));
        // Reads still work.
        assert_eq!(a.read(0x10000, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn u64_helpers() {
        let (mut a, _p) = space();
        a.map(0, seg(2), 0, PAGE_SIZE as u64, true).unwrap();
        a.write_u64(16, 0xDEAD_BEEF_CAFE).unwrap();
        assert_eq!(a.read_u64(16).unwrap(), 0xDEAD_BEEF_CAFE);
    }

    #[test]
    fn flush_persists_to_store() {
        let (mut a, p) = space();
        a.map(0, seg(2), 0, PAGE_SIZE as u64, true).unwrap();
        a.write(0, b"durable").unwrap();
        a.flush().unwrap();
        let stored = p.store().get(seg(2)).unwrap().read().read(0, 7).unwrap();
        assert_eq!(&stored, b"durable");
    }

    #[test]
    fn mapping_with_segment_offset() {
        let (mut a, p) = space();
        // Map only the second page of seg(1).
        a.map(0, seg(1), PAGE_SIZE as u64, PAGE_SIZE as u64, true)
            .unwrap();
        a.write(0, b"offset").unwrap();
        a.flush().unwrap();
        let stored = p
            .store()
            .get(seg(1))
            .unwrap()
            .read()
            .read(PAGE_SIZE as u64, 6)
            .unwrap();
        assert_eq!(&stored, b"offset");
    }

    #[test]
    fn two_spaces_share_one_cache_coherently() {
        let clock = Arc::new(VirtualClock::new());
        let store = SegmentStore::new();
        store.create(seg(1), PAGE_SIZE as u64).unwrap();
        let part: Arc<dyn Partition> = Arc::new(LocalPartition::new(
            store,
            clock,
            CostModel::zero(),
        ));
        let cache = Arc::new(PageCache::new(8));
        let mut a = AddressSpace::new(Arc::clone(&cache), Arc::clone(&part));
        let mut b = AddressSpace::new(cache, part);
        a.map(0, seg(1), 0, PAGE_SIZE as u64, true).unwrap();
        b.map(0x8000_0000, seg(1), 0, PAGE_SIZE as u64, true).unwrap();
        a.write(0, b"shared").unwrap();
        // b sees a's write through the shared frame without any flush.
        assert_eq!(b.read(0x8000_0000, 6).unwrap(), b"shared");
    }
}
