//! IsiBas and the low-level scheduler (§4.1).
//!
//! > "An IsiBa (from Ancient Egyptian: *Isi* = light, *Ba* = soul) is the
//! > abstraction of activity in the system, and can be thought of as a
//! > light-weight process. It is simply a kernel resource that should be
//! > associated with a stack to realize a schedulable entity."
//!
//! In this reproduction each IsiBa is backed by an OS thread, but the
//! *kernel semantics* are preserved: a node has a fixed number of virtual
//! CPUs (one, for a faithful Sun-3/60), IsiBas are dispatched from a FIFO
//! ready queue, scheduling is cooperative, and every context switch
//! charges the calibrated 0.14 ms to the node's virtual clock. Blocking
//! operations (page faults serviced over the network, remote invocations)
//! release the virtual CPU through [`IsiBaCtx::blocking`], just as the
//! real kernel switched to another process during a fault.

use clouds_obs::{Counter, NodeObs};
use clouds_simnet::{VirtualClock, Vt};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Identifier of an IsiBa, unique within one node's scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IsiBaId(pub u64);

impl fmt::Display for IsiBaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "isiba{}", self.0)
    }
}

/// The kind of stack an IsiBa runs on. Ra distinguishes kernel,
/// interrupt and user stacks; the reproduction keeps the classification
/// for bookkeeping and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StackKind {
    /// Kernel-internal activity (watchdogs, event notification).
    Kernel,
    /// Interrupt service activity.
    Interrupt,
    /// User computation: the building block of Clouds processes.
    #[default]
    User,
}

#[derive(Debug, Default)]
struct SchedInner {
    running: HashSet<IsiBaId>,
    ready: VecDeque<IsiBaId>,
    blocked: HashSet<IsiBaId>,
    live: HashSet<IsiBaId>,
    switches: u64,
}

/// Per-node cooperative scheduler multiplexing IsiBas over `cpus`
/// virtual processors.
///
/// # Examples
///
/// ```
/// use clouds_ra::sched::{Scheduler, StackKind};
/// use clouds_simnet::{VirtualClock, Vt};
/// use std::sync::Arc;
///
/// let clock = Arc::new(VirtualClock::new());
/// let sched = Scheduler::new(1, Arc::clone(&clock), Vt::from_micros(140));
/// let h = sched.spawn(StackKind::User, |ctx| {
///     ctx.yield_now();
/// });
/// h.join();
/// assert_eq!(clock.now(), Vt::from_micros(140)); // one context switch
/// ```
pub struct Scheduler {
    inner: Mutex<SchedInner>,
    cvar: Condvar,
    clock: Arc<VirtualClock>,
    switch_cost: Vt,
    cpus: usize,
    next_id: AtomicU64,
    obs: OnceLock<SchedObs>,
}

/// Observability wiring, installed once by cluster assembly
/// ([`Scheduler::set_obs`]); absent for standalone schedulers.
struct SchedObs {
    obs: Arc<NodeObs>,
    switches: Arc<Counter>,
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Scheduler")
            .field("cpus", &self.cpus)
            .field("running", &inner.running.len())
            .field("ready", &inner.ready.len())
            .field("blocked", &inner.blocked.len())
            .finish()
    }
}

impl Scheduler {
    /// Create a scheduler with `cpus` virtual processors.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(cpus: usize, clock: Arc<VirtualClock>, switch_cost: Vt) -> Arc<Scheduler> {
        assert!(cpus > 0, "a node needs at least one virtual CPU");
        Arc::new(Scheduler {
            inner: Mutex::new(SchedInner::default()),
            cvar: Condvar::new(),
            clock,
            switch_cost,
            cpus,
            next_id: AtomicU64::new(1),
            obs: OnceLock::new(),
        })
    }

    /// Route dispatch/block/wake events and the switch counter through
    /// `obs` (idempotent; the first handle wins). Installed by the
    /// compute-server boot path so scheduler events land on the same
    /// timeline as the node's transport and paging events.
    pub fn set_obs(&self, obs: Arc<NodeObs>) {
        let switches = obs.counter("sched.switches");
        let _ = self.obs.set(SchedObs { obs, switches });
    }

    /// Record a scheduling instant when observability is installed.
    fn trace(&self, name: &'static str, id: IsiBaId) {
        if let Some(o) = self.obs.get() {
            o.obs.instant("sched", name, format!("isiba={}", id.0));
        }
    }

    fn count_switch(&self) {
        if let Some(o) = self.obs.get() {
            o.switches.inc();
        }
    }

    /// Create an IsiBa executing `f` once it is dispatched.
    ///
    /// The new IsiBa enters the ready queue; it runs when a virtual CPU
    /// is free. The spawner keeps its CPU.
    pub fn spawn<F>(self: &Arc<Self>, kind: StackKind, f: F) -> IsiBaHandle
    where
        F: FnOnce(&IsiBaCtx) + Send + 'static,
    {
        let id = IsiBaId(self.next_id.fetch_add(1, Ordering::Relaxed));
        {
            let mut inner = self.inner.lock();
            inner.live.insert(id);
            inner.ready.push_back(id);
            self.dispatch(&mut inner);
        }
        let sched = Arc::clone(self);
        let thread = std::thread::Builder::new()
            .name(format!("{id}-{kind:?}"))
            .spawn(move || {
                sched.wait_for_cpu(id);
                let ctx = IsiBaCtx {
                    id,
                    kind,
                    sched: Arc::clone(&sched),
                };
                f(&ctx);
                sched.exit(id);
            })
            .expect("spawn isiba thread");
        IsiBaHandle { id, thread }
    }

    /// Total context switches performed so far.
    pub fn switches(&self) -> u64 {
        self.inner.lock().switches
    }

    /// Number of IsiBas that exist (running, ready or blocked).
    pub fn live_count(&self) -> usize {
        self.inner.lock().live.len()
    }

    /// Scheduler load: IsiBas waiting for a CPU. Used by the Clouds
    /// thread manager's placement policy.
    pub fn ready_len(&self) -> usize {
        self.inner.lock().ready.len()
    }

    /// Grant CPUs to ready IsiBas while capacity remains.
    fn dispatch(&self, inner: &mut SchedInner) {
        let mut granted = false;
        while inner.running.len() < self.cpus {
            let Some(next) = inner.ready.pop_front() else { break };
            inner.running.insert(next);
            self.trace("dispatch", next);
            granted = true;
        }
        if granted {
            self.cvar.notify_all();
        }
    }

    fn wait_for_cpu(&self, id: IsiBaId) {
        let mut inner = self.inner.lock();
        while !inner.running.contains(&id) {
            self.cvar.wait(&mut inner);
        }
    }

    fn yield_now(&self, id: IsiBaId) {
        {
            let mut inner = self.inner.lock();
            inner.running.remove(&id);
            inner.ready.push_back(id);
            inner.switches += 1;
            self.count_switch();
            self.dispatch(&mut inner);
            while !inner.running.contains(&id) {
                self.cvar.wait(&mut inner);
            }
        }
        self.clock.charge(self.switch_cost);
    }

    /// Move the current IsiBa to the blocked set and schedule others.
    /// Returns when [`Scheduler::wake`] re-readies it and a CPU is free.
    fn block(&self, id: IsiBaId) {
        {
            let mut inner = self.inner.lock();
            inner.running.remove(&id);
            inner.blocked.insert(id);
            inner.switches += 1;
            self.count_switch();
            self.trace("block", id);
            self.dispatch(&mut inner);
            while !inner.running.contains(&id) {
                self.cvar.wait(&mut inner);
            }
        }
        self.clock.charge(self.switch_cost);
    }

    /// Make a blocked IsiBa runnable again. No-op if it is not blocked.
    pub fn wake(&self, id: IsiBaId) {
        let mut inner = self.inner.lock();
        if inner.blocked.remove(&id) {
            self.trace("wake", id);
            inner.ready.push_back(id);
            self.dispatch(&mut inner);
        }
    }

    /// Release the CPU without queueing (external blocking operation).
    fn leave(&self, id: IsiBaId) {
        let mut inner = self.inner.lock();
        inner.running.remove(&id);
        inner.switches += 1;
        self.count_switch();
        self.dispatch(&mut inner);
    }

    /// Re-acquire a CPU after an external blocking operation.
    fn reenter(&self, id: IsiBaId) {
        {
            let mut inner = self.inner.lock();
            inner.ready.push_back(id);
            self.dispatch(&mut inner);
            while !inner.running.contains(&id) {
                self.cvar.wait(&mut inner);
            }
        }
        self.clock.charge(self.switch_cost);
    }

    fn exit(&self, id: IsiBaId) {
        let mut inner = self.inner.lock();
        inner.running.remove(&id);
        inner.live.remove(&id);
        self.dispatch(&mut inner);
    }
}

/// Handle to a spawned IsiBa.
#[derive(Debug)]
pub struct IsiBaHandle {
    id: IsiBaId,
    thread: std::thread::JoinHandle<()>,
}

impl IsiBaHandle {
    /// The IsiBa's id.
    pub fn id(&self) -> IsiBaId {
        self.id
    }

    /// Wait for the IsiBa to finish.
    ///
    /// # Panics
    ///
    /// Panics if the IsiBa panicked.
    pub fn join(self) {
        self.thread.join().expect("isiba panicked");
    }
}

/// Execution context handed to an IsiBa body.
#[derive(Clone)]
pub struct IsiBaCtx {
    id: IsiBaId,
    kind: StackKind,
    sched: Arc<Scheduler>,
}

impl fmt::Debug for IsiBaCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IsiBaCtx")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .finish()
    }
}

impl IsiBaCtx {
    /// This IsiBa's id.
    pub fn id(&self) -> IsiBaId {
        self.id
    }

    /// The stack kind this IsiBa runs on.
    pub fn stack_kind(&self) -> StackKind {
        self.kind
    }

    /// The owning scheduler.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Voluntarily give up the CPU to the next ready IsiBa.
    pub fn yield_now(&self) {
        self.sched.yield_now(self.id);
    }

    /// Block until another party calls [`Scheduler::wake`] with this id.
    /// Used to build semaphores and condition-style synchronization.
    pub fn block(&self) {
        self.sched.block(self.id);
    }

    /// Run a blocking operation (network wait, page fault service)
    /// without holding a virtual CPU, mirroring the kernel switching to
    /// another process during the wait.
    pub fn blocking<R>(&self, f: impl FnOnce() -> R) -> R {
        self.sched.leave(self.id);
        let result = f();
        self.sched.reenter(self.id);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn sched(cpus: usize) -> (Arc<Scheduler>, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        (
            Scheduler::new(cpus, Arc::clone(&clock), Vt::from_micros(140)),
            clock,
        )
    }

    #[test]
    fn single_isiba_runs_to_completion() {
        let (s, _) = sched(1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        s.spawn(StackKind::User, move |_| {
            d.store(1, Ordering::SeqCst);
        })
        .join();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    fn ping_pong_alternates_on_one_cpu() {
        let (s, clock) = sched(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        let go = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mk = |tag: u8, log: Arc<Mutex<Vec<u8>>>, go: Arc<std::sync::atomic::AtomicBool>| {
            move |ctx: &IsiBaCtx| {
                // Wait (cooperatively) until both IsiBas are spawned, so
                // the first does not finish before the second starts.
                while !go.load(Ordering::Acquire) {
                    ctx.yield_now();
                }
                for _ in 0..5 {
                    log.lock().push(tag);
                    ctx.yield_now();
                }
            }
        };
        let h1 = s.spawn(StackKind::User, mk(1, Arc::clone(&log), Arc::clone(&go)));
        let h2 = s.spawn(StackKind::User, mk(2, Arc::clone(&log), Arc::clone(&go)));
        go.store(true, Ordering::Release);
        h1.join();
        h2.join();
        let log = log.lock();
        assert_eq!(log.len(), 10);
        // Strict alternation after both are started.
        for pair in log.windows(2) {
            assert_ne!(pair[0], pair[1], "log {log:?}");
        }
        // Each of the 10 yields charged one context switch.
        assert!(clock.now() >= Vt::from_micros(10 * 140));
    }

    #[test]
    fn one_cpu_means_no_parallel_execution() {
        let (s, _) = sched(1);
        let concurrent = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&concurrent);
            let m = Arc::clone(&max_seen);
            handles.push(s.spawn(StackKind::User, move |ctx| {
                for _ in 0..20 {
                    let now = c.fetch_add(1, Ordering::SeqCst) + 1;
                    m.fetch_max(now, Ordering::SeqCst);
                    c.fetch_sub(1, Ordering::SeqCst);
                    ctx.yield_now();
                }
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multiple_cpus_allow_parallelism() {
        let (s, _) = sched(4);
        let in_blocking = Arc::new(AtomicUsize::new(0));
        let max_parallel = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&in_blocking);
            let m = Arc::clone(&max_parallel);
            handles.push(s.spawn(StackKind::User, move |_ctx| {
                let now = b.fetch_add(1, Ordering::SeqCst) + 1;
                m.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                b.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join();
        }
        assert!(max_parallel.load(Ordering::SeqCst) > 1);
    }

    #[test]
    fn blocking_releases_the_cpu() {
        let (s, _) = sched(1);
        let progressed = Arc::new(AtomicUsize::new(0));
        let p = Arc::clone(&progressed);
        let waiter = s.spawn(StackKind::User, move |ctx| {
            ctx.blocking(|| {
                // While we sleep off-CPU, the other IsiBa must run.
                std::thread::sleep(std::time::Duration::from_millis(50));
            });
        });
        let p2 = Arc::clone(&p);
        let runner = s.spawn(StackKind::User, move |_| {
            p2.store(1, Ordering::SeqCst);
        });
        runner.join();
        assert_eq!(progressed.load(Ordering::SeqCst), 1);
        waiter.join();
    }

    #[test]
    fn block_and_wake() {
        let (s, _) = sched(1);
        let stage = Arc::new(AtomicUsize::new(0));
        let st = Arc::clone(&stage);
        let sleeper = s.spawn(StackKind::User, move |ctx| {
            st.store(1, Ordering::SeqCst);
            ctx.block();
            st.store(2, Ordering::SeqCst);
        });
        let id = sleeper.id();
        while stage.load(Ordering::SeqCst) != 1 {
            std::thread::yield_now();
        }
        // Give the sleeper time to actually block, then wake it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(stage.load(Ordering::SeqCst), 1);
        s.wake(id);
        sleeper.join();
        assert_eq!(stage.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn wake_of_unblocked_isiba_is_noop() {
        let (s, _) = sched(1);
        s.wake(IsiBaId(999)); // unknown id: must not panic
        let h = s.spawn(StackKind::User, |_| {});
        h.join();
    }

    #[test]
    fn switch_counter_advances() {
        let (s, _) = sched(1);
        let h = s.spawn(StackKind::User, |ctx| {
            for _ in 0..3 {
                ctx.yield_now();
            }
        });
        h.join();
        assert!(s.switches() >= 3);
    }

    #[test]
    #[should_panic(expected = "at least one virtual CPU")]
    fn zero_cpus_rejected() {
        let clock = Arc::new(VirtualClock::new());
        let _ = Scheduler::new(0, clock, Vt::ZERO);
    }

    #[test]
    fn many_isibas_fifo_fairness() {
        let (s, _) = sched(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..8u32 {
            let o = Arc::clone(&order);
            handles.push(s.spawn(StackKind::User, move |_| {
                o.lock().push(i);
            }));
        }
        for h in handles {
            h.join();
        }
        let order = order.lock();
        assert_eq!(&*order, &(0..8).collect::<Vec<_>>());
    }
}
