//! `clouds-ra` — **Ra**, the native minimal kernel of Clouds (§4.1).
//!
//! > "Ra is the native minimal kernel that supports the basic mechanisms:
//! > virtual memory management and low-level scheduling."
//!
//! Ra implements exactly the four abstractions the paper names, as a
//! per-simulated-node kernel:
//!
//! * [`Segment`] — "a sequence of uninterpreted bytes of variable length
//!   that exists either on the disk or in physical memory. Segments have
//!   systemwide unique names (called sysnames). Segments once created,
//!   persist until explicitly destroyed." Stored durably in a
//!   [`SegmentStore`] (the simulated disk of a data server).
//! * [`VirtualSpace`] — "the abstraction of an addressing domain … a
//!   monotonically increasing range of virtual addresses with possible
//!   holes. Each contiguous range of virtual addresses is mapped to (a
//!   portion of) a segment."
//! * **IsiBas** ([`sched::Scheduler`], [`sched::IsiBaCtx`]) — "the
//!   abstraction of activity in the system … a light-weight process",
//!   multiplexed cooperatively over a configurable number of virtual
//!   CPUs per node. A Clouds process is an IsiBa plus a user stack plus a
//!   virtual space; Clouds threads are built from Clouds processes by the
//!   upper layer.
//! * [`Partition`] — "an entity that provides non-volatile data storage
//!   for segments … In order to access a segment, the partition
//!   containing the segment has to be contacted." Ra only defines the
//!   interface; partitions are implemented as system objects — the
//!   [`LocalPartition`] here for machines with a (simulated) disk, and
//!   the DSM client partition in `clouds-dsm` for diskless compute
//!   servers.
//!
//! The [`RaKernel`] ties one node's scheduler, virtual clock, page-frame
//! cache and partition together, and [`AddressSpace`] provides the
//! demand-paged read/write path used by object invocations.
//!
//! # Examples
//!
//! ```
//! use clouds_ra::{RaKernel, SysName, PAGE_SIZE};
//! use clouds_simnet::{CostModel, Network, NodeId};
//! use std::sync::Arc;
//!
//! let net = Network::new(CostModel::zero());
//! let kernel = RaKernel::with_local_store(NodeId(1), &net);
//! let seg = SysName::parse("0000000000000001-0000000000000001").unwrap();
//! kernel.partition().create_segment(seg, 2 * PAGE_SIZE as u64).unwrap();
//!
//! let mut space = kernel.new_address_space();
//! space.map(0x1000, seg, 0, 2 * PAGE_SIZE as u64, true).unwrap();
//! space.write(0x1000, b"persistent!").unwrap();
//! assert_eq!(space.read(0x1000, 11).unwrap(), b"persistent!");
//! ```

#![forbid(unsafe_code)]

mod error;
mod kernel;
mod partition;
pub mod sched;
mod segment;
mod sysname;
mod vspace;

pub use error::RaError;
pub use kernel::RaKernel;
pub use partition::{
    AccessMode, CacheStats, Frame, LocalPartition, PageCache, PageFetch, Partition,
    ReclaimOutcome, WriteBackItem,
};
pub use segment::{Segment, SegmentStore, PAGE_SIZE};
pub use sysname::{SysName, SysNameGen};
pub use vspace::{AddressSpace, Mapping, VirtualSpace};

/// Result alias for kernel operations.
pub type Result<T> = std::result::Result<T, RaError>;
