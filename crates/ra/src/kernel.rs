//! The per-node kernel object tying the Ra mechanisms together.

use crate::partition::{LocalPartition, PageCache, Partition};
use crate::sched::Scheduler;
use crate::segment::SegmentStore;
use crate::sysname::{SysName, SysNameGen};
use crate::vspace::AddressSpace;
use clouds_simnet::{CostModel, Network, NodeId, VirtualClock};
use std::fmt;
use std::sync::Arc;

/// Default number of resident page frames per node (4 MB of 8 KB pages,
/// in the spirit of a Sun-3/60's memory).
pub const DEFAULT_CACHE_FRAMES: usize = 512;

/// One node's Ra kernel: clock, scheduler, page frames, and the
/// partition through which all segment storage is reached.
///
/// Ra is "the conceptual motherboard" (§4.2) — it owns mechanisms only.
/// Policies (object management, thread management, naming) live in
/// system objects layered above, in `clouds-dsm` and `clouds`.
pub struct RaKernel {
    node: NodeId,
    clock: Arc<VirtualClock>,
    cost: CostModel,
    scheduler: Arc<Scheduler>,
    cache: Arc<PageCache>,
    partition: Arc<dyn Partition>,
    sysnames: SysNameGen,
}

impl fmt::Debug for RaKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RaKernel")
            .field("node", &self.node)
            .field("now", &self.clock.now())
            .field("resident_pages", &self.cache.resident())
            .finish()
    }
}

impl RaKernel {
    /// Assemble a kernel from parts. `cpus` is the number of virtual
    /// processors (1 models the paper's Sun-3/60 compute servers).
    pub fn new(
        node: NodeId,
        clock: Arc<VirtualClock>,
        cost: CostModel,
        partition: Arc<dyn Partition>,
        cpus: usize,
        cache_frames: usize,
    ) -> Arc<RaKernel> {
        RaKernel::new_with_cache(
            node,
            clock,
            cost,
            partition,
            cpus,
            Arc::new(PageCache::new(cache_frames)),
        )
    }

    /// Like [`RaKernel::new`] but sharing an externally created page
    /// cache — required when the partition (e.g. the DSM client's
    /// recall service) must see the same frames as the kernel.
    pub fn new_with_cache(
        node: NodeId,
        clock: Arc<VirtualClock>,
        cost: CostModel,
        partition: Arc<dyn Partition>,
        cpus: usize,
        cache: Arc<PageCache>,
    ) -> Arc<RaKernel> {
        let scheduler = Scheduler::new(cpus, Arc::clone(&clock), cost.context_switch);
        Arc::new(RaKernel {
            node,
            clock,
            cost,
            scheduler,
            cache,
            partition,
            sysnames: SysNameGen::new(node.0),
        })
    }

    /// Convenience constructor: a kernel with its own fresh
    /// [`SegmentStore`]-backed [`LocalPartition`], using `net`'s cost
    /// model. Suitable for single-node use and examples.
    pub fn with_local_store(node: NodeId, net: &Network) -> Arc<RaKernel> {
        let clock = net
            .clock(node)
            .unwrap_or_else(|| Arc::new(VirtualClock::new()));
        let cost = net.cost_model().clone();
        let partition: Arc<dyn Partition> = Arc::new(LocalPartition::new(
            SegmentStore::new(),
            Arc::clone(&clock),
            cost.clone(),
        ));
        RaKernel::new(node, clock, cost, partition, 1, DEFAULT_CACHE_FRAMES)
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The calibrated cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The cooperative IsiBa scheduler.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// The node's page-frame cache.
    pub fn page_cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// The partition through which segments are reached.
    pub fn partition(&self) -> &Arc<dyn Partition> {
        &self.partition
    }

    /// Mint a fresh sysname.
    pub fn new_sysname(&self) -> SysName {
        self.sysnames.next()
    }

    /// A fresh, empty address space over this node's cache/partition.
    pub fn new_address_space(&self) -> AddressSpace {
        AddressSpace::new(Arc::clone(&self.cache), Arc::clone(&self.partition))
    }

    /// Simulate a node crash: all volatile state (page frames) is lost.
    /// The caller is responsible for also crashing the node at the
    /// network level.
    pub fn crash_volatile_state(&self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::PAGE_SIZE;
    use clouds_simnet::CostModel;

    #[test]
    fn kernel_end_to_end() {
        let net = Network::new(CostModel::zero());
        let kernel = RaKernel::with_local_store(NodeId(1), &net);
        let seg = kernel.new_sysname();
        kernel
            .partition()
            .create_segment(seg, PAGE_SIZE as u64)
            .unwrap();
        let mut space = kernel.new_address_space();
        space.map(0, seg, 0, PAGE_SIZE as u64, true).unwrap();
        space.write(0, b"kernel").unwrap();
        assert_eq!(space.read(0, 6).unwrap(), b"kernel");
    }

    #[test]
    fn crash_discards_dirty_frames() {
        let net = Network::new(CostModel::zero());
        let kernel = RaKernel::with_local_store(NodeId(1), &net);
        let seg = kernel.new_sysname();
        kernel
            .partition()
            .create_segment(seg, PAGE_SIZE as u64)
            .unwrap();
        let mut space = kernel.new_address_space();
        space.map(0, seg, 0, PAGE_SIZE as u64, true).unwrap();
        space.write(0, b"volatile").unwrap();
        kernel.crash_volatile_state();
        // After the "reboot", the unflushed write is gone.
        assert_eq!(space.read(0, 8).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn sysnames_are_unique_per_kernel() {
        let net = Network::new(CostModel::zero());
        let k = RaKernel::with_local_store(NodeId(3), &net);
        let a = k.new_sysname();
        let b = k.new_sysname();
        assert_ne!(a, b);
    }
}
