//! Property-based tests for the Ra memory mechanisms: segments behave
//! like flat byte arrays, and virtual spaces translate like the
//! reference model.

use clouds_ra::{RaError, Segment, SysName, VirtualSpace, PAGE_SIZE};
use proptest::prelude::*;

fn name(n: u64) -> SysName {
    SysName::from_parts(42, n)
}

proptest! {
    /// A segment must be indistinguishable from a plain byte vector
    /// under any sequence of in-range reads and writes.
    #[test]
    fn segment_equals_flat_bytes(
        ops in prop::collection::vec(
            (0u64..3 * PAGE_SIZE as u64, prop::collection::vec(any::<u8>(), 1..300), any::<bool>()),
            1..40,
        )
    ) {
        let len = 3 * PAGE_SIZE as u64 + 123;
        let mut segment = Segment::new(name(1), len);
        let mut model = vec![0u8; len as usize];
        for (offset, data, is_write) in ops {
            let end = offset as usize + data.len();
            if end > len as usize {
                prop_assert!(segment.write(offset, &data).is_err());
                continue;
            }
            if is_write {
                segment.write(offset, &data).unwrap();
                model[offset as usize..end].copy_from_slice(&data);
            } else {
                let got = segment.read(offset, data.len()).unwrap();
                prop_assert_eq!(&got, &model[offset as usize..end]);
            }
        }
        // Final full comparison.
        prop_assert_eq!(segment.read(0, len as usize).unwrap(), model);
    }

    /// Page-granular access agrees with byte-granular access.
    #[test]
    fn segment_page_view_consistent(
        writes in prop::collection::vec(
            (0u32..4, prop::collection::vec(any::<u8>(), PAGE_SIZE..=PAGE_SIZE)),
            1..10,
        )
    ) {
        let mut segment = Segment::new(name(2), 4 * PAGE_SIZE as u64);
        let mut model = vec![0u8; 4 * PAGE_SIZE];
        for (page, data) in writes {
            segment.write_page(page, &data).unwrap();
            let at = page as usize * PAGE_SIZE;
            model[at..at + PAGE_SIZE].copy_from_slice(&data);
        }
        for page in 0..4u32 {
            let at = page as usize * PAGE_SIZE;
            prop_assert_eq!(segment.read_page(page).unwrap(), &model[at..at + PAGE_SIZE]);
        }
    }

    /// VirtualSpace translation matches a brute-force model of the
    /// accepted mappings, and never accepts overlap.
    #[test]
    fn vspace_matches_model(
        requests in prop::collection::vec(
            (0u64..1 << 20, 1u64..(1 << 14)),
            1..25,
        ),
        probes in prop::collection::vec(0u64..(1 << 20) + (1 << 14), 64),
    ) {
        let mut space = VirtualSpace::new();
        // model: accepted (base, len, seg)
        let mut accepted: Vec<(u64, u64, SysName)> = Vec::new();
        for (i, (base, len)) in requests.into_iter().enumerate() {
            let seg = name(i as u64 + 10);
            let overlaps = accepted
                .iter()
                .any(|(b, l, _)| base < b + l && *b < base + len);
            let result = space.map(base, seg, 0, len, true);
            if overlaps {
                prop_assert!(matches!(result, Err(RaError::OverlappingMapping(_))));
            } else {
                prop_assert!(result.is_ok());
                accepted.push((base, len, seg));
            }
        }
        for addr in probes {
            let expect = accepted
                .iter()
                .find(|(b, l, _)| addr >= *b && addr < b + l);
            match (space.translate(addr, 1), expect) {
                (Ok((seg, off, _)), Some((b, _, s))) => {
                    prop_assert_eq!(seg, *s);
                    prop_assert_eq!(off, addr - b);
                }
                (Err(RaError::Unmapped(_)), None) => {}
                (got, want) => prop_assert!(false, "addr {addr:#x}: got {got:?}, want {want:?}"),
            }
        }
    }

    /// Unmapping restores translate-failure, and double unmap fails.
    #[test]
    fn vspace_unmap_roundtrip(bases in prop::collection::btree_set(0u64..64, 1..8)) {
        let mut space = VirtualSpace::new();
        let bases: Vec<u64> = bases.into_iter().map(|b| b * 0x10000).collect();
        for (i, &b) in bases.iter().enumerate() {
            space.map(b, name(i as u64), 0, 0x8000, true).unwrap();
        }
        for &b in &bases {
            prop_assert!(space.translate(b, 8).is_ok());
            space.unmap(b).unwrap();
            prop_assert!(space.translate(b, 8).is_err());
            prop_assert!(space.unmap(b).is_err());
        }
        prop_assert!(space.is_empty());
    }
}
