//! Property-based tests for the RaTP wire format: fragmentation and
//! reassembly must round-trip arbitrary payloads even when the network
//! reorders and duplicates fragments, and the header checksum must catch
//! arbitrary single-bit corruption.

use bytes::Bytes;
use clouds_obs::SpanContext;
use clouds_ratp::{fragment, Packet, PacketKind, Reassembly, MAX_FRAGMENT_PAYLOAD};
use proptest::prelude::*;

/// SplitMix64: tiny deterministic generator so the shuffle/duplication
/// pattern is reproducible from one u64 without extra dependencies.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Fisher–Yates driven by the seed.
fn shuffle<T>(items: &mut [T], mix: &mut Mix) {
    for i in (1..items.len()).rev() {
        items.swap(i, mix.below(i + 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any payload survives fragment → encode → wire reorder/duplicate →
    /// decode → reassemble, byte for byte.
    #[test]
    fn roundtrip_under_reordering_and_duplication(
        len in 0usize..(3 * MAX_FRAGMENT_PAYLOAD + 37),
        fill in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut mix = Mix(fill);
        let message: Vec<u8> = (0..len).map(|_| mix.next() as u8).collect();
        let ctx = SpanContext {
            trace_id: 0xABCD,
            span_id: 0x1234,
            parent_id: 7,
        };
        let frags = fragment(PacketKind::Request, 9, 0xC0FFEE, Bytes::from(message.clone()), ctx);
        prop_assert_eq!(
            frags.len(),
            len.div_ceil(MAX_FRAGMENT_PAYLOAD).max(1),
            "unexpected fragment count for {} bytes", len
        );

        // Put every fragment on the wire, duplicating some, then shuffle.
        let mut mix = Mix(seed);
        let mut wire: Vec<Bytes> = Vec::new();
        for f in &frags {
            let encoded = f.encode();
            wire.push(encoded.clone());
            if mix.below(3) == 0 {
                wire.push(encoded); // duplicated in transit
            }
        }
        shuffle(&mut wire, &mut mix);

        let mut re = Reassembly::new(frags.len() as u16);
        let mut completed: Option<Bytes> = None;
        for raw in wire {
            let pkt = Packet::decode(raw).expect("valid frame must decode");
            if let Some(whole) = re.insert(pkt) {
                prop_assert!(completed.is_none(), "message completed twice");
                completed = Some(whole);
            }
        }
        let whole = completed.expect("all fragments delivered");
        prop_assert_eq!(&whole[..], &message[..]);
    }

    /// A single bit flip anywhere in an encoded frame is always caught by
    /// the checksum: decode returns None and the frame is discarded.
    #[test]
    fn single_bit_flip_never_decodes(
        len in 0usize..200,
        fill in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut mix = Mix(fill);
        let message: Vec<u8> = (0..len).map(|_| mix.next() as u8).collect();
        let ctx = if seed % 2 == 0 {
            SpanContext { trace_id: 3, span_id: 5, parent_id: 0 }
        } else {
            SpanContext::NONE
        };
        let frags = fragment(PacketKind::Reply, 0, 0xFEED, Bytes::from(message), ctx);
        let wire = frags[0].encode();

        let mut mix = Mix(seed);
        let byte = mix.below(wire.len());
        let bit = mix.below(8);
        let mut damaged = wire.to_vec();
        damaged[byte] ^= 1 << bit;
        prop_assert!(
            Packet::decode(Bytes::from(damaged)).is_none(),
            "flip of byte {} bit {} went undetected", byte, bit
        );
    }

    /// Fragment metadata is self-consistent for every payload size.
    #[test]
    fn fragment_indices_are_dense_and_sized(len in 0usize..(4 * MAX_FRAGMENT_PAYLOAD)) {
        let message = Bytes::from(vec![0xA5u8; len]);
        let frags = fragment(PacketKind::Request, 1, 2, message, SpanContext::NONE);
        let count = frags.len() as u16;
        let mut total = 0usize;
        for (i, f) in frags.iter().enumerate() {
            prop_assert_eq!(f.frag_index, i as u16);
            prop_assert_eq!(f.frag_count, count);
            prop_assert!(f.payload.len() <= MAX_FRAGMENT_PAYLOAD);
            total += f.payload.len();
        }
        prop_assert_eq!(total, len);
    }
}
