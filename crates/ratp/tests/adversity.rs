//! RaTP under adversity: loss, duplication, crash-restart, concurrent
//! load, and property-based packet handling.

use bytes::Bytes;
use clouds_ratp::{CallError, Packet, RatpConfig, RatpNode, Request};
use clouds_simnet::{CostModel, Network, NodeId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const ECHO: u16 = 1;

fn bed(seed: u64) -> (Network, Arc<RatpNode>, Arc<RatpNode>) {
    let net = Network::with_seed(CostModel::zero(), seed);
    let cfg = RatpConfig {
        retry_interval: Duration::from_millis(8),
        max_retries: 400,
        ..RatpConfig::default()
    };
    let a = RatpNode::spawn(net.register(NodeId(1)).unwrap(), cfg.clone());
    let b = RatpNode::spawn(net.register(NodeId(2)).unwrap(), cfg);
    b.register_service(ECHO, |req: Request| req.payload);
    (net, a, b)
}

#[test]
fn loss_and_duplication_together() {
    let (net, a, _b) = bed(7);
    net.set_loss(0.25);
    net.set_duplication(0.25);
    for i in 0..15u32 {
        let msg = i.to_le_bytes().to_vec();
        let reply = a.call(NodeId(2), ECHO, Bytes::from(msg.clone())).unwrap();
        assert_eq!(&reply[..], &msg[..]);
    }
}

#[test]
fn multi_fragment_messages_survive_loss() {
    let (net, a, _b) = bed(11);
    net.set_loss(0.15);
    let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
    for _ in 0..5 {
        let reply = a.call(NodeId(2), ECHO, Bytes::from(payload.clone())).unwrap();
        assert_eq!(reply.len(), payload.len());
    }
}

#[test]
fn server_crash_mid_conversation_then_restart() {
    let (net, a, b) = bed(13);
    a.call(NodeId(2), ECHO, Bytes::from_static(b"before")).unwrap();

    net.crash(NodeId(2));
    let err = a
        .call_with_budget(NodeId(2), ECHO, Bytes::from_static(b"down"), 3)
        .unwrap_err();
    assert_eq!(err, CallError::TimedOut);

    net.restart(NodeId(2));
    b.reset_volatile_state(); // a rebooted machine forgets protocol state
    let reply = a.call(NodeId(2), ECHO, Bytes::from_static(b"after")).unwrap();
    assert_eq!(&reply[..], b"after");
}

#[test]
fn at_most_once_execution_per_transaction_under_faults() {
    // Under pure duplication (no loss), a non-idempotent handler must
    // run exactly once per call.
    let (net, a, b) = bed(17);
    let hits = Arc::new(AtomicU64::new(0));
    let h = Arc::clone(&hits);
    b.register_service(9, move |_req: Request| {
        h.fetch_add(1, Ordering::SeqCst);
        Bytes::new()
    });
    net.set_duplication(0.5);
    for _ in 0..30 {
        a.call(NodeId(2), 9, Bytes::new()).unwrap();
    }
    assert_eq!(hits.load(Ordering::SeqCst), 30);
}

#[test]
fn notify_is_fire_and_forget() {
    let (_net, a, b) = bed(19);
    let hits = Arc::new(AtomicU64::new(0));
    let h = Arc::clone(&hits);
    b.register_service(5, move |_req: Request| {
        h.fetch_add(1, Ordering::SeqCst);
        Bytes::new()
    });
    for _ in 0..4 {
        a.notify(NodeId(2), 5, Bytes::from_static(b"ping"));
    }
    // Delivered asynchronously.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while hits.load(Ordering::SeqCst) < 4 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(hits.load(Ordering::SeqCst), 4);
}

#[test]
fn heavy_concurrent_load_with_faults() {
    let (net, a, _b) = bed(23);
    net.set_loss(0.1);
    net.set_duplication(0.1);
    let mut handles = Vec::new();
    for t in 0..6u8 {
        let a = Arc::clone(&a);
        handles.push(std::thread::spawn(move || {
            for i in 0..10u8 {
                let msg = vec![t, i, t ^ i];
                let reply = a.call(NodeId(2), ECHO, Bytes::from(msg.clone())).unwrap();
                assert_eq!(&reply[..], &msg[..]);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

proptest! {
    /// Arbitrary bytes never panic the packet decoder, and every decoded
    /// packet re-encodes to an equivalent packet.
    #[test]
    fn packet_decode_total(raw in prop::collection::vec(any::<u8>(), 0..1600)) {
        if let Some(packet) = Packet::decode(Bytes::from(raw)) {
            let reencoded = Packet::decode(packet.encode()).expect("round trip");
            prop_assert_eq!(reencoded, packet);
        }
    }

    /// Echo correctness over random payload sizes spanning multiple
    /// fragmentation regimes.
    #[test]
    fn echo_roundtrip_any_size(len in 0usize..6000, seed in 0u64..50) {
        let (_net, a, _b) = bed(1000 + seed);
        let payload: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        let reply = a.call(NodeId(2), ECHO, Bytes::from(payload.clone())).unwrap();
        prop_assert_eq!(&reply[..], &payload[..]);
    }
}
