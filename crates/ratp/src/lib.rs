//! `clouds-ratp` — the **Ra Transport Protocol**.
//!
//! RaTP is the transport used for *all* communication in Clouds (§4.2
//! "Networking and RaTP"): a connectionless, reliable **message
//! transaction** protocol in the style of Cheriton's VMTP. A transaction
//! is a send/reply pair used for client–server communication — there are
//! no connections, no streams.
//!
//! This implementation runs over [`clouds_simnet`] frames and provides:
//!
//! * **Fragmentation/reassembly** — messages larger than the Ethernet MTU
//!   are split into numbered fragments (an 8 KB page needs 6).
//! * **Retransmission** — the client retransmits the request until the
//!   reply arrives or the retry budget is exhausted.
//! * **Duplicate suppression** — servers remember recently answered
//!   transactions and replay the cached reply instead of re-executing the
//!   handler (at-most-once execution in the absence of cache eviction).
//! * **Service dispatch** — each node exposes numbered ports; the Clouds
//!   system objects (DSM server, object manager, name server, user I/O)
//!   each claim one.
//!
//! # Examples
//!
//! ```
//! use clouds_ratp::{RatpConfig, RatpNode, Request};
//! use clouds_simnet::{CostModel, Network, NodeId};
//! use bytes::Bytes;
//!
//! let net = Network::new(CostModel::zero());
//! let client = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
//! let server = RatpNode::spawn(net.register(NodeId(2)).unwrap(), RatpConfig::default());
//!
//! const ECHO: u16 = 7;
//! server.register_service(ECHO, |req: Request| req.payload);
//!
//! let reply = client.call(NodeId(2), ECHO, Bytes::from_static(b"hello")).unwrap();
//! assert_eq!(&reply[..], b"hello");
//! ```

#![forbid(unsafe_code)]

mod detector;
mod node;
mod packet;

pub use detector::FailureDetector;
pub use node::{CallError, RatpConfig, RatpNode, Request, Service};
pub use packet::{fragment, Packet, PacketKind, Reassembly, HEADER_LEN, MAX_FRAGMENT_PAYLOAD};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use clouds_simnet::{CostModel, Network, NodeId, Vt};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    const ECHO: u16 = 1;
    const COUNT: u16 = 2;

    fn testbed(cost: CostModel) -> (Network, Arc<RatpNode>, Arc<RatpNode>) {
        let net = Network::new(cost);
        let cfg = RatpConfig {
            retry_interval: Duration::from_millis(10),
            max_retries: 200,
            ..RatpConfig::default()
        };
        let a = RatpNode::spawn(net.register(NodeId(1)).unwrap(), cfg.clone());
        let b = RatpNode::spawn(net.register(NodeId(2)).unwrap(), cfg);
        b.register_service(ECHO, |req: Request| req.payload);
        (net, a, b)
    }

    #[test]
    fn null_transaction_round_trip_vt() {
        let (_net, a, _b) = testbed(CostModel::sun3_ethernet());
        let before = a.clock().now();
        a.call(NodeId(2), ECHO, Bytes::new()).unwrap();
        let rtt = a.clock().now() - before;
        // Paper §4.3: the RaTP reliable round trip is 4.8 ms. Small
        // messages: 2 frames + 4 transport packet processing steps.
        assert!(rtt >= Vt::from_micros(4000), "rtt {rtt}");
        assert!(rtt <= Vt::from_micros(5600), "rtt {rtt}");
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let (net, a, _b) = testbed(CostModel::zero());
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let reply = a.call(NodeId(2), ECHO, Bytes::from(payload.clone())).unwrap();
        assert_eq!(&reply[..], &payload[..]);
        // 20000 bytes needs at least 14 fragments each way.
        assert!(net.stats().frames_sent >= 28);
    }

    #[test]
    fn empty_and_exact_mtu_boundary_payloads() {
        let (_net, a, _b) = testbed(CostModel::zero());
        for len in [
            0,
            1,
            MAX_FRAGMENT_PAYLOAD - 1,
            MAX_FRAGMENT_PAYLOAD,
            MAX_FRAGMENT_PAYLOAD + 1,
            2 * MAX_FRAGMENT_PAYLOAD,
        ] {
            let payload = vec![0xAB; len];
            let reply = a.call(NodeId(2), ECHO, Bytes::from(payload.clone())).unwrap();
            assert_eq!(reply.len(), len, "len {len}");
        }
    }

    #[test]
    fn survives_heavy_loss() {
        let (net, a, _b) = testbed(CostModel::zero());
        net.set_loss(0.3);
        for i in 0..20u8 {
            let reply = a.call(NodeId(2), ECHO, Bytes::from(vec![i; 64])).unwrap();
            assert_eq!(&reply[..], &vec![i; 64][..]);
        }
    }

    #[test]
    fn duplicate_frames_do_not_reexecute_handler() {
        let (net, a, b) = testbed(CostModel::zero());
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.register_service(COUNT, move |_req: Request| {
            h.fetch_add(1, Ordering::SeqCst);
            Bytes::new()
        });
        net.set_duplication(1.0);
        for _ in 0..5 {
            a.call(NodeId(2), COUNT, Bytes::new()).unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn call_to_unknown_service_errors() {
        let (_net, a, _b) = testbed(CostModel::zero());
        let err = a.call(NodeId(2), 999, Bytes::new()).unwrap_err();
        assert!(matches!(err, CallError::ServiceNotFound(999)));
    }

    #[test]
    fn call_to_crashed_node_times_out() {
        let (net, a, _b) = testbed(CostModel::zero());
        net.crash(NodeId(2));
        let cfg_limited = a.call_with_budget(NodeId(2), ECHO, Bytes::new(), 3);
        assert!(matches!(cfg_limited, Err(CallError::TimedOut)));
    }

    #[test]
    fn concurrent_calls_multiplex() {
        let (_net, a, _b) = testbed(CostModel::zero());
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for i in 0..10u8 {
                    let msg = vec![t, i];
                    let reply = a.call(NodeId(2), ECHO, Bytes::from(msg.clone())).unwrap();
                    assert_eq!(&reply[..], &msg[..]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn services_can_call_other_nodes() {
        // A proxy service on node 2 forwards to the echo on node 3:
        // exercises blocking calls from within a handler (needed by DSM
        // forwarding).
        let net = Network::new(CostModel::zero());
        let a = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
        let b = RatpNode::spawn(net.register(NodeId(2)).unwrap(), RatpConfig::default());
        let c = RatpNode::spawn(net.register(NodeId(3)).unwrap(), RatpConfig::default());
        c.register_service(ECHO, |req: Request| req.payload);
        let b2 = Arc::clone(&b);
        b.register_service(10, move |req: Request| {
            b2.call(NodeId(3), ECHO, req.payload).unwrap()
        });
        let reply = a.call(NodeId(2), 10, Bytes::from_static(b"via proxy")).unwrap();
        assert_eq!(&reply[..], b"via proxy");
    }

    #[test]
    fn heartbeats_record_arrival_in_virtual_time() {
        let (_net, a, b) = testbed(CostModel::sun3_ethernet());
        assert!(b.last_heartbeat(NodeId(1)).is_none(), "no beacon yet");
        let sent_at = a.clock().now();
        a.send_heartbeat(NodeId(2));
        let mut heard = None;
        for _ in 0..400 {
            heard = b.last_heartbeat(NodeId(1));
            if heard.is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let heard = heard.expect("beacon delivered");
        // The arrival stamp reflects wire time: at least the send time
        // (the receiver's clock advanced to the frame's arrival).
        assert!(heard >= sent_at, "heard {heard} < sent {sent_at}");
        // Heartbeats are fire-and-forget: no pending call, no reply.
        assert!(a.last_heartbeat(NodeId(2)).is_none());
    }

    #[test]
    fn eight_k_page_transfer_vt_matches_paper_shape() {
        let (_net, a, _b) = testbed(CostModel::sun3_ethernet());
        let before = a.clock().now();
        a.call(NodeId(2), ECHO, Bytes::from(vec![0u8; 8192])).unwrap();
        let t = a.clock().now() - before;
        // Paper: reliably transferring an 8K page takes 11.9 ms. Our call
        // echoes the page back, so allow roughly twice that but verify the
        // one-way shape: at least 6 fragments' worth of wire time.
        assert!(t >= Vt::from_millis(12), "t {t}");
        assert!(t <= Vt::from_millis(40), "t {t}");
    }
}
