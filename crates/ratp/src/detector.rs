//! Virtual-time failure detection over RaTP heartbeats.
//!
//! Data servers beacon each other with [`crate::RatpNode::send_heartbeat`]
//! and record arrivals in virtual time. A [`FailureDetector`] turns those
//! stamps into a liveness verdict: a peer is declared dead when the gap
//! since its last beacon exceeds a fixed *budget*.
//!
//! The budget is the whole story. Too small and a merely jittered beacon
//! trips a false positive (promoting a backup while the primary still
//! serves — a split brain); too large and failover is slow. The safe
//! floor is
//!
//! ```text
//! budget > interval × (missed + 1) + max_jitter
//! ```
//!
//! where `interval` is the beacon period, `missed` the number of
//! consecutive beacon losses tolerated, and `max_jitter` the worst-case
//! extra network delay. Consecutive beacons arrive at most
//! `interval + max_jitter` apart (the previous one can arrive with zero
//! jitter, the next with the maximum), so any budget above that floor can
//! only fire after real silence.

use clouds_simnet::Vt;

/// Liveness verdicts from virtual-time heartbeat stamps.
///
/// Pure state: the detector holds only its budget, so the same instance
/// can judge any number of peers, and verdicts are a deterministic
/// function of `(last_heard, now)` — exactly reproducible under a seeded
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureDetector {
    budget: Vt,
}

impl FailureDetector {
    /// Detector that declares a peer dead after `budget` of virtual-time
    /// silence.
    pub const fn new(budget: Vt) -> FailureDetector {
        FailureDetector { budget }
    }

    /// The minimum safe budget for a beacon `interval`, tolerating
    /// `missed` consecutive lost beacons under `max_jitter` of worst-case
    /// delivery delay — the floor from the module docs, plus one
    /// nanosecond so the comparison is strict.
    pub const fn tolerant(interval: Vt, missed: u64, max_jitter: Vt) -> FailureDetector {
        let floor = interval.as_nanos() * (missed + 1) + max_jitter.as_nanos();
        FailureDetector::new(Vt::from_nanos(floor + 1))
    }

    /// The configured silence budget.
    pub const fn budget(&self) -> Vt {
        self.budget
    }

    /// Is a peer last heard at `last_heard` dead as of `now`?
    ///
    /// `None` (never heard) is *alive*: a detector that has not yet seen
    /// a first beacon has no evidence of silence, and declaring unseen
    /// peers dead would fire promotions at boot.
    pub fn is_dead(&self, last_heard: Option<Vt>, now: Vt) -> bool {
        match last_heard {
            None => false,
            Some(last) => now.saturating_sub(last) > self.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The chaos schedules generate jitter bounded by horizon/32; at the
    /// CI horizon of 200 ms that is 6.25 ms. Tests pin that relationship
    /// so a schedule change that widens jitter breaks loudly here.
    const HORIZON: Vt = Vt::from_millis(200);
    const MAX_JITTER: Vt = Vt::from_nanos(HORIZON.as_nanos() / 32);
    const INTERVAL: Vt = Vt::from_millis(5);

    #[test]
    fn never_heard_is_alive() {
        let d = FailureDetector::new(Vt::from_millis(1));
        assert!(!d.is_dead(None, Vt::from_millis(1_000)));
    }

    #[test]
    fn no_false_positive_under_max_simnet_jitter() {
        // Beacons every INTERVAL, each delayed by an adversarial jitter
        // pattern within the simnet bound: alternating zero and maximum,
        // which produces the worst possible inter-arrival gap.
        let d = FailureDetector::tolerant(INTERVAL, 0, MAX_JITTER);
        let mut last_arrival = None;
        for i in 0..100u64 {
            let sent = Vt::from_nanos(i * INTERVAL.as_nanos());
            let jitter = if i % 2 == 0 { Vt::ZERO } else { MAX_JITTER };
            let arrival = sent + jitter;
            // Probe continuously up to this arrival: never dead.
            if let Some(prev) = last_arrival {
                assert!(
                    !d.is_dead(Some(prev), arrival),
                    "false positive at beacon {i}: gap {}",
                    arrival.saturating_sub(prev)
                );
            }
            last_arrival = Some(arrival);
        }
    }

    #[test]
    fn false_positive_when_budget_ignores_jitter() {
        // The same adversarial arrival pattern defeats a naive budget of
        // exactly one interval — demonstrating the floor is tight.
        let naive = FailureDetector::new(INTERVAL);
        let prev = INTERVAL; // beacon 1, zero jitter
        let next = INTERVAL + INTERVAL + MAX_JITTER; // beacon 2, max jitter
        assert!(naive.is_dead(Some(prev), next));
    }

    #[test]
    fn detects_real_crash_within_budget() {
        let d = FailureDetector::tolerant(INTERVAL, 2, MAX_JITTER);
        let last = Vt::from_millis(42);
        // Silence up to the budget: still alive (could be jitter+loss).
        assert!(!d.is_dead(Some(last), last + d.budget()));
        // One nanosecond past the budget: dead. Detection latency is
        // therefore at most budget + the prober's check period.
        assert!(d.is_dead(Some(last), last + d.budget() + Vt::from_nanos(1)));
    }

    #[test]
    fn tolerant_budget_covers_missed_beacons() {
        let d = FailureDetector::tolerant(INTERVAL, 2, MAX_JITTER);
        // Two consecutive beacons lost: the third arrives 3 intervals +
        // max jitter after the last heard one. Must not be declared dead.
        let last = Vt::from_millis(10);
        let third = last + INTERVAL.mul(3) + MAX_JITTER;
        assert!(!d.is_dead(Some(last), third));
    }
}
