//! RaTP wire format, version 1.
//!
//! Every frame carries exactly one packet:
//!
//! ```text
//! byte 0      ver | kind  high nibble: wire version (1); low nibble:
//!                          kind (1 = request fragment, 2 = reply
//!                          fragment, 3 = negative reply: service not
//!                          found, 4 = one-way notify, 5 = liveness
//!                          heartbeat)
//! bytes 1..3  port        destination service (requests) / 0 (replies)
//! bytes 3..11 txn         transaction id (client node id << 32 | counter)
//! bytes 11..13 frag_index fragment number, 0-based
//! bytes 13..15 frag_count total fragments in the message
//! byte 15     flags       bit 0: span-context extension present
//! bytes 16..20 checksum   FNV-1a over the whole packet (checksum field
//!                          zeroed), extensions and payload included;
//!                          corrupted frames fail [`Packet::decode`] and
//!                          are re-covered by retransmission
//! bytes 20..44 span ctx   (flag bit 0 only) trace_id, span_id,
//!                          parent_id — the sender's causal identity,
//!                          re-installed by the receiving handler
//! bytes 20/44.. payload   fragment payload
//! ```
//!
//! Version-0 peers (no version nibble) see kind bytes `0x11`–`0x14` and
//! reject them as unknown kinds; version-1 decode likewise rejects the
//! version-0 byte range — a clean mutual refusal rather than a
//! misparse.

use bytes::{Bytes, BytesMut};
use clouds_obs::SpanContext;
use clouds_simnet::MTU;

/// Wire format version carried in the high nibble of byte 0.
pub const WIRE_VERSION: u8 = 1;

/// Bytes of fixed RaTP header per fragment (excludes extensions).
pub const HEADER_LEN: usize = 20;

/// Bytes of the optional span-context extension.
pub const CTX_LEN: usize = 24;

/// Byte offset of the flags field within the header.
const FLAGS_OFFSET: usize = 15;

/// Byte offset of the checksum field within the header.
const CHECKSUM_OFFSET: usize = 16;

/// Flags bit 0: the span-context extension follows the header.
const FLAG_CTX: u8 = 0x01;

/// FNV-1a, 32-bit, over a packet image with the checksum field zeroed.
fn checksum(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for part in parts {
        for &b in *part {
            h = (h ^ b as u32).wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Maximum payload bytes carried by one fragment. Reserved assuming the
/// context extension is present, so fragmentation geometry — and with
/// it message framing and virtual-time cost — is independent of whether
/// a message happens to be traced.
pub const MAX_FRAGMENT_PAYLOAD: usize = MTU - HEADER_LEN - CTX_LEN;

/// Packet type discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PacketKind {
    /// Fragment of a client request.
    Request = 1,
    /// Fragment of a server reply.
    Reply = 2,
    /// Negative reply: no service is registered on the requested port.
    NoService = 3,
    /// Fragment of a one-way notification: delivered to the service but
    /// never answered. Acks use this so a fire-and-forget message costs
    /// exactly its own transmission — a `Request` would make the
    /// receiver synthesize, send and bill a reply nobody is waiting for.
    Notify = 4,
    /// Liveness beacon between data servers: a single unfragmented
    /// packet whose payload is the sender's virtual clock (8 bytes,
    /// little-endian). Handled inside the receive loop — no service, no
    /// handler thread, no reply — so a heartbeat costs exactly one
    /// packet and cannot be delayed by a busy dispatcher.
    Heartbeat = 5,
}

impl PacketKind {
    fn from_u8(v: u8) -> Option<PacketKind> {
        match v {
            1 => Some(PacketKind::Request),
            2 => Some(PacketKind::Reply),
            3 => Some(PacketKind::NoService),
            4 => Some(PacketKind::Notify),
            5 => Some(PacketKind::Heartbeat),
            _ => None,
        }
    }
}

/// One RaTP packet (a single fragment of a message transaction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Packet type.
    pub kind: PacketKind,
    /// Destination service port (meaningful for requests).
    pub port: u16,
    /// Transaction identifier, unique per originating client.
    pub txn: u64,
    /// This fragment's index, `0..frag_count`.
    pub frag_index: u16,
    /// Total number of fragments in the message.
    pub frag_count: u16,
    /// Causal context of the sending span ([`SpanContext::NONE`] when
    /// untraced; carried on the wire only when present).
    pub ctx: SpanContext,
    /// Fragment payload.
    pub payload: Bytes,
}

impl Packet {
    /// Serialize to wire bytes.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_FRAGMENT_PAYLOAD`]; fragments
    /// are produced by the crate's fragmentation, which respects the limit.
    pub fn encode(&self) -> Bytes {
        assert!(self.payload.len() <= MAX_FRAGMENT_PAYLOAD);
        let traced = self.ctx.is_some();
        let mut buf = BytesMut::with_capacity(HEADER_LEN + CTX_LEN + self.payload.len());
        buf.extend_from_slice(&[(WIRE_VERSION << 4) | self.kind as u8]);
        buf.extend_from_slice(&self.port.to_le_bytes());
        buf.extend_from_slice(&self.txn.to_le_bytes());
        buf.extend_from_slice(&self.frag_index.to_le_bytes());
        buf.extend_from_slice(&self.frag_count.to_le_bytes());
        buf.extend_from_slice(&[if traced { FLAG_CTX } else { 0 }]);
        buf.extend_from_slice(&[0u8; 4]); // checksum placeholder
        if traced {
            buf.extend_from_slice(&self.ctx.trace_id.to_le_bytes());
            buf.extend_from_slice(&self.ctx.span_id.to_le_bytes());
            buf.extend_from_slice(&self.ctx.parent_id.to_le_bytes());
        }
        buf.extend_from_slice(&self.payload);
        let sum = checksum(&[&buf]);
        buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&sum.to_le_bytes());
        buf.freeze()
    }

    /// Parse from wire bytes; `None` on malformed, corrupted or
    /// version-mismatched input.
    pub fn decode(mut raw: Bytes) -> Option<Packet> {
        if raw.len() < HEADER_LEN {
            return None;
        }
        let stored = u32::from_le_bytes(
            raw[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].try_into().ok()?,
        );
        let computed = checksum(&[&raw[..CHECKSUM_OFFSET], &[0u8; 4], &raw[CHECKSUM_OFFSET + 4..]]);
        if stored != computed {
            return None; // bit rot in transit; the sender will retransmit
        }
        if raw[0] >> 4 != WIRE_VERSION {
            return None; // other wire versions refused, not misparsed
        }
        let header = raw.split_to(HEADER_LEN);
        let kind = PacketKind::from_u8(header[0] & 0x0F)?;
        let port = u16::from_le_bytes([header[1], header[2]]);
        let txn = u64::from_le_bytes(header[3..11].try_into().ok()?);
        let frag_index = u16::from_le_bytes([header[11], header[12]]);
        let frag_count = u16::from_le_bytes([header[13], header[14]]);
        let flags = header[FLAGS_OFFSET];
        if frag_count == 0 || frag_index >= frag_count {
            return None;
        }
        if flags & !FLAG_CTX != 0 {
            return None; // unknown extension bits
        }
        let ctx = if flags & FLAG_CTX != 0 {
            if raw.len() < CTX_LEN {
                return None;
            }
            let ext = raw.split_to(CTX_LEN);
            let ctx = SpanContext {
                trace_id: u64::from_le_bytes(ext[0..8].try_into().ok()?),
                span_id: u64::from_le_bytes(ext[8..16].try_into().ok()?),
                parent_id: u64::from_le_bytes(ext[16..24].try_into().ok()?),
            };
            if !ctx.is_some() {
                return None; // flagged extension must carry a real trace
            }
            ctx
        } else {
            SpanContext::NONE
        };
        Some(Packet {
            kind,
            port,
            txn,
            frag_index,
            frag_count,
            ctx,
            payload: raw,
        })
    }
}

/// Split a message into fragments ready for transmission, each carrying
/// `ctx` (every fragment repeats it so reassembly order cannot lose the
/// trace).
///
/// An empty message still produces one (empty) fragment so the receiver
/// learns about the transaction.
///
/// # Panics
///
/// Panics if the message would need more than `u16::MAX` fragments
/// (≈95 MB), far beyond any Clouds transfer.
pub fn fragment(
    kind: PacketKind,
    port: u16,
    txn: u64,
    message: Bytes,
    ctx: SpanContext,
) -> Vec<Packet> {
    let frag_count = message.len().div_ceil(MAX_FRAGMENT_PAYLOAD).max(1);
    assert!(frag_count <= u16::MAX as usize, "message too large for RaTP");
    let mut out = Vec::with_capacity(frag_count);
    for i in 0..frag_count {
        let start = i * MAX_FRAGMENT_PAYLOAD;
        let end = ((i + 1) * MAX_FRAGMENT_PAYLOAD).min(message.len());
        out.push(Packet {
            kind,
            port,
            txn,
            frag_index: i as u16,
            frag_count: frag_count as u16,
            ctx,
            payload: message.slice(start..end),
        });
    }
    out
}

/// Reassembly buffer for one in-flight message.
#[derive(Debug)]
pub struct Reassembly {
    frag_count: u16,
    received: Vec<Option<Bytes>>,
    have: u16,
}

impl Reassembly {
    /// Fresh buffer expecting `frag_count` fragments.
    pub fn new(frag_count: u16) -> Reassembly {
        Reassembly {
            frag_count,
            received: vec![None; frag_count as usize],
            have: 0,
        }
    }

    /// Insert a fragment; returns the full message when complete.
    /// Duplicate or inconsistent fragments are ignored.
    pub fn insert(&mut self, pkt: Packet) -> Option<Bytes> {
        if pkt.frag_count != self.frag_count
            || pkt.frag_index >= self.frag_count
            || self.received.is_empty()
        {
            // Inconsistent fragment, or a duplicate arriving after the
            // message already completed and the buffer was drained.
            return None;
        }
        // Single-fragment fast path: the fragment's payload *is* the
        // message — hand the arrival buffer through without re-copying
        // (an 8 KB page grant rides one fragment end to end). Draining
        // the slot vector keeps the duplicate-after-completion guard
        // above working.
        if self.frag_count == 1 {
            self.received.clear();
            self.have = 1;
            return Some(pkt.payload);
        }
        let slot = &mut self.received[pkt.frag_index as usize];
        if slot.is_none() {
            *slot = Some(pkt.payload);
            self.have += 1;
        }
        if self.have == self.frag_count {
            let total: usize = self
                .received
                .iter()
                .map(|p| p.as_ref().map_or(0, Bytes::len))
                .sum();
            let mut whole = BytesMut::with_capacity(total);
            for piece in self.received.drain(..) {
                whole.extend_from_slice(&piece.expect("all fragments present"));
            }
            Some(whole.freeze())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: SpanContext = SpanContext {
        trace_id: 0x1111_2222_3333_4444,
        span_id: 0x5555_6666_7777_8888,
        parent_id: 0x9999_AAAA_BBBB_CCCC,
    };

    #[test]
    fn encode_decode_roundtrip() {
        let p = Packet {
            kind: PacketKind::Request,
            port: 42,
            txn: 0xDEADBEEF,
            frag_index: 2,
            frag_count: 5,
            ctx: SpanContext::NONE,
            payload: Bytes::from_static(b"chunk"),
        };
        let decoded = Packet::decode(p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn encode_decode_roundtrip_with_span_context() {
        let p = Packet {
            kind: PacketKind::Request,
            port: 42,
            txn: 0xDEADBEEF,
            frag_index: 2,
            frag_count: 5,
            ctx: CTX,
            payload: Bytes::from_static(b"chunk"),
        };
        let wire = p.encode();
        assert_eq!(wire.len(), HEADER_LEN + CTX_LEN + 5);
        let decoded = Packet::decode(wire).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn heartbeat_roundtrip() {
        let p = Packet {
            kind: PacketKind::Heartbeat,
            port: 0,
            txn: 0,
            frag_index: 0,
            frag_count: 1,
            ctx: SpanContext::NONE,
            payload: Bytes::copy_from_slice(&42u64.to_le_bytes()),
        };
        let decoded = Packet::decode(p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Packet::decode(Bytes::from_static(b"short")).is_none());
        // Bad kind byte.
        let mut raw = vec![9u8; HEADER_LEN];
        raw[13] = 1; // frag_count = 1
        assert!(Packet::decode(Bytes::from(raw)).is_none());
        // frag_count == 0.
        let p = Packet {
            kind: PacketKind::Reply,
            port: 0,
            txn: 1,
            frag_index: 0,
            frag_count: 1,
            ctx: SpanContext::NONE,
            payload: Bytes::new(),
        };
        let mut raw = p.encode().to_vec();
        raw[13] = 0;
        raw[14] = 0;
        assert!(Packet::decode(Bytes::from(raw)).is_none());
    }

    /// Rewrite byte 0 and repair the checksum, isolating the version /
    /// flags checks from corruption detection.
    fn with_patched_byte(wire: &[u8], offset: usize, value: u8) -> Bytes {
        let mut raw = wire.to_vec();
        raw[offset] = value;
        raw[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&[0; 4]);
        let sum = checksum(&[&raw]);
        raw[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&sum.to_le_bytes());
        Bytes::from(raw)
    }

    #[test]
    fn decode_rejects_other_wire_versions() {
        let p = Packet {
            kind: PacketKind::Request,
            port: 1,
            txn: 2,
            frag_index: 0,
            frag_count: 1,
            ctx: SpanContext::NONE,
            payload: Bytes::from_static(b"x"),
        };
        let wire = p.encode();
        assert_eq!(wire[0] >> 4, WIRE_VERSION);
        // A version-0 peer's kind byte (no version nibble).
        assert!(Packet::decode(with_patched_byte(&wire, 0, PacketKind::Request as u8)).is_none());
        // A hypothetical version-2 peer.
        assert!(Packet::decode(with_patched_byte(&wire, 0, (2 << 4) | 1)).is_none());
    }

    #[test]
    fn decode_rejects_unknown_flags_and_truncated_ctx() {
        let p = Packet {
            kind: PacketKind::Request,
            port: 1,
            txn: 2,
            frag_index: 0,
            frag_count: 1,
            ctx: SpanContext::NONE,
            payload: Bytes::new(),
        };
        let wire = p.encode();
        // Unknown extension bit.
        assert!(Packet::decode(with_patched_byte(&wire, FLAGS_OFFSET, 0x02)).is_none());
        // Context flag set but no context bytes follow (empty payload,
        // so the frame is exactly HEADER_LEN).
        assert!(Packet::decode(with_patched_byte(&wire, FLAGS_OFFSET, FLAG_CTX)).is_none());
    }

    #[test]
    fn decode_rejects_any_single_bit_flip() {
        let p = Packet {
            kind: PacketKind::Request,
            port: 7,
            txn: 0x0123_4567_89AB_CDEF,
            frag_index: 0,
            frag_count: 1,
            ctx: CTX,
            payload: Bytes::from_static(b"payload under test"),
        };
        let wire = p.encode();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut damaged = wire.to_vec();
                damaged[byte] ^= 1 << bit;
                assert!(
                    Packet::decode(Bytes::from(damaged)).is_none(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn checksum_covers_payload_not_just_header() {
        let a = Packet {
            kind: PacketKind::Reply,
            port: 0,
            txn: 3,
            frag_index: 0,
            frag_count: 1,
            ctx: SpanContext::NONE,
            payload: Bytes::from_static(b"aaaa"),
        };
        let mut raw = a.encode().to_vec();
        // Swap the payload wholesale while keeping the header: must fail.
        raw[HEADER_LEN..].copy_from_slice(b"bbbb");
        assert!(Packet::decode(Bytes::from(raw)).is_none());
    }

    #[test]
    fn fragment_empty_message() {
        let frags = fragment(PacketKind::Request, 1, 7, Bytes::new(), SpanContext::NONE);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].frag_count, 1);
        assert!(frags[0].payload.is_empty());
    }

    #[test]
    fn fragment_and_reassemble_out_of_order() {
        let msg: Vec<u8> = (0..(3 * MAX_FRAGMENT_PAYLOAD + 17))
            .map(|i| (i % 256) as u8)
            .collect();
        let mut frags = fragment(PacketKind::Reply, 0, 9, Bytes::from(msg.clone()), CTX);
        assert_eq!(frags.len(), 4);
        for f in &frags {
            assert_eq!(f.ctx, CTX, "every fragment repeats the context");
        }
        frags.reverse();
        let mut re = Reassembly::new(4);
        let mut result = None;
        for f in frags {
            result = re.insert(f);
        }
        assert_eq!(&result.unwrap()[..], &msg[..]);
    }

    #[test]
    fn reassembly_ignores_duplicates() {
        let msg = Bytes::from(vec![1u8; 2 * MAX_FRAGMENT_PAYLOAD]);
        let frags = fragment(PacketKind::Reply, 0, 9, msg.clone(), SpanContext::NONE);
        let mut re = Reassembly::new(2);
        assert!(re.insert(frags[0].clone()).is_none());
        assert!(re.insert(frags[0].clone()).is_none()); // dup
        let whole = re.insert(frags[1].clone()).unwrap();
        assert_eq!(whole.len(), msg.len());
    }

    #[test]
    fn reassembly_ignores_duplicate_after_completion() {
        let msg = Bytes::from_static(b"done");
        let frags = fragment(PacketKind::Reply, 0, 9, msg, SpanContext::NONE);
        let mut re = Reassembly::new(1);
        assert!(re.insert(frags[0].clone()).is_some());
        // A straggling duplicate must be ignored, not panic.
        assert!(re.insert(frags[0].clone()).is_none());
    }

    #[test]
    fn fragments_respect_mtu() {
        let msg = Bytes::from(vec![0u8; 50_000]);
        for f in fragment(PacketKind::Request, 3, 11, msg, CTX) {
            assert!(f.encode().len() <= MTU);
        }
    }
}
