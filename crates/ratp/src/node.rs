//! Per-node RaTP state machine: client calls, server dispatch,
//! retransmission and duplicate suppression.

use crate::packet::{fragment, Packet, PacketKind, Reassembly};
use bytes::Bytes;
use clouds_obs::{current_ctx, install_ctx, Counter, Histogram, NodeObs, SpanContext};
use clouds_simnet::{Endpoint, NodeId, RecvError, SendError, VirtualClock, Vt};
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Configuration knobs for a RaTP node.
#[derive(Debug, Clone)]
pub struct RatpConfig {
    /// Initial real-time interval between request retransmissions. The
    /// wait doubles after each silent attempt (capped at 8×) so a dead or
    /// partitioned peer is probed ever more gently.
    pub retry_interval: Duration,
    /// Retransmission budget for [`RatpNode::call`], expressed in units of
    /// `retry_interval`: a call waits at most `(max_retries + 1) ×
    /// retry_interval` of wall-clock time before giving up, however the
    /// backoff spreads the attempts.
    pub max_retries: u32,
    /// Number of answered transactions remembered for duplicate
    /// suppression / reply replay.
    pub dup_cache_size: usize,
}

impl Default for RatpConfig {
    fn default() -> Self {
        RatpConfig {
            retry_interval: Duration::from_millis(15),
            max_retries: 400,
            dup_cache_size: 1024,
        }
    }
}

/// A fully reassembled request handed to a [`Service`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Node that originated the transaction.
    pub src: NodeId,
    /// Request message bytes.
    pub payload: Bytes,
}

/// A server-side message handler bound to a port.
///
/// Handlers run on their own thread and may block — including calling
/// other nodes through the same [`RatpNode`] — without deadlocking the
/// receive loop. Closures `Fn(Request) -> Bytes + Send + Sync` implement
/// this trait automatically.
pub trait Service: Send + Sync + 'static {
    /// Process one request and produce the reply message.
    fn handle(&self, request: Request) -> Bytes;
}

impl<F> Service for F
where
    F: Fn(Request) -> Bytes + Send + Sync + 'static,
{
    fn handle(&self, request: Request) -> Bytes {
        self(request)
    }
}

/// Errors returned by [`RatpNode::call`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CallError {
    /// No reply within the retransmission budget (destination dead,
    /// partitioned, or persistently lossy link).
    TimedOut,
    /// The destination answered but has no service on that port.
    ServiceNotFound(u16),
    /// The local node could not transmit.
    Send(SendError),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::TimedOut => write!(f, "transaction timed out"),
            CallError::ServiceNotFound(p) => write!(f, "no service on port {p}"),
            CallError::Send(e) => write!(f, "send failed: {e}"),
        }
    }
}

impl std::error::Error for CallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CallError::Send(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SendError> for CallError {
    fn from(e: SendError) -> Self {
        CallError::Send(e)
    }
}

struct Pending {
    reply_tx: Sender<Result<Bytes, CallError>>,
    reassembly: Option<Reassembly>,
}

#[derive(Default)]
struct ServerState {
    /// Partially reassembled incoming requests.
    inflight: HashMap<(NodeId, u64), Reassembly>,
    /// Transactions whose handler is currently running.
    executing: HashSet<(NodeId, u64)>,
    /// Answered transactions: encoded reply frames for replay.
    replied: HashMap<(NodeId, u64), Arc<Vec<Bytes>>>,
    /// Eviction order for `replied`.
    replied_order: VecDeque<(NodeId, u64)>,
}

/// A node's RaTP protocol instance.
///
/// Owns the [`Endpoint`] and a background receive thread; exposes the
/// client side ([`RatpNode::call`]) and the server side
/// ([`RatpNode::register_service`]). See the crate docs for an example.
pub struct RatpNode {
    endpoint: Arc<Endpoint>,
    config: RatpConfig,
    services: RwLock<HashMap<u16, Arc<dyn Service>>>,
    pending: Mutex<HashMap<u64, Pending>>,
    server: Mutex<ServerState>,
    /// Last local virtual time a liveness beacon arrived from each peer.
    /// A `BTreeMap` so iteration (debug dumps, detectors sweeping all
    /// peers) is deterministic.
    heartbeats: Mutex<BTreeMap<NodeId, Vt>>,
    txn_counter: AtomicU64,
    running: AtomicBool,
    obs: Arc<NodeObs>,
    metrics: RatpMetrics,
}

/// Registry-backed transport counters, cached at spawn so the hot path
/// never resolves by name.
struct RatpMetrics {
    calls: Arc<Counter>,
    retransmits: Arc<Counter>,
    timeouts: Arc<Counter>,
    replies: Arc<Counter>,
    replays: Arc<Counter>,
    notifies: Arc<Counter>,
    heartbeats_sent: Arc<Counter>,
    heartbeats_received: Arc<Counter>,
    rtt: Arc<Histogram>,
}

impl RatpMetrics {
    fn new(obs: &NodeObs) -> RatpMetrics {
        RatpMetrics {
            calls: obs.counter("ratp.calls"),
            retransmits: obs.counter("ratp.retransmits"),
            timeouts: obs.counter("ratp.timeouts"),
            replies: obs.counter("ratp.replies"),
            replays: obs.counter("ratp.reply_replays"),
            notifies: obs.counter("ratp.notifies"),
            heartbeats_sent: obs.counter("ratp.heartbeats_sent"),
            heartbeats_received: obs.counter("ratp.heartbeats_received"),
            rtt: obs.histogram("ratp.call"),
        }
    }
}

impl fmt::Debug for RatpNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RatpNode")
            .field("node", &self.endpoint.id())
            .field("services", &self.services.read().len())
            .finish()
    }
}

impl RatpNode {
    /// Attach RaTP to an endpoint and start its receive loop, with a
    /// standalone observability handle (private registry and sink).
    pub fn spawn(endpoint: Endpoint, config: RatpConfig) -> Arc<RatpNode> {
        let obs = NodeObs::solo(endpoint.id().0 as u64, Arc::clone(endpoint.clock()));
        RatpNode::spawn_with_obs(endpoint, config, obs)
    }

    /// [`RatpNode::spawn`] with an explicit [`NodeObs`] — cluster
    /// assembly passes a handle whose [`clouds_obs::TraceSink`] is
    /// shared by every node so traces interleave on one timeline.
    pub fn spawn_with_obs(
        endpoint: Endpoint,
        config: RatpConfig,
        obs: Arc<NodeObs>,
    ) -> Arc<RatpNode> {
        let metrics = RatpMetrics::new(&obs);
        let node = Arc::new(RatpNode {
            endpoint: Arc::new(endpoint),
            config,
            services: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            server: Mutex::new(ServerState::default()),
            heartbeats: Mutex::new(BTreeMap::new()),
            txn_counter: AtomicU64::new(1),
            running: AtomicBool::new(true),
            obs,
            metrics,
        });
        let weak: Weak<RatpNode> = Arc::downgrade(&node);
        std::thread::Builder::new()
            .name(format!("ratp-{}", node.endpoint.id()))
            .spawn(move || receive_loop(weak))
            .expect("spawn ratp receive thread");
        node
    }

    /// This node's network id.
    pub fn node_id(&self) -> NodeId {
        self.endpoint.id()
    }

    /// This node's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        self.endpoint.clock()
    }

    /// This node's observability handle. Layers built on top of a
    /// `RatpNode` (DSM, consistency, PET, invocation) reach their
    /// metrics registry and trace sink through it.
    pub fn obs(&self) -> &Arc<NodeObs> {
        &self.obs
    }

    /// Bind `service` to `port`, replacing any previous binding.
    pub fn register_service<S: Service>(&self, port: u16, service: S) {
        self.services.write().insert(port, Arc::new(service));
    }

    /// Remove the binding on `port`.
    pub fn unregister_service(&self, port: u16) {
        self.services.write().remove(&port);
    }

    /// Discard all volatile protocol state (used when the owning node
    /// crash-restarts: a rebooted machine has no reassembly buffers or
    /// duplicate-suppression memory).
    pub fn reset_volatile_state(&self) {
        self.pending.lock().clear();
        *self.server.lock() = ServerState::default();
        self.heartbeats.lock().clear();
    }

    /// Stop the receive loop. Further calls will time out.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::Release);
    }

    /// Execute one message transaction with the configured retry budget.
    ///
    /// Blocks the calling thread until the reply arrives or the budget is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// [`CallError::TimedOut`] when no reply arrives,
    /// [`CallError::ServiceNotFound`] when the server has no handler on
    /// `port`, [`CallError::Send`] if the local node cannot transmit
    /// (e.g. it is crashed).
    pub fn call(self: &Arc<Self>, dst: NodeId, port: u16, payload: Bytes) -> Result<Bytes, CallError> {
        self.call_with_budget(dst, port, payload, self.config.max_retries)
    }

    /// Fire-and-forget message: transmit the request once and do not
    /// wait for (or deliver) any reply. Used for acknowledgements where
    /// loss is tolerable because the receiver has a timeout fallback.
    pub fn notify(&self, dst: NodeId, port: u16, payload: Bytes) {
        self.metrics.notifies.inc();
        let txn = self.next_txn();
        // A notify opens no span of its own; it forwards the ambient
        // context so the receiver's handler attaches to the sender's
        // current span.
        let ctx = current_ctx().unwrap_or(SpanContext::NONE);
        for packet in fragment(PacketKind::Notify, port, txn, payload, ctx) {
            self.endpoint.clock().charge(self.cost().transport_packet);
            let _ = self.endpoint.send(dst, packet.encode());
        }
    }

    /// Transmit one liveness beacon to `dst`: a single
    /// [`PacketKind::Heartbeat`] packet stamped with this node's current
    /// virtual time. Fire-and-forget — loss is tolerable because beacons
    /// repeat and the failure detector budgets for gaps.
    pub fn send_heartbeat(&self, dst: NodeId) {
        self.metrics.heartbeats_sent.inc();
        let now = self.endpoint.clock().now();
        let pkt = Packet {
            kind: PacketKind::Heartbeat,
            port: 0,
            txn: 0,
            frag_index: 0,
            frag_count: 1,
            ctx: SpanContext::NONE,
            payload: Bytes::copy_from_slice(&now.as_nanos().to_le_bytes()),
        };
        self.endpoint.clock().charge(self.cost().transport_packet);
        let _ = self.endpoint.send(dst, pkt.encode());
    }

    /// Local virtual time at which the most recent heartbeat from `peer`
    /// arrived, or `None` if none has (since boot or the last
    /// [`RatpNode::reset_volatile_state`]).
    pub fn last_heartbeat(&self, peer: NodeId) -> Option<Vt> {
        self.heartbeats.lock().get(&peer).copied()
    }

    /// [`RatpNode::call`] with an explicit retransmission budget.
    ///
    /// # Errors
    ///
    /// As for [`RatpNode::call`].
    pub fn call_with_budget(
        self: &Arc<Self>,
        dst: NodeId,
        port: u16,
        payload: Bytes,
        max_retries: u32,
    ) -> Result<Bytes, CallError> {
        self.metrics.calls.inc();
        // The call span is a child of whatever span is running on this
        // thread; its context rides in every request fragment so the
        // remote handler's spans become its children in turn. The
        // discriminator is (dst, port) — not txn, whose allocation
        // order is thread-interleaving-dependent.
        let mut span = self
            .obs
            .traced_span("ratp", "call", &format!("dst={} port={}", dst.0, port))
            .with_histogram(Arc::clone(&self.metrics.rtt));
        let txn = self.next_txn();
        let (reply_tx, reply_rx) = bounded(1);
        self.pending.lock().insert(
            txn,
            Pending {
                reply_tx,
                reassembly: None,
            },
        );
        let frames: Vec<Bytes> = fragment(PacketKind::Request, port, txn, payload, span.ctx())
            .into_iter()
            .map(|p| p.encode())
            .collect();

        let result = (|| {
            // Bounded exponential backoff: `remaining` is the wall-clock
            // budget in units of `retry_interval`, and each silent attempt
            // doubles the next wait (capped at 8×). The total time before
            // giving up stays (max_retries + 1) × retry_interval.
            let mut remaining = max_retries as u64 + 1;
            let mut backoff: u64 = 1;
            let mut first_attempt = true;
            while remaining > 0 {
                if !first_attempt {
                    // Wall-clock-triggered, so retransmit events only
                    // appear under loss/partition faults or load.
                    self.metrics.retransmits.inc();
                    self.obs.instant(
                        "ratp",
                        "retransmit",
                        format!("dst={} port={}", dst.0, port),
                    );
                }
                first_attempt = false;
                for frame in &frames {
                    // Transport-layer processing cost per transmitted packet.
                    self.endpoint
                        .clock()
                        .charge(self.cost().transport_packet);
                    self.endpoint.send(dst, frame.clone())?;
                }
                let units = backoff.min(remaining);
                let wait = self.config.retry_interval * units as u32;
                if let Ok(outcome) = reply_rx.recv_timeout(wait) {
                    return outcome;
                }
                remaining -= units;
                backoff = (backoff * 2).min(8);
            }
            Err(CallError::TimedOut)
        })();
        self.pending.lock().remove(&txn);
        if matches!(result, Err(CallError::TimedOut)) {
            self.metrics.timeouts.inc();
        }
        span.set_args(format!(
            "dst={} port={} ok={}",
            dst.0,
            port,
            result.is_ok()
        ));
        span.finish();
        result
    }

    fn cost(&self) -> &clouds_simnet::CostModel {
        self.endpoint.cost_model()
    }

    fn next_txn(&self) -> u64 {
        let counter = self.txn_counter.fetch_add(1, Ordering::Relaxed);
        ((self.endpoint.id().0 as u64) << 32) | (counter & 0xFFFF_FFFF)
    }
}

fn receive_loop(weak: Weak<RatpNode>) {
    loop {
        let Some(node) = weak.upgrade() else { break };
        if !node.running.load(Ordering::Acquire) {
            break;
        }
        match node.endpoint.recv_timeout(Duration::from_millis(25)) {
            Ok(frame) => {
                let src = frame.src;
                if let Some(pkt) = Packet::decode(frame.payload) {
                    node.endpoint.clock().charge(node.cost().transport_packet);
                    // Any inbound traffic is liveness evidence, not just
                    // dedicated beacons: a peer that crashes right after
                    // a burst of requests (before its monitor's first
                    // beacon tick) must still leave a "last alive" stamp
                    // behind, or the failure detector — which treats
                    // never-heard peers as alive — could never declare
                    // it dead.
                    if matches!(
                        pkt.kind,
                        PacketKind::Request | PacketKind::Notify | PacketKind::Heartbeat
                    ) {
                        let heard = node.endpoint.clock().now();
                        node.heartbeats.lock().insert(src, heard);
                    }
                    match pkt.kind {
                        PacketKind::Request => handle_request_fragment(&node, src, pkt),
                        PacketKind::Notify => handle_notify_fragment(&node, src, pkt),
                        PacketKind::Heartbeat => handle_heartbeat(&node, src, pkt),
                        PacketKind::Reply | PacketKind::NoService => {
                            handle_reply_fragment(&node, pkt)
                        }
                    }
                }
            }
            Err(RecvError::Timeout) => {}
            Err(RecvError::Crashed) => std::thread::sleep(Duration::from_millis(5)),
            Err(RecvError::Disconnected) => break,
            Err(_) => {}
        }
    }
}

fn handle_request_fragment(node: &Arc<RatpNode>, src: NodeId, pkt: Packet) {
    let key = (src, pkt.txn);
    let port = pkt.port;
    let ctx = pkt.ctx;
    let complete = {
        let mut server = node.server.lock();
        if let Some(reply_frames) = server.replied.get(&key) {
            // Already answered: replay the cached reply.
            let frames = Arc::clone(reply_frames);
            drop(server);
            node.metrics.replays.inc();
            for frame in frames.iter() {
                node.endpoint.clock().charge(node.cost().transport_packet);
                let _ = node.endpoint.send(src, frame.clone());
            }
            return;
        }
        if server.executing.contains(&key) {
            return; // handler still running; client will see the reply soon
        }
        let reassembly = server
            .inflight
            .entry(key)
            .or_insert_with(|| Reassembly::new(pkt.frag_count));
        let complete = reassembly.insert(pkt);
        if complete.is_some() {
            server.inflight.remove(&key);
            server.executing.insert(key);
        }
        complete
    };
    let Some(message) = complete else { return };

    let service = node.services.read().get(&port).cloned();
    match service {
        None => {
            let frames = encode_reply(PacketKind::NoService, port, key.1, Bytes::new());
            finish_transaction(node, key, frames);
        }
        Some(service) => {
            // Run the handler on its own thread so it may block (e.g. the
            // DSM server forwarding a page request to another node). The
            // wire context (the remote caller's span) is installed for
            // the handler's lifetime, so every span the service opens —
            // and every nested RaTP call it makes — carries the caller
            // as its causal parent.
            let node = Arc::clone(node);
            std::thread::Builder::new()
                .name(format!("ratp-handler-{}-p{port}", node.endpoint.id()))
                .spawn(move || {
                    let _trace = ctx.is_some().then(|| install_ctx(ctx));
                    let reply = service.handle(Request {
                        src,
                        payload: message,
                    });
                    let frames = encode_reply(PacketKind::Reply, 0, key.1, reply);
                    finish_transaction(&node, key, frames);
                })
                .expect("spawn ratp handler thread");
        }
    }
}

/// Deliver a one-way notification: reassemble, hand the message to the
/// service, produce nothing. No duplicate cache, no `executing` entry,
/// no reply — the sender transmitted once and is not listening.
fn handle_notify_fragment(node: &Arc<RatpNode>, src: NodeId, pkt: Packet) {
    let key = (src, pkt.txn);
    let port = pkt.port;
    let ctx = pkt.ctx;
    let complete = {
        let mut server = node.server.lock();
        let reassembly = server
            .inflight
            .entry(key)
            .or_insert_with(|| Reassembly::new(pkt.frag_count));
        let complete = reassembly.insert(pkt);
        if complete.is_some() {
            server.inflight.remove(&key);
        }
        complete
    };
    let Some(message) = complete else { return };
    let Some(service) = node.services.read().get(&port).cloned() else {
        return;
    };
    let node = Arc::clone(node);
    std::thread::Builder::new()
        .name(format!("ratp-notify-{}-p{port}", node.endpoint.id()))
        .spawn(move || {
            let _trace = ctx.is_some().then(|| install_ctx(ctx));
            let _ = service.handle(Request {
                src,
                payload: message,
            });
            let _ = node; // keep the node alive while the handler runs
        })
        .expect("spawn ratp notify handler thread");
}

/// Count a liveness beacon. The "last alive" stamp itself is recorded
/// by the receive loop for every inbound packet (any traffic proves the
/// peer was up; the stamp is the *receiver's* local virtual time, which
/// message receipt already advanced to the frame's arrival time).
/// Handled inline (no thread, no reply): a beacon costs one packet end
/// to end.
fn handle_heartbeat(node: &Arc<RatpNode>, _src: NodeId, pkt: Packet) {
    if pkt.payload.len() != 8 {
        return; // malformed beacon: drop, the next one is coming anyway
    }
    node.metrics.heartbeats_received.inc();
}

fn encode_reply(kind: PacketKind, port: u16, txn: u64, reply: Bytes) -> Arc<Vec<Bytes>> {
    // Replies carry no context: the caller still holds its span open.
    Arc::new(
        fragment(kind, port, txn, reply, SpanContext::NONE)
            .into_iter()
            .map(|p| p.encode())
            .collect(),
    )
}

fn finish_transaction(node: &Arc<RatpNode>, key: (NodeId, u64), frames: Arc<Vec<Bytes>>) {
    node.metrics.replies.inc();
    {
        let mut server = node.server.lock();
        server.executing.remove(&key);
        server.replied.insert(key, Arc::clone(&frames));
        server.replied_order.push_back(key);
        while server.replied_order.len() > node.config.dup_cache_size {
            if let Some(old) = server.replied_order.pop_front() {
                server.replied.remove(&old);
            }
        }
    }
    for frame in frames.iter() {
        node.endpoint.clock().charge(node.cost().transport_packet);
        let _ = node.endpoint.send(key.0, frame.clone());
    }
}

fn handle_reply_fragment(node: &Arc<RatpNode>, pkt: Packet) {
    let mut pending = node.pending.lock();
    let Some(slot) = pending.get_mut(&pkt.txn) else {
        return; // stale reply for a finished call
    };
    // `reply_tx` is bounded(1): a duplicate completion (phantom reply,
    // re-sent final fragment) would make a blocking `send` wedge this
    // receive loop forever *while holding the pending lock*. `try_send`
    // delivers the first completion and drops the rest.
    if pkt.kind == PacketKind::NoService {
        let _ = slot
            .reply_tx
            .try_send(Err(CallError::ServiceNotFound(pkt.port)));
        pending.remove(&pkt.txn);
        return;
    }
    let reassembly = slot
        .reassembly
        .get_or_insert_with(|| Reassembly::new(pkt.frag_count));
    if let Some(message) = reassembly.insert(pkt) {
        let _ = slot.reply_tx.try_send(Ok(message));
    }
}
