//! Two-phase commit: participants on data servers, plus the durable
//! transaction-outcome registry.
//!
//! "The updated segments are written using a 2-phase commit mechanism
//! when the cp-thread completes" (§5.2.1). The coordinator is the
//! committing cp-thread itself; the participants are the data servers
//! that home the written segments.
//!
//! Crash behaviour:
//!
//! * The intent log ([`CommitLog`]) survives crashes (it is "on disk",
//!   like the segment store).
//! * A participant that restarts with *staged* (prepared, undecided)
//!   transactions consults the [`OutcomeRegistry`]: committed ⇒ install
//!   the staged pages; unknown ⇒ presumed abort.
//! * The coordinator records the commit decision durably in the registry
//!   *before* sending any `Commit`, so the decision is never lost.

use clouds::CloudsError;
use clouds_dsm::{ports, DsmServer};
use clouds_ra::SysName;
use clouds_ratp::{RatpNode, Request};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One page image to install at commit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageImage {
    /// Segment sysname.
    pub seg: SysName,
    /// Page index.
    pub page: u32,
    /// Full page contents.
    pub data: Vec<u8>,
}

/// Requests to a data server's commit participant ([`ports::COMMIT`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CommitRequest {
    /// Phase one: stage pages for `txn`.
    Prepare {
        /// Global transaction id.
        txn: u64,
        /// Pages to install on commit.
        pages: Vec<PageImage>,
    },
    /// Phase two: install staged pages.
    Commit {
        /// Global transaction id.
        txn: u64,
    },
    /// Phase two (failure): discard staged pages.
    Abort {
        /// Global transaction id.
        txn: u64,
    },
    /// Lightweight path (lcp): stage and install in one atomic local
    /// step — no cross-server atomicity.
    ApplyLocal {
        /// Global transaction id.
        txn: u64,
        /// Pages to install now.
        pages: Vec<PageImage>,
    },
    /// Record a commit decision (outcome registry, first data server).
    RecordOutcome {
        /// Global transaction id.
        txn: u64,
    },
    /// Query a commit decision (participant recovery).
    QueryOutcome {
        /// Global transaction id.
        txn: u64,
    },
}

/// Replies from the commit participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitReply {
    /// Prepare accepted / operation done.
    Ok,
    /// Prepare or apply refused (storage failure).
    Refused,
    /// Outcome query: the transaction committed.
    Committed,
    /// Outcome query: no commit record (presumed abort).
    Unknown,
}

/// Verdict recorded for a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Commit decision durably recorded.
    Committed,
    /// No record: presumed abort.
    Unknown,
}

#[derive(Debug, Clone)]
enum LogState {
    Staged(Vec<PageImage>),
}

/// The crash-surviving intent log of one participant.
#[derive(Debug, Clone, Default)]
struct CommitLog {
    entries: Arc<Mutex<BTreeMap<u64, LogState>>>,
}

/// The durable transaction-outcome table hosted on the first data
/// server. Cheap to clone; clones share state (it survives the node's
/// crash like a disk).
#[derive(Debug, Clone, Default)]
pub struct OutcomeRegistry {
    committed: Arc<Mutex<std::collections::BTreeSet<u64>>>,
}

impl OutcomeRegistry {
    /// An empty registry.
    pub fn new() -> OutcomeRegistry {
        OutcomeRegistry::default()
    }

    /// Durably record that `txn` committed.
    pub fn record(&self, txn: u64) {
        self.committed.lock().insert(txn);
    }

    /// Look up a transaction's outcome.
    pub fn outcome(&self, txn: u64) -> TxnOutcome {
        if self.committed.lock().contains(&txn) {
            TxnOutcome::Committed
        } else {
            TxnOutcome::Unknown
        }
    }
}

/// The commit participant service co-located with a [`DsmServer`].
pub struct CommitParticipant {
    dsm: Arc<DsmServer>,
    log: CommitLog,
    /// Outcome registry, when this participant hosts it.
    registry: Option<OutcomeRegistry>,
    /// Keeps the node's transport alive.
    _ratp: Mutex<Option<Arc<RatpNode>>>,
}

impl fmt::Debug for CommitParticipant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommitParticipant")
            .field("node", &self.dsm.node_id())
            .field("staged", &self.log.entries.lock().len())
            .field("hosts_registry", &self.registry.is_some())
            .finish()
    }
}

impl CommitParticipant {
    /// Install the participant on a data server; `registry` is `Some` on
    /// the data server hosting the outcome registry.
    pub fn install(
        ratp: &Arc<RatpNode>,
        dsm: Arc<DsmServer>,
        registry: Option<OutcomeRegistry>,
    ) -> Arc<CommitParticipant> {
        let participant = Arc::new(CommitParticipant {
            dsm,
            log: CommitLog::default(),
            registry,
            _ratp: Mutex::new(Some(Arc::clone(ratp))),
        });
        let handler = Arc::clone(&participant);
        ratp.register_service(ports::COMMIT, move |req: Request| {
            let reply = match clouds_codec::from_bytes::<CommitRequest>(&req.payload) {
                Ok(message) => handler.handle(message),
                Err(_) => CommitReply::Refused,
            };
            bytes::Bytes::from(clouds_codec::to_bytes(&reply).expect("encodes"))
        });
        participant
    }

    fn handle(&self, req: CommitRequest) -> CommitReply {
        match req {
            CommitRequest::Prepare { txn, pages } => {
                // Validate the pages are installable before voting yes.
                for page in &pages {
                    if self.dsm.store().get(page.seg).is_err() {
                        return CommitReply::Refused;
                    }
                }
                self.log
                    .entries
                    .lock()
                    .insert(txn, LogState::Staged(pages));
                CommitReply::Ok
            }
            CommitRequest::Commit { txn } => {
                let staged = self.log.entries.lock().remove(&txn);
                match staged {
                    Some(LogState::Staged(pages)) => self.install_pages(&pages),
                    // Duplicate commit (retransmission after apply).
                    None => CommitReply::Ok,
                }
            }
            CommitRequest::Abort { txn } => {
                self.log.entries.lock().remove(&txn);
                CommitReply::Ok
            }
            CommitRequest::ApplyLocal { txn: _, pages } => self.install_pages(&pages),
            CommitRequest::RecordOutcome { txn } => match &self.registry {
                Some(reg) => {
                    reg.record(txn);
                    CommitReply::Ok
                }
                None => CommitReply::Refused,
            },
            CommitRequest::QueryOutcome { txn } => match &self.registry {
                Some(reg) => match reg.outcome(txn) {
                    TxnOutcome::Committed => CommitReply::Committed,
                    TxnOutcome::Unknown => CommitReply::Unknown,
                },
                None => CommitReply::Refused,
            },
        }
    }

    fn install_pages(&self, pages: &[PageImage]) -> CommitReply {
        for page in pages {
            if self.dsm.commit_page(page.seg, page.page, &page.data).is_err() {
                return CommitReply::Refused;
            }
        }
        CommitReply::Ok
    }

    /// Number of staged (prepared, undecided) transactions.
    pub fn staged_count(&self) -> usize {
        self.log.entries.lock().len()
    }

    /// Crash-recovery: resolve staged transactions against the outcome
    /// registry (reached through `ratp` at `registry_node`). Committed
    /// transactions are installed; unknown ones are presumed aborted.
    ///
    /// Returns `(installed, aborted)` transaction counts.
    pub fn recover(
        &self,
        ratp: &Arc<RatpNode>,
        registry_node: clouds_simnet::NodeId,
    ) -> (usize, usize) {
        let staged: Vec<(u64, Vec<PageImage>)> = {
            let mut log = self.log.entries.lock();
            std::mem::take(&mut *log)
                .into_iter()
                .map(|(txn, LogState::Staged(pages))| (txn, pages))
                .collect()
        };
        let mut installed = 0;
        let mut aborted = 0;
        for (txn, pages) in staged {
            let verdict = if let Some(registry) = self.registry.as_ref() {
                // We host the registry: answer locally.
                match registry.outcome(txn) {
                    TxnOutcome::Committed => CommitReply::Committed,
                    TxnOutcome::Unknown => CommitReply::Unknown,
                }
            } else {
                let req = CommitRequest::QueryOutcome { txn };
                let payload =
                    bytes::Bytes::from(clouds_codec::to_bytes(&req).expect("encodes"));
                ratp.call(registry_node, ports::COMMIT, payload)
                    .ok()
                    .and_then(|b| clouds_codec::from_bytes(&b).ok())
                    .unwrap_or(CommitReply::Unknown)
            };
            if verdict == CommitReply::Committed {
                self.install_pages(&pages);
                installed += 1;
            } else {
                aborted += 1;
            }
        }
        (installed, aborted)
    }
}

/// Errors helper: map a refused reply into a [`CloudsError`].
pub(crate) fn refused(what: &str) -> CloudsError {
    CloudsError::ConsistencyAbort(format!("{what} refused by participant"))
}
