//! Two-phase commit: participants on data servers, plus the durable
//! transaction-outcome registry.
//!
//! "The updated segments are written using a 2-phase commit mechanism
//! when the cp-thread completes" (§5.2.1). The coordinator is the
//! committing cp-thread itself; the participants are the data servers
//! that home the written segments.
//!
//! Crash behaviour:
//!
//! * The in-memory staged-transaction table ([`CommitLog`]) and the
//!   outcome table ([`OutcomeRegistry`]) are *volatile*. Durability
//!   comes from the data server's append-only log (`clouds-store`):
//!   `Prepare` appends a `TxnIntent` record before voting yes,
//!   `Commit`/`Abort` append `TxnResolved`, and `RecordOutcome` appends
//!   `TxnOutcome` — so a participant that genuinely lost its memory
//!   reconstructs both tables from the log replay
//!   ([`CommitParticipant::resume_from_log`]).
//! * A participant that restarts with *staged* (prepared, undecided)
//!   transactions consults the [`OutcomeRegistry`]: committed ⇒ install
//!   the staged pages; unknown ⇒ presumed abort
//!   ([`CommitParticipant::recover`]).
//! * The coordinator records the commit decision durably in the registry
//!   *before* sending any `Commit`, so the decision is never lost.

use clouds::CloudsError;
use clouds_dsm::{ports, DsmServer};
use clouds_ra::SysName;
use clouds_store::{IntentPage, LogRecord};
use clouds_ratp::{RatpNode, Request};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One page image to install at commit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageImage {
    /// Segment sysname.
    pub seg: SysName,
    /// Page index.
    pub page: u32,
    /// Full page contents.
    pub data: Vec<u8>,
}

/// Requests to a data server's commit participant ([`ports::COMMIT`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CommitRequest {
    /// Phase one: stage pages for `txn`.
    Prepare {
        /// Global transaction id.
        txn: u64,
        /// Pages to install on commit.
        pages: Vec<PageImage>,
    },
    /// Phase two: install staged pages.
    Commit {
        /// Global transaction id.
        txn: u64,
    },
    /// Phase two (failure): discard staged pages.
    Abort {
        /// Global transaction id.
        txn: u64,
    },
    /// Lightweight path (lcp): stage and install in one atomic local
    /// step — no cross-server atomicity.
    ApplyLocal {
        /// Global transaction id.
        txn: u64,
        /// Pages to install now.
        pages: Vec<PageImage>,
    },
    /// Record a commit decision (outcome registry, first data server).
    RecordOutcome {
        /// Global transaction id.
        txn: u64,
    },
    /// Query a commit decision (participant recovery).
    QueryOutcome {
        /// Global transaction id.
        txn: u64,
    },
}

/// Replies from the commit participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitReply {
    /// Prepare accepted / operation done.
    Ok,
    /// Prepare or apply refused (storage failure).
    Refused,
    /// Outcome query: the transaction committed.
    Committed,
    /// Outcome query: no commit record (presumed abort).
    Unknown,
}

/// Verdict recorded for a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Commit decision durably recorded.
    Committed,
    /// No record: presumed abort.
    Unknown,
}

#[derive(Debug, Clone)]
enum LogState {
    Staged(Vec<PageImage>),
}

/// The staged-transaction table of one participant: a volatile cache of
/// the `TxnIntent` records in the data server's append-only log.
#[derive(Debug, Clone, Default)]
struct CommitLog {
    entries: Arc<Mutex<BTreeMap<u64, LogState>>>,
}

/// The transaction-outcome table hosted on the first data server. This
/// in-memory set is a volatile cache: the durable record is the
/// `TxnOutcome` entry the host appends to its log on `RecordOutcome`,
/// and a crash rebuilds the set from log replay
/// ([`CommitParticipant::resume_from_log`]).
#[derive(Debug, Clone, Default)]
pub struct OutcomeRegistry {
    committed: Arc<Mutex<std::collections::BTreeSet<u64>>>,
}

impl OutcomeRegistry {
    /// An empty registry.
    pub fn new() -> OutcomeRegistry {
        OutcomeRegistry::default()
    }

    /// Record that `txn` committed (in the volatile cache; the caller is
    /// responsible for the matching durable log append).
    pub fn record(&self, txn: u64) {
        self.committed.lock().insert(txn);
    }

    /// Look up a transaction's outcome.
    pub fn outcome(&self, txn: u64) -> TxnOutcome {
        if self.committed.lock().contains(&txn) {
            TxnOutcome::Committed
        } else {
            TxnOutcome::Unknown
        }
    }

    /// Crash simulation: forget every cached outcome.
    pub fn clear(&self) {
        self.committed.lock().clear();
    }
}

/// The commit participant service co-located with a [`DsmServer`].
pub struct CommitParticipant {
    dsm: Arc<DsmServer>,
    log: CommitLog,
    /// Outcome registry, when this participant hosts it.
    registry: Option<OutcomeRegistry>,
    /// Keeps the node's transport alive.
    _ratp: Mutex<Option<Arc<RatpNode>>>,
}

impl fmt::Debug for CommitParticipant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommitParticipant")
            .field("node", &self.dsm.node_id())
            .field("staged", &self.log.entries.lock().len())
            .field("hosts_registry", &self.registry.is_some())
            .finish()
    }
}

impl CommitParticipant {
    /// Install the participant on a data server; `registry` is `Some` on
    /// the data server hosting the outcome registry.
    pub fn install(
        ratp: &Arc<RatpNode>,
        dsm: Arc<DsmServer>,
        registry: Option<OutcomeRegistry>,
    ) -> Arc<CommitParticipant> {
        let participant = Arc::new(CommitParticipant {
            dsm,
            log: CommitLog::default(),
            registry,
            _ratp: Mutex::new(Some(Arc::clone(ratp))),
        });
        let handler = Arc::clone(&participant);
        ratp.register_service(ports::COMMIT, move |req: Request| {
            let reply = match clouds_codec::from_bytes::<CommitRequest>(&req.payload) {
                Ok(message) => handler.handle(message),
                Err(_) => CommitReply::Refused,
            };
            bytes::Bytes::from(clouds_codec::to_bytes(&reply).expect("encodes"))
        });
        participant
    }

    fn handle(&self, req: CommitRequest) -> CommitReply {
        match req {
            CommitRequest::Prepare { txn, pages } => {
                // Validate the pages are installable before voting yes.
                for page in &pages {
                    if self.dsm.store().get(page.seg).is_err() {
                        return CommitReply::Refused;
                    }
                }
                // Write-ahead: the yes vote is a durable promise, so the
                // intent must hit the log before the reply leaves.
                self.dsm.log().append(LogRecord::TxnIntent {
                    txn,
                    pages: pages
                        .iter()
                        .map(|p| IntentPage {
                            seg: p.seg,
                            page: p.page,
                            data: p.data.clone(),
                        })
                        .collect(),
                });
                self.log
                    .entries
                    .lock()
                    .insert(txn, LogState::Staged(pages));
                CommitReply::Ok
            }
            CommitRequest::Commit { txn } => {
                let staged = self.log.entries.lock().remove(&txn);
                match staged {
                    Some(LogState::Staged(pages)) => {
                        let reply = self.install_pages(&pages);
                        if reply == CommitReply::Ok {
                            // Installed pages are in the log (commit_page
                            // appends them); retire the intent so a replay
                            // does not re-stage a decided transaction.
                            self.dsm.log().append(LogRecord::TxnResolved { txn });
                        }
                        reply
                    }
                    // Duplicate commit (retransmission after apply).
                    None => CommitReply::Ok,
                }
            }
            CommitRequest::Abort { txn } => {
                if self.log.entries.lock().remove(&txn).is_some() {
                    self.dsm.log().append(LogRecord::TxnResolved { txn });
                }
                CommitReply::Ok
            }
            CommitRequest::ApplyLocal { txn: _, pages } => self.install_pages(&pages),
            CommitRequest::RecordOutcome { txn } => match &self.registry {
                Some(reg) => {
                    // The decision itself is what must survive the host's
                    // crash: log it before acknowledging to the
                    // coordinator.
                    self.dsm.log().append(LogRecord::TxnOutcome { txn });
                    reg.record(txn);
                    CommitReply::Ok
                }
                None => CommitReply::Refused,
            },
            CommitRequest::QueryOutcome { txn } => match &self.registry {
                Some(reg) => match reg.outcome(txn) {
                    TxnOutcome::Committed => CommitReply::Committed,
                    TxnOutcome::Unknown => CommitReply::Unknown,
                },
                None => CommitReply::Refused,
            },
        }
    }

    fn install_pages(&self, pages: &[PageImage]) -> CommitReply {
        for page in pages {
            if self.dsm.commit_page(page.seg, page.page, &page.data).is_err() {
                return CommitReply::Refused;
            }
        }
        CommitReply::Ok
    }

    /// Number of staged (prepared, undecided) transactions.
    pub fn staged_count(&self) -> usize {
        self.log.entries.lock().len()
    }

    /// Crash simulation: forget every staged transaction and (when this
    /// participant hosts it) every cached outcome. Pairs with
    /// [`CommitParticipant::resume_from_log`], which rebuilds both from
    /// the data server's replayed log.
    pub fn crash_volatile_state(&self) {
        self.log.entries.lock().clear();
        if let Some(reg) = &self.registry {
            reg.clear();
        }
    }

    /// Rebuild the staged-transaction table and the outcome registry
    /// from the data server's log replay (the pending intents and
    /// outcomes parked by `DsmServer::recover_from_log`). Call after the
    /// data server replayed its log and before
    /// [`CommitParticipant::recover`] resolves the re-staged
    /// transactions.
    ///
    /// Returns `(staged, outcomes)` counts; `(0, 0)` if no replay ran.
    pub fn resume_from_log(&self) -> (usize, usize) {
        let Some((pending, outcomes)) = self.dsm.take_recovered_txns() else {
            return (0, 0);
        };
        let outcome_count = outcomes.len();
        if let Some(reg) = &self.registry {
            for txn in outcomes {
                reg.record(txn);
            }
        }
        let staged = pending.len();
        let mut entries = self.log.entries.lock();
        for (txn, pages) in pending {
            let images = pages
                .into_iter()
                .map(|p| PageImage {
                    seg: p.seg,
                    page: p.page,
                    data: p.data,
                })
                .collect();
            entries.insert(txn, LogState::Staged(images));
        }
        (staged, outcome_count)
    }

    /// Crash-recovery: resolve staged transactions against the outcome
    /// registry (reached through `ratp` at `registry_node`). Committed
    /// transactions are installed; unknown ones are presumed aborted.
    ///
    /// Returns `(installed, aborted)` transaction counts.
    pub fn recover(
        &self,
        ratp: &Arc<RatpNode>,
        registry_node: clouds_simnet::NodeId,
    ) -> (usize, usize) {
        let staged: Vec<(u64, Vec<PageImage>)> = {
            let mut log = self.log.entries.lock();
            std::mem::take(&mut *log)
                .into_iter()
                .map(|(txn, LogState::Staged(pages))| (txn, pages))
                .collect()
        };
        let mut installed = 0;
        let mut aborted = 0;
        for (txn, pages) in staged {
            let verdict = if let Some(registry) = self.registry.as_ref() {
                // We host the registry: answer locally.
                match registry.outcome(txn) {
                    TxnOutcome::Committed => CommitReply::Committed,
                    TxnOutcome::Unknown => CommitReply::Unknown,
                }
            } else {
                let req = CommitRequest::QueryOutcome { txn };
                let payload =
                    bytes::Bytes::from(clouds_codec::to_bytes(&req).expect("encodes"));
                ratp.call(registry_node, ports::COMMIT, payload)
                    .ok()
                    .and_then(|b| clouds_codec::from_bytes(&b).ok())
                    .unwrap_or(CommitReply::Unknown)
            };
            if verdict == CommitReply::Committed {
                self.install_pages(&pages);
                installed += 1;
            } else {
                aborted += 1;
            }
            // Either way the transaction is decided: retire the intent so
            // the next replay does not re-stage it.
            self.dsm.log().append(LogRecord::TxnResolved { txn });
        }
        (installed, aborted)
    }
}

/// Errors helper: map a refused reply into a [`CloudsError`].
pub(crate) fn refused(what: &str) -> CloudsError {
    CloudsError::ConsistencyAbort(format!("{what} refused by participant"))
}
