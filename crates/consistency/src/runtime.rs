//! The user-facing consistency runtime: run invocations as s-, lcp- or
//! gcp-threads with automatic locking, recovery and retry.

use crate::commit::{refused, CommitParticipant, CommitReply, CommitRequest, OutcomeRegistry, PageImage};
use crate::hooks::RemoteLockHooks;
use clouds::consistency_hooks::CpSession;
use clouds::{CloudsError, Cluster, ComputeServer, OperationLabel};
use clouds_dsm::ports;
use clouds_ra::SysName;
use clouds_simnet::NodeId;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for cp-thread execution.
#[derive(Debug, Clone)]
pub struct CpOptions {
    /// Lock-wait deadline (deadlock resolution), milliseconds.
    pub lock_wait_ms: u64,
    /// How many times to re-run a computation aborted by lock timeouts.
    pub max_retries: u32,
}

impl Default for CpOptions {
    fn default() -> Self {
        CpOptions {
            lock_wait_ms: 800,
            max_retries: 24,
        }
    }
}

/// Counters describing cp-thread behaviour (experiment E5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpStats {
    /// Computations that committed.
    pub commits: u64,
    /// Aborts (lock timeouts + refused prepares), counting each retry.
    pub aborts: u64,
    /// Computations that exhausted their retry budget.
    pub failures: u64,
}

/// The consistency runtime for one cluster.
///
/// Created with [`ConsistencyRuntime::install`], which places a
/// [`CommitParticipant`] on every data server and the
/// [`OutcomeRegistry`] on the first.
pub struct ConsistencyRuntime {
    participants: Vec<Arc<CommitParticipant>>,
    registry: OutcomeRegistry,
    registry_node: NodeId,
    data_nodes: Vec<NodeId>,
    txn_counter: AtomicU64,
    owner_counter: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    failures: AtomicU64,
}

impl fmt::Debug for ConsistencyRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConsistencyRuntime")
            .field("participants", &self.participants.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ConsistencyRuntime {
    /// Install commit participants on all of the cluster's data servers.
    pub fn install(cluster: &Cluster) -> Arc<ConsistencyRuntime> {
        let registry = OutcomeRegistry::new();
        let mut participants = Vec::new();
        let mut data_nodes = Vec::new();
        for (i, ds) in cluster.data_servers().iter().enumerate() {
            let reg = (i == 0).then(|| registry.clone());
            participants.push(CommitParticipant::install(
                ds.ratp(),
                Arc::clone(ds.dsm()),
                reg,
            ));
            data_nodes.push(ds.node_id());
        }
        Arc::new(ConsistencyRuntime {
            participants,
            registry,
            registry_node: data_nodes[0],
            data_nodes,
            txn_counter: AtomicU64::new(1),
            owner_counter: AtomicU64::new(1),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        })
    }

    /// The outcome registry (for tests and recovery drills).
    pub fn registry(&self) -> &OutcomeRegistry {
        &self.registry
    }

    /// The participant on data server `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn participant(&self, i: usize) -> &Arc<CommitParticipant> {
        &self.participants[i]
    }

    /// The node hosting the outcome registry.
    pub fn registry_node(&self) -> NodeId {
        self.registry_node
    }

    /// Snapshot of the abort/commit counters.
    pub fn stats(&self) -> CpStats {
        CpStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    /// Run `target.entry(args)` with the semantics declared by the
    /// entry's [`OperationLabel`] (§5.2.1's static labels).
    ///
    /// # Errors
    ///
    /// The invocation's error, or [`CloudsError::ConsistencyAbort`]
    /// after the retry budget is exhausted.
    pub fn invoke_labeled(
        &self,
        compute: &ComputeServer,
        target: SysName,
        entry: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, CloudsError> {
        let label = compute.entry_label(target, entry)?;
        self.invoke(compute, label, target, entry, args, &CpOptions::default())
    }

    /// Run `target.entry(args)` with an explicit label and options.
    ///
    /// # Errors
    ///
    /// As for [`ConsistencyRuntime::invoke_labeled`].
    pub fn invoke(
        &self,
        compute: &ComputeServer,
        label: OperationLabel,
        target: SysName,
        entry: &str,
        args: &[u8],
        opts: &CpOptions,
    ) -> Result<Vec<u8>, CloudsError> {
        match label {
            OperationLabel::S => compute.invoke(target, entry, args, None),
            OperationLabel::Lcp | OperationLabel::Gcp => {
                self.run_cp(compute, label, target, entry, args, opts)
            }
        }
    }

    fn run_cp(
        &self,
        compute: &ComputeServer,
        label: OperationLabel,
        target: SysName,
        entry: &str,
        args: &[u8],
        opts: &CpOptions,
    ) -> Result<Vec<u8>, CloudsError> {
        let mut last_error = None;
        for _attempt in 0..=opts.max_retries {
            match self.attempt_cp(compute, label, target, entry, args, opts) {
                Ok(bytes) => {
                    self.commits.fetch_add(1, Ordering::Relaxed);
                    return Ok(bytes);
                }
                Err(CloudsError::ConsistencyAbort(m)) => {
                    self.aborts.fetch_add(1, Ordering::Relaxed);
                    compute
                        .ratp()
                        .obs()
                        .instant("2pc", "cp_abort", format!("attempt={_attempt}"));
                    last_error = Some(CloudsError::ConsistencyAbort(m));
                    // Back off with owner-dependent jitter so two aborted
                    // threads do not collide again in lock-step (the
                    // upgrade-deadlock livelock).
                    let jitter = (self.owner_counter.load(Ordering::Relaxed) % 11)
                        + 3 * (_attempt as u64 + 1);
                    std::thread::sleep(std::time::Duration::from_millis(5 + jitter));
                }
                Err(other) => return Err(other),
            }
        }
        self.failures.fetch_add(1, Ordering::Relaxed);
        Err(last_error.unwrap_or_else(|| {
            CloudsError::ConsistencyAbort("cp-thread failed with no recorded cause".into())
        }))
    }

    fn attempt_cp(
        &self,
        compute: &ComputeServer,
        label: OperationLabel,
        target: SysName,
        entry: &str,
        args: &[u8],
        opts: &CpOptions,
    ) -> Result<Vec<u8>, CloudsError> {
        let owner = self.owner_counter.fetch_add(1, Ordering::Relaxed)
            | ((compute.node_id().0 as u64) << 48);
        let hooks = Arc::new(RemoteLockHooks::new(
            Arc::clone(compute.ratp()),
            Arc::clone(compute.dsm()),
            opts.lock_wait_ms,
        ));
        let session = CpSession::new(owner, Arc::clone(&hooks) as _);

        let outcome = compute.invoke(target, entry, args, Some(Arc::clone(&session)));

        let result = match outcome {
            Err(e) => {
                session.discard_shadows();
                Err(e)
            }
            Ok(bytes) => {
                let shadows = session.take_shadows();
                if shadows.is_empty() {
                    Ok(bytes) // read-only computation: nothing to commit
                } else {
                    self.commit_shadows(compute, label, shadows).map(|()| bytes)
                }
            }
        };
        // Strict two-phase locking: everything is released only after
        // the commit decision (or abort).
        hooks.release_all(owner);
        result
    }

    /// Group shadow pages by home data server and commit them.
    fn commit_shadows(
        &self,
        compute: &ComputeServer,
        label: OperationLabel,
        shadows: Vec<((SysName, u32), Vec<u8>)>,
    ) -> Result<(), CloudsError> {
        let txn = self.txn_counter.fetch_add(1, Ordering::Relaxed)
            | ((compute.node_id().0 as u64) << 48);
        let mut by_server: BTreeMap<NodeId, Vec<PageImage>> = BTreeMap::new();
        for ((seg, page), data) in shadows {
            let home = compute
                .dsm()
                .home_of(seg)
                .map_err(|e| CloudsError::ConsistencyAbort(format!("commit routing: {e}")))?;
            by_server.entry(home).or_default().push(PageImage {
                seg,
                page,
                data,
            });
        }

        match label {
            OperationLabel::Lcp => {
                // Lightweight: atomic per server, no cross-server 2PC.
                // Distinct servers are applied in parallel — the commit
                // costs one round trip regardless of how many data
                // servers the shadow set spans.
                compute.ratp().obs().instant(
                    "2pc",
                    "apply_local",
                    format!("txn={txn} servers={}", by_server.len()),
                );
                let calls: Vec<(NodeId, CommitRequest)> = by_server
                    .into_iter()
                    .map(|(server, pages)| (server, CommitRequest::ApplyLocal { txn, pages }))
                    .collect();
                for reply in self.call_many(compute, calls) {
                    if reply? != CommitReply::Ok {
                        return Err(refused("local apply"));
                    }
                }
                Ok(())
            }
            OperationLabel::Gcp => self.two_phase_commit(compute, txn, by_server),
            OperationLabel::S => unreachable!("s-threads have no shadows"),
        }
    }

    fn two_phase_commit(
        &self,
        compute: &ComputeServer,
        txn: u64,
        by_server: BTreeMap<NodeId, Vec<PageImage>>,
    ) -> Result<(), CloudsError> {
        let servers: Vec<NodeId> = by_server.keys().copied().collect();
        let obs = Arc::clone(compute.ratp().obs());
        let detail = format!("txn={txn} participants={}", servers.len());
        let mut span = obs.traced_span("2pc", "gcp_commit", &detail);
        span.set_args(detail);
        obs.counter("2pc.prepares").add(servers.len() as u64);

        // Phase 1: prepare everywhere, in parallel across participants
        // (each prepare is an independent vote; the decision only needs
        // all of them, so the phase costs one round trip, not N).
        let prepare_calls: Vec<(NodeId, CommitRequest)> = by_server
            .iter()
            .map(|(server, pages)| {
                (
                    *server,
                    CommitRequest::Prepare {
                        txn,
                        pages: pages.clone(),
                    },
                )
            })
            .collect();
        let all_prepared = self
            .call_many(compute, prepare_calls)
            .into_iter()
            .all(|r| matches!(r, Ok(CommitReply::Ok)));

        obs.instant("2pc", "prepare", format!("txn={txn} ok={all_prepared}"));
        if !all_prepared {
            obs.counter("2pc.aborts").inc();
            obs.instant("2pc", "abort", format!("txn={txn} cause=prepare"));
            self.broadcast(compute, &servers, |_| CommitRequest::Abort { txn });
            return Err(CloudsError::ConsistencyAbort(format!(
                "prepare phase failed for txn {txn}"
            )));
        }

        // Commit point: record the decision durably *before* phase 2 so
        // a participant crash cannot lose the verdict.
        match self.call(compute, self.registry_node, &CommitRequest::RecordOutcome { txn }) {
            Ok(CommitReply::Ok) => {}
            _ => {
                obs.counter("2pc.aborts").inc();
                obs.instant("2pc", "abort", format!("txn={txn} cause=outcome_record"));
                self.broadcast(compute, &servers, |_| CommitRequest::Abort { txn });
                return Err(CloudsError::ConsistencyAbort(format!(
                    "could not record commit decision for txn {txn}"
                )));
            }
        }

        // Phase 2: best-effort installs, in parallel (the verdict is
        // already durable, so order does not matter). A participant that
        // misses the message recovers the verdict from the registry on
        // restart.
        self.broadcast(compute, &servers, |_| CommitRequest::Commit { txn });
        obs.counter("2pc.commits").inc();
        obs.instant("2pc", "commit", format!("txn={txn}"));
        Ok(())
    }

    /// Issue independent commit-protocol calls concurrently, one thread
    /// per remote participant, returning replies in request order.
    fn call_many(
        &self,
        compute: &ComputeServer,
        calls: Vec<(NodeId, CommitRequest)>,
    ) -> Vec<Result<CommitReply, CloudsError>> {
        if calls.len() <= 1 {
            return calls
                .into_iter()
                .map(|(server, req)| self.call(compute, server, &req))
                .collect();
        }
        // Participant threads inherit the coordinator's causal context
        // so each RaTP call parents under the gcp_commit span.
        let ctx = clouds_obs::current_ctx();
        std::thread::scope(|s| {
            let handles: Vec<_> = calls
                .into_iter()
                .map(|(server, req)| {
                    s.spawn(move || {
                        let _trace = ctx.map(clouds_obs::install_ctx);
                        self.call(compute, server, &req)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("commit call thread panicked"))
                .collect()
        })
    }

    /// Best-effort fan-out of one request shape to every server.
    fn broadcast(
        &self,
        compute: &ComputeServer,
        servers: &[NodeId],
        req: impl Fn(NodeId) -> CommitRequest,
    ) {
        let calls: Vec<(NodeId, CommitRequest)> =
            servers.iter().map(|&s| (s, req(s))).collect();
        let _ = self.call_many(compute, calls);
    }

    fn call(
        &self,
        compute: &ComputeServer,
        server: NodeId,
        req: &CommitRequest,
    ) -> Result<CommitReply, CloudsError> {
        let payload = bytes::Bytes::from(clouds_codec::to_bytes(req).expect("encodes"));
        let reply = compute
            .ratp()
            .call(server, ports::COMMIT, payload)
            .map_err(|e| CloudsError::ConsistencyAbort(format!("participant {server}: {e}")))?;
        clouds_codec::from_bytes(&reply)
            .map_err(|e| CloudsError::ConsistencyAbort(format!("bad commit reply: {e}")))
    }

    /// All data-server nodes (participant placement).
    pub fn data_nodes(&self) -> &[NodeId] {
        &self.data_nodes
    }
}
