//! `clouds-consistency` — consistency-preserving threads (§5.2.1).
//!
//! > "The Clouds 'consistency-preservation' mechanisms present one
//! > uniform object-thread abstraction that allows programmers to
//! > specify a wide range of atomicity semantics. This scheme performs
//! > automatic locking and recovery of persistent data."
//!
//! Three kinds of threads, selected per operation by its static label
//! ([`clouds::OperationLabel`]):
//!
//! * **s-threads** — no system locking or recovery. "They can freely
//!   interleave with other s-threads and cp-threads", which is exactly
//!   as dangerous as it sounds (see the `anomalies` tests).
//! * **lcp-threads** — automatic segment-level locking + shadow-page
//!   recovery, committed atomically *per data server* ("local
//!   (lightweight) consistency").
//! * **gcp-threads** — the same, plus a durable **two-phase commit**
//!   across every data server the computation touched ("global
//!   (heavyweight) consistency").
//!
//! The mechanism half (read/write sets, shadow pages, lock callbacks)
//! lives in `clouds::consistency_hooks`; this crate supplies the policy:
//!
//! * [`RemoteLockHooks`] — acquires segment locks at each segment's home
//!   data server, with a deadline (lock-wait timeout = the deadlock
//!   resolution of the paper's scheme: abort and retry).
//! * [`CommitParticipant`] — a system service co-located with every DSM
//!   server: stages prepared pages in a crash-surviving intent log and
//!   installs them coherently on commit.
//! * [`OutcomeRegistry`] — a durable transaction-outcome table on the
//!   first data server, so participants that crash between prepare and
//!   commit learn the verdict at recovery (presumed abort otherwise).
//! * [`ConsistencyRuntime`] — the user-facing API: run any invocation as
//!   an s-, lcp- or gcp-thread, with automatic retry on lock-timeout
//!   aborts.
//!
//! # Examples
//!
//! ```
//! use clouds::prelude::*;
//! use clouds_consistency::ConsistencyRuntime;
//!
//! struct Account;
//! impl ObjectCode for Account {
//!     fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
//!         match entry {
//!             "deposit" => {
//!                 let amount: u64 = decode_args(args)?;
//!                 let v = ctx.persistent().read_u64(0)? + amount;
//!                 ctx.persistent().write_u64(0, v)?;
//!                 encode_result(&v)
//!             }
//!             "balance" => encode_result(&ctx.persistent().read_u64(0)?),
//!             other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
//!         }
//!     }
//!     // Deposits are global consistency preserving.
//!     fn label(&self, entry: &str) -> OperationLabel {
//!         match entry {
//!             "deposit" => OperationLabel::Gcp,
//!             _ => OperationLabel::S,
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), CloudsError> {
//! let cluster = Cluster::builder()
//!     .compute_servers(1)
//!     .data_servers(2)
//!     .cost_model(clouds_simnet::CostModel::zero())
//!     .build()?;
//! cluster.register_class("account", Account)?;
//! let runtime = ConsistencyRuntime::install(&cluster);
//!
//! let acct = cluster.create_object("account", "Acct")?;
//! let cs = cluster.compute(0);
//! // Runs as a gcp-thread because of the label.
//! let balance: u64 = clouds::decode_args(
//!     &runtime.invoke_labeled(cs, acct, "deposit", &clouds::encode_args(&50u64)?)?,
//! )?;
//! assert_eq!(balance, 50);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod commit;
mod hooks;
mod runtime;

pub use commit::{CommitParticipant, CommitReply, CommitRequest, OutcomeRegistry, PageImage, TxnOutcome};
pub use hooks::RemoteLockHooks;
pub use runtime::{ConsistencyRuntime, CpOptions, CpStats};
