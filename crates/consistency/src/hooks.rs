//! Lock acquisition against the data-server lock managers.

use clouds::consistency_hooks::LockHooks;
use clouds::CloudsError;
use clouds_dsm::{ports, DsmClientPartition, LockMode, LockOutcome, LockReply, LockRequest};
use clouds_ra::SysName;
use clouds_ratp::RatpNode;
use std::fmt;
use std::sync::Arc;

/// [`LockHooks`] implementation that places each segment's lock on the
/// data server homing the segment — the paper's "locking is handled by
/// the system, automatically at runtime", with the data servers
/// providing "support for distributed synchronization" (§3.2, §4.2).
pub struct RemoteLockHooks {
    ratp: Arc<RatpNode>,
    dsm: Arc<DsmClientPartition>,
    wait_ms: u64,
}

impl fmt::Debug for RemoteLockHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteLockHooks")
            .field("wait_ms", &self.wait_ms)
            .finish()
    }
}

impl RemoteLockHooks {
    /// Hooks for one compute server; `wait_ms` is the deadlock-breaking
    /// lock-wait timeout.
    pub fn new(ratp: Arc<RatpNode>, dsm: Arc<DsmClientPartition>, wait_ms: u64) -> RemoteLockHooks {
        RemoteLockHooks { ratp, dsm, wait_ms }
    }

    fn acquire(&self, owner: u64, seg: SysName, mode: LockMode) -> Result<(), CloudsError> {
        let home = self
            .dsm
            .home_of(seg)
            .map_err(|e| CloudsError::ConsistencyAbort(format!("no home for lock: {e}")))?;
        let req = LockRequest::Acquire {
            seg,
            mode,
            owner,
            wait_ms: self.wait_ms,
        };
        let payload = bytes::Bytes::from(clouds_codec::to_bytes(&req).expect("encodes"));
        let reply = self
            .ratp
            .call(home, ports::LOCKS, payload)
            .map_err(|e| CloudsError::ConsistencyAbort(format!("lock manager: {e}")))?;
        match clouds_codec::from_bytes::<LockReply>(&reply)
            .map_err(|e| CloudsError::ConsistencyAbort(format!("bad lock reply: {e}")))?
        {
            LockReply::Acquired(LockOutcome::Granted) => Ok(()),
            LockReply::Acquired(LockOutcome::Timeout) => Err(CloudsError::ConsistencyAbort(
                format!("lock wait timed out on segment {seg} (possible deadlock)"),
            )),
            other => Err(CloudsError::ConsistencyAbort(format!(
                "unexpected lock reply {other:?}"
            ))),
        }
    }

    /// Release every lock held by `owner` on all data servers.
    pub fn release_all(&self, owner: u64) {
        let req = LockRequest::ReleaseAll { owner };
        let payload = bytes::Bytes::from(clouds_codec::to_bytes(&req).expect("encodes"));
        for &server in self.dsm.data_servers() {
            let _ = self.ratp.call(server, ports::LOCKS, payload.clone());
        }
    }
}

impl LockHooks for RemoteLockHooks {
    fn lock_read(&self, owner: u64, seg: SysName) -> Result<(), CloudsError> {
        self.acquire(owner, seg, LockMode::Shared)
    }

    fn lock_write(&self, owner: u64, seg: SysName) -> Result<(), CloudsError> {
        self.acquire(owner, seg, LockMode::Exclusive)
    }
}
