//! End-to-end tests for §5.2.1: s/lcp/gcp threads, automatic locking,
//! shadow recovery, two-phase commit, and crash recovery.

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_consistency::{ConsistencyRuntime, CpOptions};
use clouds_simnet::CostModel;
use std::sync::Arc;

/// A bank account whose deposits are labeled GCP and whose
/// unsafe_deposit stays an s-thread — the paper's "interesting (as well
/// as dangerous) execution time possibilities".
struct Account;

impl ObjectCode for Account {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "deposit" | "unsafe_deposit" | "lcp_deposit" => {
                let amount: u64 = decode_args(args)?;
                let v = ctx.persistent().read_u64(0)? + amount;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&v)
            }
            "slow_deposit" => {
                let amount: u64 = decode_args(args)?;
                let v = ctx.persistent().read_u64(0)?;
                // Window for an s-thread to sneak in between the
                // cp-thread's read and its commit.
                std::thread::sleep(std::time::Duration::from_millis(80));
                ctx.persistent().write_u64(0, v + amount)?;
                encode_result(&(v + amount))
            }
            "fail_after_write" => {
                ctx.persistent().write_u64(0, 999_999)?;
                Err(CloudsError::Application("deliberate failure".into()))
            }
            "balance" => encode_result(&ctx.persistent().read_u64(0)?),
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }

    fn label(&self, entry: &str) -> OperationLabel {
        match entry {
            "deposit" | "slow_deposit" | "fail_after_write" => OperationLabel::Gcp,
            "lcp_deposit" => OperationLabel::Lcp,
            _ => OperationLabel::S,
        }
    }
}

/// Transfers between two accounts stored in *different objects* (and,
/// with two data servers, usually on different nodes): the classic
/// atomicity workload.
struct Transfer;

impl ObjectCode for Transfer {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "move" => {
                let (from, to, amount): (SysName, SysName, u64) = decode_args(args)?;
                // Withdraw...
                let balance_bytes = ctx.invoke(from, "balance", &clouds::encode_args(&())?)?;
                let balance: u64 = decode_args(&balance_bytes)?;
                if balance < amount {
                    return Err(CloudsError::Application("insufficient funds".into()));
                }
                ctx.invoke(from, "set", &clouds::encode_args(&(balance - amount))?)?;
                // ...then deposit.
                let to_balance: u64 =
                    decode_args(&ctx.invoke(to, "balance", &clouds::encode_args(&())?)?)?;
                ctx.invoke(to, "set", &clouds::encode_args(&(to_balance + amount))?)?;
                encode_result(&())
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }

    fn label(&self, entry: &str) -> OperationLabel {
        match entry {
            "move" => OperationLabel::Gcp,
            _ => OperationLabel::S,
        }
    }
}

/// Raw account with set/balance for the transfer tests.
struct RawAccount;

impl ObjectCode for RawAccount {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "set" => {
                let v: u64 = decode_args(args)?;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&())
            }
            "balance" => encode_result(&ctx.persistent().read_u64(0)?),
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn bed(computes: usize, datas: usize) -> (Cluster, Arc<ConsistencyRuntime>) {
    let cluster = Cluster::builder()
        .compute_servers(computes)
        .data_servers(datas)
        .workstations(0)
        .cost_model(CostModel::zero())
        .build()
        .unwrap();
    cluster.register_class("account", Account).unwrap();
    cluster.register_class("raw-account", RawAccount).unwrap();
    cluster.register_class("transfer", Transfer).unwrap();
    let runtime = ConsistencyRuntime::install(&cluster);
    (cluster, runtime)
}

#[test]
fn gcp_deposit_commits_durably() {
    let (cluster, runtime) = bed(1, 2);
    let acct = cluster.create_object("account", "A").unwrap();
    let cs = cluster.compute(0);
    let v: u64 = decode_args(
        &runtime
            .invoke_labeled(cs, acct, "deposit", &clouds::encode_args(&50u64).unwrap())
            .unwrap(),
    )
    .unwrap();
    assert_eq!(v, 50);
    // Visible to a plain s-thread afterwards.
    let balance: u64 = decode_args(
        &cs.invoke(acct, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(balance, 50);
    assert_eq!(runtime.stats().commits, 1);
}

#[test]
fn failed_gcp_thread_leaves_no_trace() {
    let (cluster, runtime) = bed(1, 1);
    let acct = cluster.create_object("account", "A").unwrap();
    let cs = cluster.compute(0);
    let err = runtime
        .invoke_labeled(cs, acct, "fail_after_write", &clouds::encode_args(&()).unwrap())
        .unwrap_err();
    assert!(matches!(err, CloudsError::Application(_)));
    // The write inside the failed cp-thread was a shadow: discarded.
    let balance: u64 = decode_args(
        &cs.invoke(acct, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(balance, 0);
}

#[test]
fn read_only_gcp_thread_commits_nothing() {
    let (cluster, runtime) = bed(1, 1);
    let acct = cluster.create_object("account", "A").unwrap();
    let cs = cluster.compute(0);
    let balance: u64 = decode_args(
        &runtime
            .invoke(
                cs,
                OperationLabel::Gcp,
                acct,
                "balance",
                &clouds::encode_args(&()).unwrap(),
                &CpOptions::default(),
            )
            .unwrap(),
    )
    .unwrap();
    assert_eq!(balance, 0);
    assert_eq!(runtime.participant(0).staged_count(), 0);
}

#[test]
fn lcp_deposit_commits() {
    let (cluster, runtime) = bed(1, 2);
    let acct = cluster.create_object("account", "A").unwrap();
    let cs = cluster.compute(0);
    for _ in 0..3 {
        runtime
            .invoke_labeled(cs, acct, "lcp_deposit", &clouds::encode_args(&10u64).unwrap())
            .unwrap();
    }
    let balance: u64 = decode_args(
        &cs.invoke(acct, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(balance, 30);
}

#[test]
fn concurrent_gcp_deposits_never_lose_updates() {
    let (cluster, runtime) = bed(2, 2);
    let acct = cluster.create_object("account", "A").unwrap();
    let mut handles = Vec::new();
    for i in 0..4 {
        let cs = cluster.compute(i % 2).clone();
        let runtime = Arc::clone(&runtime);
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                runtime
                    .invoke_labeled(&cs, acct, "deposit", &clouds::encode_args(&1u64).unwrap())
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let cs = cluster.compute(0);
    let balance: u64 = decode_args(
        &cs.invoke(acct, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(balance, 40);
    assert_eq!(runtime.stats().commits, 40);
    assert_eq!(runtime.stats().failures, 0);
}

#[test]
fn s_threads_do_lose_updates_under_contention() {
    // The control experiment: the same workload WITHOUT cp semantics
    // exhibits lost updates — the paper's motivation for cp-threads.
    // (Not guaranteed every run; we only assert it never exceeds the
    // true total, and run enough rounds that losses are overwhelmingly
    // likely. If this test ever flakes "all updates survived", increase
    // the rounds.)
    let (cluster, _runtime) = bed(2, 1);
    let acct = cluster.create_object("account", "A").unwrap();
    let mut handles = Vec::new();
    for i in 0..4 {
        let cs = cluster.compute(i % 2).clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let _ = cs.invoke(
                    acct,
                    "unsafe_deposit",
                    &clouds::encode_args(&1u64).unwrap(),
                    None,
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let cs = cluster.compute(0);
    let balance: u64 = decode_args(
        &cs.invoke(acct, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert!(balance <= 200, "balance {balance}");
}

#[test]
fn gcp_transfer_across_data_servers_is_atomic() {
    let (cluster, runtime) = bed(1, 3);
    let cs = cluster.compute(0);
    // Force the two accounts onto different data servers.
    let from = cs
        .create_object("raw-account", Some("From"), Some(cluster.data_server(1).node_id()))
        .unwrap();
    let to = cs
        .create_object("raw-account", Some("To"), Some(cluster.data_server(2).node_id()))
        .unwrap();
    let mover = cs.create_object("transfer", Some("Mover"), None).unwrap();
    cs.invoke(from, "set", &clouds::encode_args(&100u64).unwrap(), None)
        .unwrap();

    runtime
        .invoke_labeled(
            cs,
            mover,
            "move",
            &clouds::encode_args(&(from, to, 30u64)).unwrap(),
        )
        .unwrap();

    let f: u64 = decode_args(
        &cs.invoke(from, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    let t: u64 = decode_args(
        &cs.invoke(to, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!((f, t), (70, 30));

    // Insufficient funds: whole transfer rolls back, nothing moves.
    let err = runtime
        .invoke_labeled(
            cs,
            mover,
            "move",
            &clouds::encode_args(&(from, to, 1000u64)).unwrap(),
        )
        .unwrap_err();
    assert!(matches!(err, CloudsError::Application(_)));
    let f2: u64 = decode_args(
        &cs.invoke(from, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(f2, 70);
}

#[test]
fn deadlock_is_broken_by_timeout_and_retry() {
    // Two transfer threads in opposite directions: the canonical
    // deadlock. Lock-wait timeouts abort one side; retries succeed.
    let (cluster, runtime) = bed(2, 2);
    let cs0 = cluster.compute(0).clone();
    let cs1 = cluster.compute(1).clone();
    let a = cs0.create_object("raw-account", Some("AcctA"), None).unwrap();
    let b = cs0.create_object("raw-account", Some("AcctB"), None).unwrap();
    let mover = cs0.create_object("transfer", Some("M"), None).unwrap();
    cs0.invoke(a, "set", &clouds::encode_args(&500u64).unwrap(), None)
        .unwrap();
    cs0.invoke(b, "set", &clouds::encode_args(&500u64).unwrap(), None)
        .unwrap();

    let opts = CpOptions {
        lock_wait_ms: 150,
        max_retries: 30,
    };
    let r1 = {
        let runtime = Arc::clone(&runtime);
        let opts = opts.clone();
        std::thread::spawn(move || {
            for _ in 0..10 {
                runtime
                    .invoke(
                        &cs0,
                        OperationLabel::Gcp,
                        mover,
                        "move",
                        &clouds::encode_args(&(a, b, 1u64)).unwrap(),
                        &opts,
                    )
                    .unwrap();
            }
        })
    };
    let r2 = {
        let runtime = Arc::clone(&runtime);
        std::thread::spawn(move || {
            for _ in 0..10 {
                runtime
                    .invoke(
                        &cs1,
                        OperationLabel::Gcp,
                        mover,
                        "move",
                        &clouds::encode_args(&(b, a, 1u64)).unwrap(),
                        &opts,
                    )
                    .unwrap();
            }
        })
    };
    r1.join().unwrap();
    r2.join().unwrap();

    let cs = cluster.compute(0);
    let fa: u64 = decode_args(
        &cs.invoke(a, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    let fb: u64 = decode_args(
        &cs.invoke(b, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    // Equal and opposite transfers: totals preserved and balanced.
    assert_eq!(fa + fb, 1000);
    assert_eq!(fa, 500);
    assert_eq!(runtime.stats().commits, 20);
}

#[test]
fn participant_crash_between_prepare_and_commit_recovers() {
    use clouds_consistency::TxnOutcome;
    let (cluster, runtime) = bed(1, 2);
    let cs = cluster.compute(0);
    let acct = cs
        .create_object("account", Some("A"), Some(cluster.data_server(1).node_id()))
        .unwrap();

    // Normal committed deposit to learn the txn machinery works.
    runtime
        .invoke_labeled(cs, acct, "deposit", &clouds::encode_args(&5u64).unwrap())
        .unwrap();

    // Simulate a participant that prepared and then crashed before the
    // commit message: stage pages directly, record the outcome, crash,
    // restart, recover.
    let participant = runtime.participant(1);
    let seg = {
        // Find the account's data segment by reading its meta.
        let meta = clouds::object::ObjectMeta::load(
            &**cluster.compute(0).object_manager().partition(),
            acct,
        )
        .unwrap();
        meta.data_seg
    };
    let mut page = cluster
        .data_server(1)
        .dsm()
        .store()
        .get(seg)
        .unwrap()
        .read()
        .read_page(0)
        .unwrap();
    page[..8].copy_from_slice(&777u64.to_le_bytes());

    // Stage via the wire path.
    let txn = 0xFEED;
    let prep = clouds_codec::to_bytes(&clouds_consistency::CommitRequest::Prepare {
        txn,
        pages: vec![clouds_consistency::PageImage {
            seg,
            page: 0,
            data: page,
        }],
    })
    .unwrap();
    cs.ratp()
        .call(
            cluster.data_server(1).node_id(),
            clouds_dsm::ports::COMMIT,
            bytes::Bytes::from(prep),
        )
        .unwrap();
    assert_eq!(participant.staged_count(), 1);
    runtime.registry().record(txn);
    assert_eq!(runtime.registry().outcome(txn), TxnOutcome::Committed);

    // Crash + restart the participant's node; recovery must install.
    cluster.crash_data_server(1);
    cluster.restart_data_server(1);
    let (installed, aborted) = participant.recover(
        cluster.data_server(1).ratp(),
        runtime.registry_node(),
    );
    assert_eq!((installed, aborted), (1, 0));

    let balance: u64 = decode_args(
        &cs.invoke(acct, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(balance, 777);
}



#[test]
fn mixing_s_threads_with_cp_threads_is_dangerous_as_documented() {
    // §5.2.1: "Since s-threads do not automatically acquire locks, nor
    // are they blocked by any system acquired locks, they can freely
    // interleave with other s-threads and cp-threads … various
    // combinations … lead to many interesting (as well as dangerous)
    // execution time possibilities."
    //
    // Here the danger is concrete: an s-thread writes while a gcp-thread
    // is between its read and its commit; the commit installs the
    // cp-thread's page image and the s-thread's update vanishes.
    let (cluster, runtime) = bed(2, 1);
    let acct = cluster.create_object("account", "A").unwrap();

    let cs0 = cluster.compute(0).clone();
    let rt = Arc::clone(&runtime);
    let gcp = std::thread::spawn(move || {
        rt.invoke_labeled(&cs0, acct, "slow_deposit", &clouds::encode_args(&10u64).unwrap())
            .unwrap()
    });
    // While the gcp-thread sleeps inside its window, an s-thread writes
    // straight through the DSM (no locks stop it).
    std::thread::sleep(std::time::Duration::from_millis(30));
    let cs1 = cluster.compute(1);
    cs1.invoke(
        acct,
        "unsafe_deposit",
        &clouds::encode_args(&5u64).unwrap(),
        None,
    )
    .unwrap();
    gcp.join().unwrap();

    let balance: u64 = decode_args(
        &cs1.invoke(acct, "balance", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    // The s-thread's 5 was clobbered by the gcp commit image: 10, not 15.
    assert_eq!(
        balance, 10,
        "the documented s/cp anomaly should have destroyed the s-thread's update"
    );
}


#[test]
fn lcp_is_lightweight_gcp_is_atomic_under_partial_failure() {
    // The semantic difference the labels buy (§5.2.1): LCP commits
    // per data server with no cross-server atomicity; GCP is all-or-
    // nothing. With one of the two involved data servers dead at commit
    // time:
    //   * GCP's prepare phase fails → abort → nothing changes anywhere.
    //   * LCP applies at the live server, fails at the dead one → a
    //     PARTIAL update survives (lightweight, as advertised).
    let run_one = |label: OperationLabel| -> (u64, u64, bool) {
        let (cluster, runtime) = bed(1, 3);
        let cs = cluster.compute(0);
        let from = cs
            .create_object("raw-account", Some("From"), Some(cluster.data_server(1).node_id()))
            .unwrap();
        let to = cs
            .create_object("raw-account", Some("To"), Some(cluster.data_server(2).node_id()))
            .unwrap();
        let mover = cs.create_object("transfer", Some("Mover"), None).unwrap();
        cs.invoke(from, "set", &clouds::encode_args(&100u64).unwrap(), None)
            .unwrap();

        // The destination's data server dies before the transfer; the
        // cp-thread still *executes* (shadow writes need no server), but
        // the commit must reach both servers.
        // NOTE: locks for `to` live on the dead server too, so use a
        // short lock wait and accept the abort path for GCP.
        cluster.crash_data_server(2);
        let outcome = runtime.invoke(
            cs,
            label,
            mover,
            "move",
            &clouds::encode_args(&(from, to, 30u64)).unwrap(),
            &CpOptions {
                lock_wait_ms: 100,
                max_retries: 0,
            },
        );
        let from_balance: u64 = decode_args(
            &cs.invoke(from, "balance", &clouds::encode_args(&()).unwrap(), None)
                .unwrap(),
        )
        .unwrap();
        // `to` is unreachable; report whether the source changed.
        (from_balance, 30, outcome.is_ok())
    };

    let (gcp_from, _, gcp_ok) = run_one(OperationLabel::Gcp);
    assert!(!gcp_ok, "gcp must fail without both participants");
    assert_eq!(gcp_from, 100, "gcp: all-or-nothing, source untouched");

    let (lcp_from, _, lcp_ok) = run_one(OperationLabel::Lcp);
    assert!(!lcp_ok, "lcp also reports the failure…");
    // …but, being lightweight, it may have already applied the source
    // debit at the live server: partial state is possible by design.
    // (Whether it did depends on commit ordering; assert only that LCP
    // does not *guarantee* atomicity — i.e. we accept either value —
    // while documenting the observed partial commit when it happens.)
    assert!(
        lcp_from == 70 || lcp_from == 100,
        "unexpected source balance {lcp_from}"
    );
}
