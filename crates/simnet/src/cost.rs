//! Calibrated virtual-time cost model.
//!
//! The paper's §4.3 numbers were measured on Sun-3/60s over 10 Mb/s
//! Ethernet. The [`CostModel::sun3_ethernet`] preset reproduces them:
//!
//! | quantity | paper | model |
//! |---|---|---|
//! | context switch | 0.14 ms | `context_switch` |
//! | zero-filled 8 KB page fault | 1.5 ms | `page_fault_zero` |
//! | non-zero-filled page fault | 0.629 ms | `page_fault_copy` |
//! | Ethernet round trip, 72 B | 2.4 ms | 2 × frame delay |
//!
//! Frame delay is `frame_base + wire_len × per_byte` where `wire_len`
//! includes the 18-byte Ethernet header. On a 10 Mb/s wire a byte takes
//! 0.8 µs; the rest of the 1.2 ms one-way latency observed in the paper is
//! protocol-stack software time, captured in `frame_base`.

use crate::time::Vt;

/// Virtual-time costs charged by the simulated kernel and network.
///
/// The struct is plain data so experiments can build variants (e.g. a
/// faster network for ablations); [`CostModel::sun3_ethernet`] is the
/// calibrated paper configuration and [`CostModel::zero`] makes virtual
/// time inert for logic-only tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed per-frame cost: media access + driver + interrupt handling.
    pub frame_base: Vt,
    /// Per-byte transmission cost (wire bandwidth).
    pub per_byte: Vt,
    /// Bytes of link-level framing added to every payload on the wire.
    pub frame_header_bytes: u64,
    /// Kernel context switch (paper: 0.14 ms).
    pub context_switch: Vt,
    /// Servicing a zero-filled 8 KB page fault (paper: 1.5 ms).
    pub page_fault_zero: Vt,
    /// Servicing a page fault whose page is resident locally
    /// (paper: 0.629 ms).
    pub page_fault_copy: Vt,
    /// Transport-layer software cost to process one packet end
    /// (calibrated so a null RaTP transaction takes ~4.8 ms round trip).
    pub transport_packet: Vt,
    /// Entering *or* leaving an object space on invocation: stack remap,
    /// protection switch. Charged twice (entry + exit), together with two
    /// context switches, so a hot null invocation costs
    /// 2 × (3.86 + 0.14) = 8 ms, the paper's minimum (§4.3).
    pub invocation_setup: Vt,
}

impl CostModel {
    /// The calibrated Sun-3 / 10 Mb/s Ethernet configuration from §4.3.
    ///
    /// ```
    /// use clouds_simnet::{CostModel, Vt};
    /// let m = CostModel::sun3_ethernet();
    /// // 72-byte message: one-way delay = 1.2ms, round trip 2.4ms.
    /// assert_eq!(m.frame_delay(72).mul(2), Vt::from_micros(2400));
    /// ```
    pub fn sun3_ethernet() -> CostModel {
        CostModel {
            // 72 B payload + 18 B header = 90 B * 0.8 us = 72 us wire time;
            // 1.2 ms one-way total => 1.128 ms software+media overhead.
            frame_base: Vt::from_micros(1128),
            per_byte: Vt::from_nanos(800),
            frame_header_bytes: 18,
            context_switch: Vt::from_micros(140),
            page_fault_zero: Vt::from_micros(1500),
            page_fault_copy: Vt::from_micros(629),
            transport_packet: Vt::from_micros(600),
            invocation_setup: Vt::from_micros(3860),
        }
    }

    /// A ~1990s-2000s commodity LAN and CPU: 100 Mb/s wire, tens of
    /// microseconds of software overhead. Used by ablation experiments
    /// to show how the computation/communication trade-off moves when
    /// the hardware balance changes.
    pub fn modern_lan() -> CostModel {
        CostModel {
            frame_base: Vt::from_micros(30),
            per_byte: Vt::from_nanos(80),
            frame_header_bytes: 18,
            context_switch: Vt::from_micros(5),
            page_fault_zero: Vt::from_micros(40),
            page_fault_copy: Vt::from_micros(20),
            transport_packet: Vt::from_micros(15),
            invocation_setup: Vt::from_micros(100),
        }
    }

    /// All-zero costs: virtual time stands still. Useful for unit tests
    /// that only care about protocol logic.
    pub fn zero() -> CostModel {
        CostModel {
            frame_base: Vt::ZERO,
            per_byte: Vt::ZERO,
            frame_header_bytes: 0,
            context_switch: Vt::ZERO,
            page_fault_zero: Vt::ZERO,
            page_fault_copy: Vt::ZERO,
            transport_packet: Vt::ZERO,
            invocation_setup: Vt::ZERO,
        }
    }

    /// Modeled wire + stack delay for a frame with `payload_len` bytes.
    pub fn frame_delay(&self, payload_len: usize) -> Vt {
        let wire_len = payload_len as u64 + self.frame_header_bytes;
        self.frame_base + self.per_byte.mul(wire_len)
    }
}

impl Default for CostModel {
    /// Defaults to the calibrated paper configuration.
    fn default() -> Self {
        CostModel::sun3_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ethernet_rtt_matches() {
        let m = CostModel::sun3_ethernet();
        let rtt = m.frame_delay(72).mul(2);
        // Paper: 2.4 ms for a 72-byte message round trip.
        assert_eq!(rtt, Vt::from_micros(2400));
    }

    #[test]
    fn zero_model_is_inert() {
        let m = CostModel::zero();
        assert_eq!(m.frame_delay(100_000), Vt::ZERO);
    }

    #[test]
    fn delay_is_monotonic_in_size() {
        let m = CostModel::sun3_ethernet();
        assert!(m.frame_delay(1000) > m.frame_delay(100));
    }

    #[test]
    fn default_is_sun3() {
        assert_eq!(CostModel::default(), CostModel::sun3_ethernet());
    }
}
