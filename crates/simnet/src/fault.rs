//! Fault injection: loss, duplication, jitter, reordering, corruption,
//! partitions.
//!
//! Node crash/restart is handled by [`crate::Network`] itself; this module
//! holds the *link* fault state. All randomness is drawn from the
//! network's seeded RNG so experiments are reproducible.

use crate::time::Vt;
use crate::NodeId;
use std::collections::{HashMap, HashSet};

/// Declarative description of link faults, applied via
/// [`crate::Network::set_faults`] or mutated piecemeal through the
/// `Network` convenience methods.
///
/// ```
/// use clouds_simnet::{FaultPlan, NodeId};
/// let mut plan = FaultPlan::default();
/// plan.global_loss = 0.1;
/// plan.link_loss.insert((NodeId(1), NodeId(2)), 1.0);
/// assert_eq!(plan.loss_probability(NodeId(1), NodeId(2)), 1.0);
/// assert_eq!(plan.loss_probability(NodeId(2), NodeId(1)), 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any frame is dropped.
    pub global_loss: f64,
    /// Per-directed-link loss probability, overriding `global_loss`.
    pub link_loss: HashMap<(NodeId, NodeId), f64>,
    /// Probability in `[0, 1]` that a delivered frame is duplicated.
    pub duplication: f64,
    /// Pairs of nodes that cannot communicate (both directions).
    pub partitions: HashSet<(NodeId, NodeId)>,
    /// Maximum extra delivery delay; each frame gets a uniform draw from
    /// `[0, jitter]` added to its modeled wire delay.
    pub jitter: Vt,
    /// Probability in `[0, 1]` that a frame is held back and delivered
    /// after later traffic to the same destination (reordering).
    pub reorder: f64,
    /// Probability in `[0, 1]` that a delivered frame has one payload byte
    /// flipped in transit.
    pub corruption: f64,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Effective loss probability for a frame `src → dst`.
    pub fn loss_probability(&self, src: NodeId, dst: NodeId) -> f64 {
        *self.link_loss.get(&(src, dst)).unwrap_or(&self.global_loss)
    }

    /// Whether `a` and `b` are separated by a partition.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&Self::key(a, b))
    }

    /// Cut communication between every node in `left` and every node in
    /// `right`.
    pub fn partition(&mut self, left: &[NodeId], right: &[NodeId]) {
        for &a in left {
            for &b in right {
                self.partitions.insert(Self::key(a, b));
            }
        }
    }

    /// Reconnect every node in `left` with every node in `right`,
    /// removing exactly the pairs a matching [`FaultPlan::partition`]
    /// call added. Other partitions stay in force.
    pub fn unpartition(&mut self, left: &[NodeId], right: &[NodeId]) {
        for &a in left {
            for &b in right {
                self.partitions.remove(&Self::key(a, b));
            }
        }
    }

    /// Remove all partitions.
    ///
    /// This *only* reconnects partitioned nodes; probabilistic faults
    /// (loss, duplication, jitter, reordering, corruption) remain in
    /// force. Use [`FaultPlan::clear`] to return to a fault-free network.
    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    /// Reset *all* fault state — loss (global and per-link), duplication,
    /// partitions, jitter, reordering and corruption — back to the
    /// fault-free default. Unlike [`FaultPlan::heal`], which only removes
    /// partitions, `clear` makes the plan equivalent to
    /// [`FaultPlan::none`].
    pub fn clear(&mut self) {
        *self = FaultPlan::default();
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_symmetric() {
        let mut p = FaultPlan::none();
        p.partition(&[NodeId(1)], &[NodeId(2), NodeId(3)]);
        assert!(p.is_partitioned(NodeId(1), NodeId(2)));
        assert!(p.is_partitioned(NodeId(2), NodeId(1)));
        assert!(p.is_partitioned(NodeId(3), NodeId(1)));
        assert!(!p.is_partitioned(NodeId(2), NodeId(3)));
        p.heal();
        assert!(!p.is_partitioned(NodeId(1), NodeId(2)));
    }

    #[test]
    fn link_loss_overrides_global() {
        let mut p = FaultPlan::none();
        p.global_loss = 0.25;
        p.link_loss.insert((NodeId(5), NodeId(6)), 0.0);
        assert_eq!(p.loss_probability(NodeId(5), NodeId(6)), 0.0);
        assert_eq!(p.loss_probability(NodeId(6), NodeId(5)), 0.25);
    }

    #[test]
    fn unpartition_removes_only_matching_pairs() {
        let mut p = FaultPlan::none();
        p.partition(&[NodeId(1)], &[NodeId(2)]);
        p.partition(&[NodeId(3)], &[NodeId(4)]);
        p.unpartition(&[NodeId(2)], &[NodeId(1)]); // order-insensitive
        assert!(!p.is_partitioned(NodeId(1), NodeId(2)));
        assert!(p.is_partitioned(NodeId(3), NodeId(4)));
    }

    #[test]
    fn heal_leaves_probabilistic_faults_in_force() {
        let mut p = FaultPlan::none();
        p.global_loss = 0.5;
        p.link_loss.insert((NodeId(1), NodeId(2)), 1.0);
        p.duplication = 0.25;
        p.jitter = Vt::from_millis(3);
        p.reorder = 0.1;
        p.corruption = 0.01;
        p.partition(&[NodeId(1)], &[NodeId(2)]);

        p.heal();
        assert!(!p.is_partitioned(NodeId(1), NodeId(2)));
        assert_eq!(p.global_loss, 0.5);
        assert_eq!(p.loss_probability(NodeId(1), NodeId(2)), 1.0);
        assert_eq!(p.duplication, 0.25);
        assert_eq!(p.jitter, Vt::from_millis(3));
        assert_eq!(p.reorder, 0.1);
        assert_eq!(p.corruption, 0.01);
    }

    #[test]
    fn clear_resets_every_fault_axis() {
        let mut p = FaultPlan::none();
        p.global_loss = 0.5;
        p.link_loss.insert((NodeId(1), NodeId(2)), 1.0);
        p.duplication = 0.25;
        p.jitter = Vt::from_millis(3);
        p.reorder = 0.1;
        p.corruption = 0.01;
        p.partition(&[NodeId(1)], &[NodeId(2)]);

        p.clear();
        assert_eq!(p.global_loss, 0.0);
        assert!(p.link_loss.is_empty());
        assert_eq!(p.duplication, 0.0);
        assert!(p.partitions.is_empty());
        assert_eq!(p.jitter, Vt::ZERO);
        assert_eq!(p.reorder, 0.0);
        assert_eq!(p.corruption, 0.0);
    }
}
