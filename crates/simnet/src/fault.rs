//! Fault injection: loss, duplication, partitions.
//!
//! Node crash/restart is handled by [`crate::Network`] itself; this module
//! holds the *link* fault state. All randomness is drawn from the
//! network's seeded RNG so experiments are reproducible.

use crate::NodeId;
use std::collections::{HashMap, HashSet};

/// Declarative description of link faults, applied via
/// [`crate::Network::set_faults`] or mutated piecemeal through the
/// `Network` convenience methods.
///
/// ```
/// use clouds_simnet::{FaultPlan, NodeId};
/// let mut plan = FaultPlan::default();
/// plan.global_loss = 0.1;
/// plan.link_loss.insert((NodeId(1), NodeId(2)), 1.0);
/// assert_eq!(plan.loss_probability(NodeId(1), NodeId(2)), 1.0);
/// assert_eq!(plan.loss_probability(NodeId(2), NodeId(1)), 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any frame is dropped.
    pub global_loss: f64,
    /// Per-directed-link loss probability, overriding `global_loss`.
    pub link_loss: HashMap<(NodeId, NodeId), f64>,
    /// Probability in `[0, 1]` that a delivered frame is duplicated.
    pub duplication: f64,
    /// Pairs of nodes that cannot communicate (both directions).
    pub partitions: HashSet<(NodeId, NodeId)>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Effective loss probability for a frame `src → dst`.
    pub fn loss_probability(&self, src: NodeId, dst: NodeId) -> f64 {
        *self.link_loss.get(&(src, dst)).unwrap_or(&self.global_loss)
    }

    /// Whether `a` and `b` are separated by a partition.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&Self::key(a, b))
    }

    /// Cut communication between every node in `left` and every node in
    /// `right`.
    pub fn partition(&mut self, left: &[NodeId], right: &[NodeId]) {
        for &a in left {
            for &b in right {
                self.partitions.insert(Self::key(a, b));
            }
        }
    }

    /// Remove all partitions.
    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_symmetric() {
        let mut p = FaultPlan::none();
        p.partition(&[NodeId(1)], &[NodeId(2), NodeId(3)]);
        assert!(p.is_partitioned(NodeId(1), NodeId(2)));
        assert!(p.is_partitioned(NodeId(2), NodeId(1)));
        assert!(p.is_partitioned(NodeId(3), NodeId(1)));
        assert!(!p.is_partitioned(NodeId(2), NodeId(3)));
        p.heal();
        assert!(!p.is_partitioned(NodeId(1), NodeId(2)));
    }

    #[test]
    fn link_loss_overrides_global() {
        let mut p = FaultPlan::none();
        p.global_loss = 0.25;
        p.link_loss.insert((NodeId(5), NodeId(6)), 0.0);
        assert_eq!(p.loss_probability(NodeId(5), NodeId(6)), 0.0);
        assert_eq!(p.loss_probability(NodeId(6), NodeId(5)), 0.25);
    }
}
