//! The network itself: registration, delivery, faults, crash/restart.

use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::frame::{Frame, MTU};
use crate::schedule::{FaultAction, FaultEvent, FaultSchedule};
use crate::stats::{NetworkStats, Stats};
use crate::time::{VirtualClock, Vt};
use crate::NodeId;
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors returned by [`Endpoint::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SendError {
    /// Payload exceeds [`MTU`]; fragment at the transport layer.
    FrameTooLarge(usize),
    /// Destination node id was never registered.
    UnknownNode(NodeId),
    /// The sending node is crashed.
    SourceCrashed,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::FrameTooLarge(n) => write!(f, "frame payload {n} exceeds MTU {MTU}"),
            SendError::UnknownNode(id) => write!(f, "unknown destination {id}"),
            SendError::SourceCrashed => write!(f, "sending node is crashed"),
        }
    }
}

impl std::error::Error for SendError {}

/// Errors returned by the receive operations on [`Endpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecvError {
    /// No frame arrived before the timeout expired.
    Timeout,
    /// The receiving node is crashed.
    Crashed,
    /// The network was dropped.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Crashed => write!(f, "receiving node is crashed"),
            RecvError::Disconnected => write!(f, "network disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

struct NodeSlot {
    tx: Sender<Frame>,
    /// Kept so [`Network::restart`] can drain frames queued while crashed.
    rx: Receiver<Frame>,
    clock: Arc<VirtualClock>,
    crashed: Arc<AtomicBool>,
}

/// Compiled [`FaultSchedule`] plus the application cursor.
#[derive(Default)]
struct ScheduleState {
    events: Vec<FaultEvent>,
    /// Index of the first event not yet applied.
    next: usize,
    /// Highest virtual time the schedule has been advanced to.
    high_water: Vt,
}

/// Frames held back by reorder faults may queue up to this many per
/// destination before newer traffic forces delivery.
const REORDER_LIMBO_CAP: usize = 4;

struct NetInner {
    cost: CostModel,
    nodes: RwLock<HashMap<NodeId, NodeSlot>>,
    faults: Mutex<FaultPlan>,
    rng: Mutex<StdRng>,
    stats: Stats,
    seq: AtomicU64,
    schedule: Mutex<ScheduleState>,
    /// Frames held back by reorder faults, per destination; they are
    /// released after the next normally-delivered frame to that node.
    limbo: Mutex<BTreeMap<NodeId, Vec<Frame>>>,
}

/// Handle to the simulated network; cheap to clone.
///
/// One `Network` models one Ethernet segment connecting all Clouds
/// compute servers, data servers and user workstations (paper Figure 3).
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetInner>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.inner.nodes.read().len())
            .field("stats", &self.inner.stats.snapshot())
            .finish()
    }
}

impl Network {
    /// Create a network with the given cost model and a fixed default seed.
    pub fn new(cost: CostModel) -> Network {
        Network::with_seed(cost, 0xC10D5)
    }

    /// Create a network whose fault randomness is driven by `seed`.
    pub fn with_seed(cost: CostModel, seed: u64) -> Network {
        Network {
            inner: Arc::new(NetInner {
                cost,
                nodes: RwLock::new(HashMap::new()),
                faults: Mutex::new(FaultPlan::none()),
                rng: Mutex::new(StdRng::seed_from_u64(seed)),
                stats: Stats::default(),
                seq: AtomicU64::new(0),
                schedule: Mutex::new(ScheduleState::default()),
                limbo: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Attach a node and return its endpoint.
    ///
    /// # Errors
    ///
    /// Returns `None` if `id` is already registered.
    #[allow(clippy::result_unit_err)]
    pub fn register(&self, id: NodeId) -> Option<Endpoint> {
        let mut nodes = self.inner.nodes.write();
        if nodes.contains_key(&id) {
            return None;
        }
        let (tx, rx) = channel::unbounded();
        let clock = Arc::new(VirtualClock::new());
        let crashed = Arc::new(AtomicBool::new(false));
        nodes.insert(
            id,
            NodeSlot {
                tx,
                rx: rx.clone(),
                clock: Arc::clone(&clock),
                crashed: Arc::clone(&crashed),
            },
        );
        Some(Endpoint {
            id,
            clock,
            rx,
            crashed,
            net: Arc::clone(&self.inner),
        })
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Virtual clock of a registered node.
    pub fn clock(&self, id: NodeId) -> Option<Arc<VirtualClock>> {
        self.inner.nodes.read().get(&id).map(|s| Arc::clone(&s.clock))
    }

    /// Replace the whole fault plan.
    pub fn set_faults(&self, plan: FaultPlan) {
        *self.inner.faults.lock() = plan;
    }

    /// Set the global frame loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_loss(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.inner.faults.lock().global_loss = p;
    }

    /// Set the loss probability of the directed link `src → dst`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_link_loss(&self, src: NodeId, dst: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.inner.faults.lock().link_loss.insert((src, dst), p);
    }

    /// Set the frame duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_duplication(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "duplication probability out of range");
        self.inner.faults.lock().duplication = p;
    }

    /// Partition the network between `left` and `right` node sets.
    pub fn partition(&self, left: &[NodeId], right: &[NodeId]) {
        self.inner.faults.lock().partition(left, right);
    }

    /// Remove all partitions.
    pub fn heal(&self) {
        self.inner.faults.lock().heal();
    }

    /// Crash a node: frames to and from it are dropped until
    /// [`Network::restart`].
    pub fn crash(&self, id: NodeId) {
        if let Some(slot) = self.inner.nodes.read().get(&id) {
            slot.crashed.store(true, Ordering::Release);
        }
    }

    /// Restart a crashed node, discarding any frames queued while it was
    /// down (they were "on the wire" to a dead machine).
    pub fn restart(&self, id: NodeId) {
        if let Some(slot) = self.inner.nodes.read().get(&id) {
            while slot.rx.try_recv().is_ok() {}
            slot.crashed.store(false, Ordering::Release);
        }
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.inner
            .nodes
            .read()
            .get(&id)
            .is_some_and(|s| s.crashed.load(Ordering::Acquire))
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> NetworkStats {
        self.inner.stats.snapshot()
    }

    /// Install a time-varying fault schedule.
    ///
    /// The current fault plan is replaced with a clean one; the schedule's
    /// compiled events then fire as virtual time advances past them.
    /// Virtual time is observed at each send (the sender's clock), so
    /// events apply lazily with traffic; use
    /// [`Network::advance_schedule_to`] to force all events up to an
    /// instant — e.g. the schedule horizon — regardless of traffic.
    pub fn set_schedule(&self, schedule: &FaultSchedule) {
        let events = schedule.events();
        let mut sched = self.inner.schedule.lock();
        *self.inner.faults.lock() = FaultPlan::none();
        *sched = ScheduleState {
            events,
            next: 0,
            high_water: Vt::ZERO,
        };
    }

    /// Apply every schedule event with threshold `≤ t` and release any
    /// frames held back by reorder faults.
    ///
    /// Calling this with a time at or past [`FaultSchedule::healed_by`]
    /// guarantees the network is fully healed: all scheduled crashes have
    /// restarted, partitions are reconnected, and probabilistic faults are
    /// back to zero.
    pub fn advance_schedule_to(&self, t: Vt) {
        self.inner.apply_schedule(t);
        self.inner.flush_limbo();
    }

    /// Number of schedule events not yet applied.
    pub fn schedule_pending(&self) -> usize {
        let sched = self.inner.schedule.lock();
        sched.events.len() - sched.next
    }

    /// Highest virtual clock across all registered nodes — a convenient
    /// "global now" for driving [`Network::advance_schedule_to`].
    pub fn max_now(&self) -> Vt {
        self.inner
            .nodes
            .read()
            // lint:allow(hash-iter) — commutative max.
            .values()
            .map(|s| s.clock.now())
            .max()
            .unwrap_or(Vt::ZERO)
    }
}

impl NetInner {
    fn deliver(&self, src: NodeId, src_now: Vt, dst: NodeId, payload: Bytes) -> Result<(), SendError> {
        if payload.len() > MTU {
            return Err(SendError::FrameTooLarge(payload.len()));
        }
        // Fire schedule events virtual time has reached, before taking the
        // node table lock (applying a crash/restart needs it too).
        self.apply_schedule(src_now);
        let nodes = self.nodes.read();
        let slot = nodes.get(&dst).ok_or(SendError::UnknownNode(dst))?;

        let (lost, duplicated, jitter, corrupt_at, stash) = {
            let faults = self.faults.lock();
            if faults.is_partitioned(src, dst) {
                self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                return Ok(()); // silently dropped, like a cut cable
            }
            let loss = faults.loss_probability(src, dst);
            let mut rng = self.rng.lock();
            let lost = loss > 0.0 && rng.gen_bool(loss.clamp(0.0, 1.0));
            let duplicated =
                faults.duplication > 0.0 && rng.gen_bool(faults.duplication.clamp(0.0, 1.0));
            let jitter = if faults.jitter > Vt::ZERO {
                Vt::from_nanos(rng.gen_range(0..=faults.jitter.as_nanos()))
            } else {
                Vt::ZERO
            };
            let corrupt_at = (!payload.is_empty()
                && faults.corruption > 0.0
                && rng.gen_bool(faults.corruption.clamp(0.0, 1.0)))
            .then(|| (rng.gen_range(0..payload.len()), rng.gen_range(0..8u32)));
            let stash = faults.reorder > 0.0 && rng.gen_bool(faults.reorder.clamp(0.0, 1.0));
            (lost, duplicated, jitter, corrupt_at, stash)
        };

        if slot.crashed.load(Ordering::Acquire) || lost {
            self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        let payload = match corrupt_at {
            Some((idx, bit)) => {
                self.stats.frames_corrupted.fetch_add(1, Ordering::Relaxed);
                let mut bytes = payload.to_vec();
                bytes[idx] ^= 1 << bit;
                Bytes::from(bytes)
            }
            None => payload,
        };

        let arrival = src_now + self.cost.frame_delay(payload.len()) + jitter;
        let frame = Frame {
            src,
            dst,
            payload,
            arrival,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add(frame.len() as u64, Ordering::Relaxed);

        if stash {
            let mut limbo = self.limbo.lock();
            let held = limbo.entry(dst).or_default();
            if held.len() < REORDER_LIMBO_CAP {
                self.stats.frames_reordered.fetch_add(1, Ordering::Relaxed);
                held.push(frame);
                return Ok(());
            }
        }

        if duplicated {
            self.stats.frames_duplicated.fetch_add(1, Ordering::Relaxed);
            // lint:allow(lock-across-call) — slot.tx is unbounded; send never blocks.
            let _ = slot.tx.send(frame.clone());
        }
        // lint:allow(lock-across-call) — slot.tx is unbounded; send never blocks.
        let _ = slot.tx.send(frame);
        // Anything held back for this destination now goes out *after*
        // the newer frame — that is the reordering. Take the batch out
        // under the lock, send after releasing it.
        let held = self.limbo.lock().remove(&dst);
        if let Some(held) = held {
            for f in held {
                // lint:allow(lock-across-call) — slot.tx is unbounded; send never blocks.
                let _ = slot.tx.send(f);
            }
        }
        Ok(())
    }

    /// Apply every schedule event with threshold `≤ now`, in order.
    fn apply_schedule(&self, now: Vt) {
        let mut sched = self.schedule.lock();
        if now > sched.high_water {
            sched.high_water = now;
        }
        while let Some(event) = sched.events.get(sched.next) {
            if event.at > now {
                break;
            }
            let action = event.action.clone();
            sched.next += 1;
            // lint:allow(lock-across-call) — apply_action only feeds
            // unbounded in-process queues; holding the schedule lock
            // keeps fault application atomic w.r.t. the threshold.
            self.apply_action(&action);
        }
    }

    fn apply_action(&self, action: &FaultAction) {
        match action {
            FaultAction::Crash(id) => {
                if let Some(slot) = self.nodes.read().get(id) {
                    slot.crashed.store(true, Ordering::Release);
                }
            }
            FaultAction::Restart(id) => {
                if let Some(slot) = self.nodes.read().get(id) {
                    while slot.rx.try_recv().is_ok() {}
                    slot.crashed.store(false, Ordering::Release);
                }
            }
            FaultAction::Partition { left, right } => self.faults.lock().partition(left, right),
            FaultAction::Unpartition { left, right } => {
                self.faults.lock().unpartition(left, right)
            }
            FaultAction::SetLoss(p) => self.faults.lock().global_loss = *p,
            FaultAction::SetDuplication(p) => self.faults.lock().duplication = *p,
            FaultAction::SetJitter(j) => self.faults.lock().jitter = *j,
            FaultAction::SetReorder(p) => {
                self.faults.lock().reorder = *p;
                if *p == 0.0 {
                    // The reorder window closed; release held frames so
                    // none are stranded.
                    self.flush_limbo();
                }
            }
            FaultAction::SetCorruption(p) => self.faults.lock().corruption = *p,
        }
    }

    /// Deliver (or, for crashed destinations, drop) every frame held back
    /// by reorder faults.
    fn flush_limbo(&self) {
        let nodes = self.nodes.read();
        let drained = std::mem::take(&mut *self.limbo.lock());
        for (dst, frames) in drained {
            if let Some(slot) = nodes.get(&dst) {
                if slot.crashed.load(Ordering::Acquire) {
                    self.stats
                        .frames_dropped
                        .fetch_add(frames.len() as u64, Ordering::Relaxed);
                } else {
                    for f in frames {
                        // lint:allow(lock-across-call) — slot.tx is unbounded; send never blocks.
                        let _ = slot.tx.send(f);
                    }
                }
            }
        }
    }
}

/// A node's attachment to the network.
///
/// Owned by the node's kernel; receive operations advance the node's
/// virtual clock to each frame's arrival time, so "waiting for the wire"
/// is visible in virtual time without any real sleeping.
pub struct Endpoint {
    id: NodeId,
    clock: Arc<VirtualClock>,
    rx: Receiver<Frame>,
    crashed: Arc<AtomicBool>,
    net: Arc<NetInner>,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("now", &self.clock.now())
            .finish()
    }
}

impl Endpoint {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The network's cost model (shared by all nodes).
    pub fn cost_model(&self) -> &CostModel {
        &self.net.cost
    }

    /// Transmit one frame.
    ///
    /// # Errors
    ///
    /// Fails if the payload exceeds [`MTU`], the destination is unknown,
    /// or this node is crashed. Loss/partition faults are *not* errors —
    /// the frame silently disappears, as on a real wire.
    pub fn send(&self, dst: NodeId, payload: Bytes) -> Result<(), SendError> {
        if self.crashed.load(Ordering::Acquire) {
            return Err(SendError::SourceCrashed);
        }
        self.net.deliver(self.id, self.clock.now(), dst, payload)
    }

    /// Receive the next frame, waiting up to `timeout` of *real* time.
    ///
    /// On success the node's virtual clock advances to the frame's
    /// arrival instant.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived, [`RecvError::Crashed`]
    /// if this node is down, [`RecvError::Disconnected`] if the network
    /// was dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Frame, RecvError> {
        if self.crashed.load(Ordering::Acquire) {
            return Err(RecvError::Crashed);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => {
                if self.crashed.load(Ordering::Acquire) {
                    return Err(RecvError::Crashed);
                }
                self.clock.advance_to(frame.arrival);
                Ok(frame)
            }
            Err(channel::RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Receive without blocking.
    ///
    /// # Errors
    ///
    /// Same as [`Endpoint::recv_timeout`], with [`RecvError::Timeout`]
    /// meaning "no frame queued right now".
    pub fn try_recv(&self) -> Result<Frame, RecvError> {
        self.recv_timeout(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cost: CostModel) -> (Network, Endpoint, Endpoint) {
        let net = Network::new(cost);
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        (net, a, b)
    }

    #[test]
    fn basic_delivery_advances_clock() {
        let (_net, a, b) = pair(CostModel::sun3_ethernet());
        a.send(NodeId(2), Bytes::from(vec![0u8; 72])).unwrap();
        let f = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(f.src, NodeId(1));
        assert_eq!(f.len(), 72);
        assert_eq!(b.clock().now(), Vt::from_micros(1200));
    }

    #[test]
    fn echo_round_trip_matches_paper() {
        let (_net, a, b) = pair(CostModel::sun3_ethernet());
        a.send(NodeId(2), Bytes::from(vec![0u8; 72])).unwrap();
        let f = b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.send(NodeId(1), f.payload).unwrap();
        a.recv_timeout(Duration::from_secs(1)).unwrap();
        // Paper §4.3: Ethernet round trip for a short (72 byte) message
        // is 2.4 ms.
        assert_eq!(a.clock().now(), Vt::from_micros(2400));
    }

    #[test]
    fn oversized_frame_rejected() {
        let (_net, a, _b) = pair(CostModel::zero());
        let err = a.send(NodeId(2), Bytes::from(vec![0u8; MTU + 1])).unwrap_err();
        assert_eq!(err, SendError::FrameTooLarge(MTU + 1));
    }

    #[test]
    fn unknown_destination_rejected() {
        let (_net, a, _b) = pair(CostModel::zero());
        let err = a.send(NodeId(9), Bytes::new()).unwrap_err();
        assert_eq!(err, SendError::UnknownNode(NodeId(9)));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let net = Network::new(CostModel::zero());
        assert!(net.register(NodeId(1)).is_some());
        assert!(net.register(NodeId(1)).is_none());
    }

    #[test]
    fn total_loss_drops_everything() {
        let (net, a, b) = pair(CostModel::zero());
        net.set_loss(1.0);
        for _ in 0..10 {
            a.send(NodeId(2), Bytes::from_static(b"x")).unwrap();
        }
        assert!(matches!(b.try_recv(), Err(RecvError::Timeout)));
        assert_eq!(net.stats().frames_dropped, 10);
    }

    #[test]
    fn partition_blocks_both_directions_and_heals() {
        let (net, a, b) = pair(CostModel::zero());
        net.partition(&[NodeId(1)], &[NodeId(2)]);
        a.send(NodeId(2), Bytes::from_static(b"x")).unwrap();
        b.send(NodeId(1), Bytes::from_static(b"y")).unwrap();
        assert!(matches!(a.try_recv(), Err(RecvError::Timeout)));
        assert!(matches!(b.try_recv(), Err(RecvError::Timeout)));
        net.heal();
        a.send(NodeId(2), Bytes::from_static(b"x")).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn crash_and_restart() {
        let (net, a, b) = pair(CostModel::zero());
        net.crash(NodeId(2));
        assert!(net.is_crashed(NodeId(2)));
        a.send(NodeId(2), Bytes::from_static(b"lost")).unwrap();
        assert!(matches!(b.try_recv(), Err(RecvError::Crashed)));
        assert!(matches!(
            b.send(NodeId(1), Bytes::new()),
            Err(SendError::SourceCrashed)
        ));
        net.restart(NodeId(2));
        assert!(!net.is_crashed(NodeId(2)));
        // The frame sent while crashed is gone.
        assert!(matches!(b.try_recv(), Err(RecvError::Timeout)));
        a.send(NodeId(2), Bytes::from_static(b"alive")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(1)).unwrap().payload[..],
            b"alive"
        );
    }

    #[test]
    fn duplication_injects_copies() {
        let (net, a, b) = pair(CostModel::zero());
        net.set_duplication(1.0);
        a.send(NodeId(2), Bytes::from_static(b"d")).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
        assert_eq!(net.stats().frames_duplicated, 1);
    }

    #[test]
    fn seeded_loss_is_reproducible() {
        let observed: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let net = Network::with_seed(CostModel::zero(), 42);
                let a = net.register(NodeId(1)).unwrap();
                let b = net.register(NodeId(2)).unwrap();
                net.set_loss(0.5);
                let mut got = Vec::new();
                for i in 0..32u64 {
                    a.send(NodeId(2), Bytes::from(i.to_le_bytes().to_vec())).unwrap();
                    if let Ok(f) = b.try_recv() {
                        got.push(u64::from_le_bytes(f.payload[..].try_into().unwrap()));
                    }
                }
                got
            })
            .collect();
        assert_eq!(observed[0], observed[1]);
        assert!(!observed[0].is_empty());
        assert!(observed[0].len() < 32);
    }

    #[test]
    fn stats_count_bytes() {
        let (net, a, b) = pair(CostModel::zero());
        a.send(NodeId(2), Bytes::from(vec![0u8; 100])).unwrap();
        a.send(NodeId(2), Bytes::from(vec![0u8; 50])).unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        let s = net.stats();
        assert_eq!(s.frames_sent, 2);
        assert_eq!(s.bytes_sent, 150);
    }

    #[test]
    fn clock_only_moves_forward_across_messages() {
        let (_net, a, b) = pair(CostModel::sun3_ethernet());
        // b does heavy local work first.
        b.clock().charge(Vt::from_millis(50));
        a.send(NodeId(2), Bytes::from_static(b"x")).unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        // Arrival (≈1.2ms) is in b's past; clock must not rewind.
        assert!(b.clock().now() >= Vt::from_millis(50));
    }

    // ---- schedule engine -------------------------------------------------

    use crate::schedule::{Disruption, DisruptionKind};

    fn window(at: Vt, until: Vt, kind: DisruptionKind) -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            disruptions: vec![Disruption { at, until, kind }],
        }
    }

    #[test]
    fn schedule_crash_applies_and_recovers_with_virtual_time() {
        let (net, a, b) = pair(CostModel::zero());
        net.set_schedule(&window(
            Vt::from_millis(1),
            Vt::from_millis(2),
            DisruptionKind::Crash(NodeId(2)),
        ));
        // Before the window: delivered.
        a.send(NodeId(2), Bytes::from_static(b"pre")).unwrap();
        assert!(b.try_recv().is_ok());
        // Advance the sender's clock into the window; sending applies the
        // crash, so the frame is lost.
        a.clock().charge(Vt::from_millis(1));
        a.send(NodeId(2), Bytes::from_static(b"mid")).unwrap();
        assert!(matches!(b.try_recv(), Err(RecvError::Crashed)));
        // Past the window: the restart fires before delivery.
        a.clock().charge(Vt::from_millis(1));
        a.send(NodeId(2), Bytes::from_static(b"post")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(1)).unwrap().payload[..],
            b"post"
        );
        assert_eq!(net.schedule_pending(), 0);
    }

    #[test]
    fn schedule_corruption_flips_exactly_one_bit() {
        let (net, a, b) = pair(CostModel::zero());
        net.set_schedule(&window(
            Vt::ZERO,
            Vt::from_millis(10),
            DisruptionKind::Corruption(1.0),
        ));
        let sent = vec![0u8; 64];
        a.send(NodeId(2), Bytes::from(sent.clone())).unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap().payload;
        let diff_bits: u32 = got.iter().zip(&sent).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert_eq!(diff_bits, 1);
        assert_eq!(net.stats().frames_corrupted, 1);
    }

    #[test]
    fn schedule_reordering_delivers_out_of_order() {
        let (net, a, b) = pair(CostModel::zero());
        net.set_schedule(&window(
            Vt::ZERO,
            Vt::from_millis(10),
            DisruptionKind::Reorder(1.0),
        ));
        for i in 0..5u8 {
            a.send(NodeId(2), Bytes::from(vec![i])).unwrap();
        }
        let mut got = Vec::new();
        while let Ok(f) = b.try_recv() {
            got.push(f.payload[0]);
        }
        // All five arrive (the limbo cap forces the flush), out of order.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_ne!(got, vec![0, 1, 2, 3, 4]);
        assert!(net.stats().frames_reordered >= 1);
    }

    #[test]
    fn schedule_jitter_delays_arrival() {
        let (_net, a, b) = pair(CostModel::zero());
        _net.set_schedule(&window(
            Vt::ZERO,
            Vt::from_millis(10),
            DisruptionKind::Jitter(Vt::from_millis(1)),
        ));
        a.send(NodeId(2), Bytes::from_static(b"j")).unwrap();
        let f = b.recv_timeout(Duration::from_secs(1)).unwrap();
        // Zero cost model: any delay is pure jitter, within the bound.
        assert!(f.arrival <= Vt::from_millis(1));
        assert!(f.arrival > Vt::ZERO);
    }

    #[test]
    fn advance_schedule_to_flushes_reorder_limbo() {
        let (net, a, b) = pair(CostModel::zero());
        net.set_schedule(&window(
            Vt::ZERO,
            Vt::from_millis(1),
            DisruptionKind::Reorder(1.0),
        ));
        a.send(NodeId(2), Bytes::from_static(b"one")).unwrap();
        a.send(NodeId(2), Bytes::from_static(b"two")).unwrap();
        // Both are stashed; nothing is deliverable yet.
        assert!(matches!(b.try_recv(), Err(RecvError::Timeout)));
        net.advance_schedule_to(Vt::from_millis(2));
        assert!(b.try_recv().is_ok());
        assert!(b.try_recv().is_ok());
        assert_eq!(net.schedule_pending(), 0);
    }

    #[test]
    fn generated_schedules_always_heal_by_horizon() {
        let horizon = Vt::from_millis(20);
        for seed in 0..10 {
            let net = Network::with_seed(CostModel::zero(), seed);
            let a = net.register(NodeId(1)).unwrap();
            let b = net.register(NodeId(2)).unwrap();
            let _c = net.register(NodeId(3)).unwrap();
            let schedule = FaultSchedule::generate(seed, &[NodeId(3)], horizon);
            net.set_schedule(&schedule);
            // Drive traffic across the whole horizon so events fire.
            for step in 0..40u64 {
                a.clock().charge(Vt::from_micros(500));
                let _ = a.send(NodeId(2), Bytes::from(step.to_le_bytes().to_vec()));
            }
            net.advance_schedule_to(horizon);
            assert_eq!(net.schedule_pending(), 0, "seed {seed}");
            assert!(!net.is_crashed(NodeId(3)), "seed {seed}");
            // Fault-free again: a fresh frame goes straight through.
            while b.try_recv().is_ok() {}
            a.send(NodeId(2), Bytes::from_static(b"after")).unwrap();
            assert_eq!(
                &b.recv_timeout(Duration::from_secs(1)).unwrap().payload[..],
                b"after",
                "seed {seed}"
            );
        }
    }
}
