//! Virtual time: logical nanosecond clocks used for all performance
//! accounting in the reproduction.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Vt` is used both as a timestamp ("the frame arrives at `t`") and as a
/// duration ("a context switch costs 140 µs"); the paper's numbers are all
/// durations, so no distinct duration type is warranted.
///
/// ```
/// use clouds_simnet::Vt;
/// let t = Vt::from_micros(140);
/// assert_eq!(t + Vt::from_micros(60), Vt::from_micros(200));
/// assert_eq!(t.as_millis_f64(), 0.14);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vt(u64);

impl Vt {
    /// Virtual time zero.
    pub const ZERO: Vt = Vt(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Vt {
        Vt(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Vt {
        Vt(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Vt {
        Vt(ms * 1_000_000)
    }

    /// Nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microsecond value (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Millisecond value as floating point, convenient for reports.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction; `Vt` never goes negative.
    pub fn saturating_sub(self, rhs: Vt) -> Vt {
        Vt(self.0.saturating_sub(rhs.0))
    }

    /// Scale a cost by a count (e.g. per-byte costs). Saturates instead
    /// of wrapping, unlike `ops::Mul` would suggest — hence a method.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, times: u64) -> Vt {
        Vt(self.0.saturating_mul(times))
    }
}

impl Add for Vt {
    type Output = Vt;

    fn add(self, rhs: Vt) -> Vt {
        Vt(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Vt {
    fn add_assign(&mut self, rhs: Vt) {
        *self = *self + rhs;
    }
}

impl Sub for Vt {
    type Output = Vt;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use
    /// [`Vt::saturating_sub`] when the ordering is not guaranteed.
    fn sub(self, rhs: Vt) -> Vt {
        debug_assert!(self.0 >= rhs.0, "virtual time went backwards");
        Vt(self.0.saturating_sub(rhs.0))
    }
}

impl From<Duration> for Vt {
    fn from(d: Duration) -> Vt {
        Vt(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

impl fmt::Display for Vt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A monotonic per-node logical clock.
///
/// Computation *charges* costs ([`VirtualClock::charge`]); message receipt
/// *advances* the clock to the arrival timestamp
/// ([`VirtualClock::advance_to`]). Both are lock-free and safe to call from
/// any thread of the simulated node.
///
/// ```
/// use clouds_simnet::{VirtualClock, Vt};
/// let clock = VirtualClock::new();
/// clock.charge(Vt::from_micros(140));
/// clock.advance_to(Vt::from_micros(100)); // in the past: no-op
/// assert_eq!(clock.now(), Vt::from_micros(140));
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A fresh clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Vt {
        Vt(self.now_ns.load(Ordering::Acquire))
    }

    /// Advance by `cost`, returning the new time.
    pub fn charge(&self, cost: Vt) -> Vt {
        Vt(self.now_ns.fetch_add(cost.0, Ordering::AcqRel) + cost.0)
    }

    /// Advance to at least `t` (no-op if already past), returning the
    /// resulting time.
    pub fn advance_to(&self, t: Vt) -> Vt {
        let prev = self.now_ns.fetch_max(t.0, Ordering::AcqRel);
        Vt(prev.max(t.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Vt::from_millis(1), Vt::from_micros(1000));
        assert_eq!(Vt::from_micros(1), Vt::from_nanos(1000));
    }

    #[test]
    fn arithmetic() {
        let a = Vt::from_nanos(100);
        let b = Vt::from_nanos(40);
        assert_eq!(a + b, Vt::from_nanos(140));
        assert_eq!(a - b, Vt::from_nanos(60));
        assert_eq!(b.saturating_sub(a), Vt::ZERO);
        assert_eq!(b.mul(3), Vt::from_nanos(120));
    }

    #[test]
    fn display_scales() {
        assert_eq!(Vt::from_nanos(5).to_string(), "5ns");
        assert_eq!(Vt::from_micros(5).to_string(), "5.000us");
        assert_eq!(Vt::from_millis(5).to_string(), "5.000ms");
    }

    #[test]
    fn clock_charges_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Vt::ZERO);
        assert_eq!(c.charge(Vt::from_nanos(10)), Vt::from_nanos(10));
        assert_eq!(c.advance_to(Vt::from_nanos(5)), Vt::from_nanos(10));
        assert_eq!(c.advance_to(Vt::from_nanos(50)), Vt::from_nanos(50));
        assert_eq!(c.now(), Vt::from_nanos(50));
    }

    #[test]
    fn clock_is_monotonic_under_concurrency() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut last = Vt::ZERO;
                for _ in 0..1000 {
                    let t = c.charge(Vt::from_nanos(3));
                    assert!(t > last);
                    last = t;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), Vt::from_nanos(4 * 1000 * 3));
    }

    #[test]
    fn duration_conversion() {
        let v: Vt = Duration::from_millis(2).into();
        assert_eq!(v, Vt::from_millis(2));
    }
}
