//! Link-level frames.

use crate::time::Vt;
use crate::NodeId;
use bytes::Bytes;

/// Maximum payload of a single frame, in bytes (Ethernet MTU).
///
/// Larger transfers must be fragmented by the transport layer
/// (`clouds-ratp`), exactly as RaTP did over the real Ethernet.
pub const MTU: usize = 1500;

/// A frame delivered by the simulated network.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload (at most [`MTU`] bytes).
    pub payload: Bytes,
    /// Virtual-time instant at which the frame reaches the destination.
    pub arrival: Vt,
    /// Per-network monotonically increasing sequence number, for tracing.
    pub seq: u64,
}

impl Frame {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_len() {
        let f = Frame {
            src: NodeId(1),
            dst: NodeId(2),
            payload: Bytes::from_static(b"abc"),
            arrival: Vt::ZERO,
            seq: 0,
        };
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }
}
