//! Network traffic counters, used by the experiments (e.g. DSM page
//! traffic in experiment E4).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters maintained by the network; snapshot with
/// [`Stats::snapshot`].
#[derive(Debug, Default)]
pub(crate) struct Stats {
    pub frames_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub frames_dropped: AtomicU64,
    pub frames_duplicated: AtomicU64,
    pub frames_corrupted: AtomicU64,
    pub frames_reordered: AtomicU64,
}

impl Stats {
    pub(crate) fn snapshot(&self) -> NetworkStats {
        NetworkStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            frames_duplicated: self.frames_duplicated.load(Ordering::Relaxed),
            frames_corrupted: self.frames_corrupted.load(Ordering::Relaxed),
            frames_reordered: self.frames_reordered.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of network traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Frames successfully enqueued for delivery.
    pub frames_sent: u64,
    /// Total payload bytes of delivered frames.
    pub bytes_sent: u64,
    /// Frames dropped by loss, partitions, or crashed destinations.
    pub frames_dropped: u64,
    /// Extra copies injected by duplication faults.
    pub frames_duplicated: u64,
    /// Frames whose payload had a bit flipped by corruption faults.
    pub frames_corrupted: u64,
    /// Frames held back and delivered out of order by reorder faults.
    pub frames_reordered: u64,
}

impl NetworkStats {
    /// Difference between two snapshots (`self` must be the later one).
    pub fn since(&self, earlier: &NetworkStats) -> NetworkStats {
        NetworkStats {
            frames_sent: self.frames_sent - earlier.frames_sent,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            frames_dropped: self.frames_dropped - earlier.frames_dropped,
            frames_duplicated: self.frames_duplicated - earlier.frames_duplicated,
            frames_corrupted: self.frames_corrupted - earlier.frames_corrupted,
            frames_reordered: self.frames_reordered - earlier.frames_reordered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let s = Stats::default();
        s.frames_sent.store(10, Ordering::Relaxed);
        s.bytes_sent.store(100, Ordering::Relaxed);
        let a = s.snapshot();
        s.frames_sent.store(15, Ordering::Relaxed);
        s.bytes_sent.store(180, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.frames_sent, 5);
        assert_eq!(d.bytes_sent, 80);
    }
}
