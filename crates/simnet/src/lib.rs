//! `clouds-simnet` — the simulated Ethernet substrate for the Clouds
//! reproduction.
//!
//! The original Clouds system ran on Sun-3 machines on a 10 Mb/s Ethernet.
//! This crate replaces that hardware with an in-process frame network:
//!
//! * **Nodes** are identified by [`NodeId`] and own a [`VirtualClock`], a
//!   monotonic logical clock in nanoseconds. All performance numbers in the
//!   reproduction are measured in *virtual time*: computation charges
//!   calibrated costs to the local clock, and a frame arriving at time `t`
//!   advances the receiver's clock to at least `t`.
//! * **Frames** carry up to [`MTU`] bytes of payload (Ethernet-sized). The
//!   transfer delay of a frame is `frame_base + len × per_byte` from the
//!   active [`CostModel`]; the [`CostModel::sun3_ethernet`] preset is
//!   calibrated so the paper's §4.3 microbenchmarks are reproducible in
//!   shape (2.4 ms round trip for a 72-byte message, etc.).
//! * **Faults** — probabilistic loss and duplication, network partitions,
//!   and node crash/restart — are injected through the [`Network`] handle,
//!   driven by a seeded RNG for reproducibility.
//!
//! Higher layers (`clouds-ratp`, the DSM, the Clouds object system) only
//! see [`Endpoint::send`] / [`Endpoint::recv_timeout`], so every protocol
//! runs against the same unreliable-datagram semantics the real system had.
//!
//! # Examples
//!
//! ```
//! use clouds_simnet::{CostModel, Network, NodeId};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let net = Network::new(CostModel::sun3_ethernet());
//! let a = net.register(NodeId(1)).unwrap();
//! let b = net.register(NodeId(2)).unwrap();
//!
//! a.send(NodeId(2), Bytes::from_static(b"ping")).unwrap();
//! let frame = b.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(&frame.payload[..], b"ping");
//! // The receiver's virtual clock advanced by the modeled wire delay.
//! assert!(b.clock().now().as_nanos() > 0);
//! ```

#![forbid(unsafe_code)]

mod cost;
mod fault;
mod frame;
mod network;
mod schedule;
mod stats;
mod time;

pub use cost::CostModel;
pub use fault::FaultPlan;
pub use frame::{Frame, MTU};
pub use network::{Endpoint, Network, RecvError, SendError};
pub use schedule::{Disruption, DisruptionKind, FaultAction, FaultEvent, FaultSchedule};
pub use stats::NetworkStats;
pub use time::{VirtualClock, Vt};

/// Identifier of a simulated machine on the network.
///
/// Node ids are assigned by the cluster assembly layer; the network only
/// requires them to be unique per [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node7");
    }

    #[test]
    fn node_id_ordering() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }
}
