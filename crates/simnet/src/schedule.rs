//! Time-varying fault schedules: the chaos engine's input language.
//!
//! A [`FaultSchedule`] is a list of [`Disruption`]s — windows of virtual
//! time during which one fault (node crash, partition, loss, duplication,
//! jitter, reordering, corruption) is in force. Schedules are either built
//! by hand or generated from a single `u64` seed with
//! [`FaultSchedule::generate`], which makes every chaos run replayable
//! from one number.
//!
//! A schedule compiles ([`FaultSchedule::events`]) into a time-sorted list
//! of paired start/end [`FaultEvent`]s. The pairing matters for shrinking:
//! removing a whole [`Disruption`] (via [`FaultSchedule::without`]) always
//! removes both its onset and its recovery, so a shrunk schedule can never
//! leave a node crashed or a partition open "for free".
//!
//! The [`crate::Network`] applies events lazily as virtual time advances
//! past them (see [`crate::Network::set_schedule`]), so no real-time timers
//! are involved and runs stay reproducible.

use crate::time::Vt;
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One kind of fault a [`Disruption`] injects while active.
#[derive(Debug, Clone, PartialEq)]
pub enum DisruptionKind {
    /// Crash a node at the window start; restart it at the window end.
    Crash(NodeId),
    /// Partition the `left` node set from the `right` set, healing those
    /// pairs (and only those pairs) at the window end.
    Partition {
        /// Nodes on one side of the cut.
        left: Vec<NodeId>,
        /// Nodes on the other side.
        right: Vec<NodeId>,
    },
    /// Global frame loss probability while active.
    Loss(f64),
    /// Frame duplication probability while active.
    Duplication(f64),
    /// Maximum extra per-frame delay while active.
    Jitter(Vt),
    /// Frame reordering probability while active.
    Reorder(f64),
    /// Single-bit payload corruption probability while active.
    Corruption(f64),
}

impl fmt::Display for DisruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisruptionKind::Crash(id) => write!(f, "crash {id}"),
            DisruptionKind::Partition { left, right } => {
                write!(f, "partition {left:?} | {right:?}")
            }
            DisruptionKind::Loss(p) => write!(f, "loss {p:.2}"),
            DisruptionKind::Duplication(p) => write!(f, "duplication {p:.2}"),
            DisruptionKind::Jitter(j) => write!(f, "jitter {j}"),
            DisruptionKind::Reorder(p) => write!(f, "reorder {p:.2}"),
            DisruptionKind::Corruption(p) => write!(f, "corruption {p:.2}"),
        }
    }
}

/// One fault window: `kind` is in force for virtual times in
/// `[at, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Disruption {
    /// Window start (inclusive).
    pub at: Vt,
    /// Window end (exclusive); the recovery action fires here.
    pub until: Vt,
    /// The fault in force during the window.
    pub kind: DisruptionKind,
}

impl fmt::Display for Disruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} → {}] {}", self.at, self.until, self.kind)
    }
}

/// What a single compiled [`FaultEvent`] does to the network.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Mark a node crashed.
    Crash(NodeId),
    /// Restart a crashed node, discarding frames queued while down.
    Restart(NodeId),
    /// Open a partition between two node sets.
    Partition {
        /// Nodes on one side of the cut.
        left: Vec<NodeId>,
        /// Nodes on the other side.
        right: Vec<NodeId>,
    },
    /// Heal exactly the pairs a matching `Partition` opened.
    Unpartition {
        /// Nodes on one side of the healed cut.
        left: Vec<NodeId>,
        /// Nodes on the other side.
        right: Vec<NodeId>,
    },
    /// Set the global loss probability.
    SetLoss(f64),
    /// Set the duplication probability.
    SetDuplication(f64),
    /// Set the maximum per-frame jitter.
    SetJitter(Vt),
    /// Set the reordering probability.
    SetReorder(f64),
    /// Set the corruption probability.
    SetCorruption(f64),
}

/// One compiled schedule entry: apply `action` once virtual time reaches
/// `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Virtual-time threshold.
    pub at: Vt,
    /// True for a disruption onset, false for its recovery; recoveries
    /// sort before onsets at the same instant.
    pub is_start: bool,
    /// The state change to apply.
    pub action: FaultAction,
}

/// A complete chaos scenario: a seed (for provenance) plus the disruption
/// windows to apply. Overlapping windows of the *same* probabilistic kind
/// resolve last-writer-wins; crash and partition windows compose freely.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Seed this schedule was generated from (0 for hand-built ones);
    /// printed in failure reports so runs can be replayed.
    pub seed: u64,
    /// The fault windows, in no particular order.
    pub disruptions: Vec<Disruption>,
}

impl FaultSchedule {
    /// An empty schedule (no faults ever).
    pub fn empty() -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            disruptions: Vec::new(),
        }
    }

    /// Generate a schedule from a single seed.
    ///
    /// `nodes` are the machines eligible for crash/partition disruptions
    /// (callers exclude nodes the workload cannot survive losing);
    /// probabilistic link faults always apply network-wide. Every window
    /// closes at or before `horizon`, so a run that advances virtual time
    /// to `horizon` (see [`crate::Network::advance_schedule_to`]) is
    /// guaranteed to end fully healed.
    ///
    /// The same `(seed, nodes, horizon)` triple always yields the same
    /// schedule. A horizon too short to fit any window (< 16 ns) yields an
    /// empty, fault-free schedule — windows past the horizon would never
    /// be healed by a run that only advances that far.
    pub fn generate(seed: u64, nodes: &[NodeId], horizon: Vt) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = horizon.as_nanos();
        if h < 16 {
            return FaultSchedule {
                seed,
                disruptions: Vec::new(),
            };
        }
        let count = rng.gen_range(3..=7usize);
        let mut disruptions = Vec::with_capacity(count);
        for _ in 0..count {
            let at = Vt::from_nanos(rng.gen_range(0..h * 3 / 4));
            let dur = Vt::from_nanos(rng.gen_range(h / 16..=h / 3));
            let until = Vt::from_nanos((at + dur).as_nanos().min(h));
            let kind = match rng.gen_range(0..100u32) {
                0..=19 if !nodes.is_empty() => {
                    DisruptionKind::Crash(nodes[rng.gen_range(0..nodes.len())])
                }
                20..=34 if nodes.len() >= 2 => {
                    let mut pool = nodes.to_vec();
                    let left_size = rng.gen_range(1..pool.len());
                    for i in 0..left_size {
                        let j = rng.gen_range(i..pool.len());
                        pool.swap(i, j);
                    }
                    let right = pool.split_off(left_size);
                    DisruptionKind::Partition { left: pool, right }
                }
                0..=49 => DisruptionKind::Loss(rng.gen_range(0.05..0.40)),
                50..=59 => DisruptionKind::Duplication(rng.gen_range(0.05..0.30)),
                60..=74 => {
                    DisruptionKind::Jitter(Vt::from_nanos(rng.gen_range(h / 256..=h / 32)))
                }
                75..=87 => DisruptionKind::Reorder(rng.gen_range(0.10..0.50)),
                _ => DisruptionKind::Corruption(rng.gen_range(0.05..0.30)),
            };
            disruptions.push(Disruption { at, until, kind });
        }
        FaultSchedule { seed, disruptions }
    }

    /// Copy of this schedule with disruption `idx` removed — the shrink
    /// step used by the chaos harness to minimise failing schedules.
    pub fn without(&self, idx: usize) -> FaultSchedule {
        let mut disruptions = self.disruptions.clone();
        disruptions.remove(idx);
        FaultSchedule {
            seed: self.seed,
            disruptions,
        }
    }

    /// Latest recovery instant across all windows, i.e. the earliest
    /// virtual time by which the network is guaranteed fault-free again.
    pub fn healed_by(&self) -> Vt {
        self.disruptions
            .iter()
            .map(|d| d.until)
            .max()
            .unwrap_or(Vt::ZERO)
    }

    /// Compile to a time-sorted event list. Each disruption contributes a
    /// start event at `at` and a recovery event at `until`; recoveries
    /// sort before onsets at the same instant so a window ending exactly
    /// when another begins does not cancel the newcomer.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events = Vec::with_capacity(self.disruptions.len() * 2);
        for d in &self.disruptions {
            let (start, end) = match &d.kind {
                DisruptionKind::Crash(id) => {
                    (FaultAction::Crash(*id), FaultAction::Restart(*id))
                }
                DisruptionKind::Partition { left, right } => (
                    FaultAction::Partition {
                        left: left.clone(),
                        right: right.clone(),
                    },
                    FaultAction::Unpartition {
                        left: left.clone(),
                        right: right.clone(),
                    },
                ),
                DisruptionKind::Loss(p) => {
                    (FaultAction::SetLoss(*p), FaultAction::SetLoss(0.0))
                }
                DisruptionKind::Duplication(p) => (
                    FaultAction::SetDuplication(*p),
                    FaultAction::SetDuplication(0.0),
                ),
                DisruptionKind::Jitter(j) => {
                    (FaultAction::SetJitter(*j), FaultAction::SetJitter(Vt::ZERO))
                }
                DisruptionKind::Reorder(p) => {
                    (FaultAction::SetReorder(*p), FaultAction::SetReorder(0.0))
                }
                DisruptionKind::Corruption(p) => (
                    FaultAction::SetCorruption(*p),
                    FaultAction::SetCorruption(0.0),
                ),
            };
            events.push(FaultEvent {
                at: d.at,
                is_start: true,
                action: start,
            });
            events.push(FaultEvent {
                at: d.until,
                is_start: false,
                action: end,
            });
        }
        events.sort_by_key(|e| (e.at, e.is_start));
        events
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule seed={:#x} ({} disruptions)",
            self.seed,
            self.disruptions.len()
        )?;
        for d in &self.disruptions {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (1..=n).map(NodeId).collect()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultSchedule::generate(0xBEEF, &nodes(4), Vt::from_millis(100));
        let b = FaultSchedule::generate(0xBEEF, &nodes(4), Vt::from_millis(100));
        assert_eq!(a, b);
        assert!(!a.disruptions.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultSchedule::generate(1, &nodes(4), Vt::from_millis(100));
        let b = FaultSchedule::generate(2, &nodes(4), Vt::from_millis(100));
        assert_ne!(a, b);
    }

    #[test]
    fn windows_close_by_horizon() {
        let horizon = Vt::from_millis(50);
        for seed in 0..50 {
            let s = FaultSchedule::generate(seed, &nodes(5), horizon);
            for d in &s.disruptions {
                assert!(d.at < d.until, "empty window in {s}");
                assert!(d.until <= horizon, "window past horizon in {s}");
            }
            assert!(s.healed_by() <= horizon);
        }
    }

    #[test]
    fn degenerate_horizon_yields_empty_schedule() {
        // A window that cannot close by the horizon must not exist at all:
        // a run advancing only to the horizon would never heal it.
        for seed in 0..20 {
            for h in [Vt::ZERO, Vt::from_nanos(1), Vt::from_nanos(15)] {
                let s = FaultSchedule::generate(seed, &nodes(3), h);
                assert!(s.disruptions.is_empty(), "{s}");
                assert_eq!(s.healed_by(), Vt::ZERO);
            }
        }
    }

    #[test]
    fn events_are_sorted_and_paired() {
        let s = FaultSchedule::generate(7, &nodes(4), Vt::from_millis(100));
        let events = s.events();
        assert_eq!(events.len(), s.disruptions.len() * 2);
        for pair in events.windows(2) {
            assert!((pair[0].at, pair[0].is_start) <= (pair[1].at, pair[1].is_start));
        }
        let starts = events.iter().filter(|e| e.is_start).count();
        assert_eq!(starts * 2, events.len());
        // Every crash has a matching restart.
        for e in &events {
            if let FaultAction::Crash(id) = e.action {
                assert!(events
                    .iter()
                    .any(|r| r.action == FaultAction::Restart(id) && r.at >= e.at));
            }
        }
    }

    #[test]
    fn recovery_sorts_before_onset_at_same_instant() {
        let s = FaultSchedule {
            seed: 0,
            disruptions: vec![
                Disruption {
                    at: Vt::ZERO,
                    until: Vt::from_millis(1),
                    kind: DisruptionKind::Loss(0.5),
                },
                Disruption {
                    at: Vt::from_millis(1),
                    until: Vt::from_millis(2),
                    kind: DisruptionKind::Loss(0.9),
                },
            ],
        };
        let events = s.events();
        // At t=1ms the first window's recovery (loss→0) must precede the
        // second window's onset (loss→0.9).
        assert_eq!(events[1].at, Vt::from_millis(1));
        assert!(!events[1].is_start);
        assert_eq!(events[2].at, Vt::from_millis(1));
        assert!(events[2].is_start);
    }

    #[test]
    fn without_removes_one_disruption() {
        let s = FaultSchedule::generate(3, &nodes(3), Vt::from_millis(10));
        let n = s.disruptions.len();
        let shrunk = s.without(0);
        assert_eq!(shrunk.disruptions.len(), n - 1);
        assert_eq!(shrunk.seed, s.seed);
        assert_eq!(&shrunk.disruptions[..], &s.disruptions[1..]);
    }

    #[test]
    fn crash_windows_only_use_eligible_nodes() {
        for seed in 0..40 {
            let eligible = nodes(2);
            let s = FaultSchedule::generate(seed, &eligible, Vt::from_millis(20));
            for d in &s.disruptions {
                match &d.kind {
                    DisruptionKind::Crash(id) => assert!(eligible.contains(id)),
                    DisruptionKind::Partition { left, right } => {
                        assert!(!left.is_empty() && !right.is_empty());
                        for id in left.iter().chain(right) {
                            assert!(eligible.contains(id));
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn empty_node_list_yields_link_faults_only() {
        for seed in 0..20 {
            let s = FaultSchedule::generate(seed, &[], Vt::from_millis(20));
            for d in &s.disruptions {
                assert!(!matches!(
                    d.kind,
                    DisruptionKind::Crash(_) | DisruptionKind::Partition { .. }
                ));
            }
        }
    }
}
