//! `clouds-chaos` — the chaos-schedule test engine.
//!
//! The crates below this one each test their own layer; this crate tests
//! the *system*: whole workloads (object invocations, DSM traffic,
//! consistency transactions, resilient PET computations) run while a
//! seeded, time-varying [`FaultSchedule`] crashes nodes, opens partitions
//! and degrades links — and after the schedule heals, system-wide
//! invariants must hold:
//!
//! 1. **Durability** — effects confirmed to the caller survive; effects
//!    never confirmed are either absent or complete (no torn state).
//! 2. **DSM coherence** — one-copy semantics after heal: fresh clients
//!    agree on every page, and the directory can always reclaim pages.
//! 3. **At-most-once** — no RaTP request handler runs twice for one
//!    transaction, and no corrupted frame smuggles in a phantom request.
//! 4. **Replica agreement** — PET commits reach a write quorum, and the
//!    replicas of the final commit are byte-identical afterwards.
//!
//! Every run is generated from a single `u64` seed. On failure the
//! harness greedily shrinks the schedule to a minimal failing subset and
//! panics with a replay line (`CHAOS_SEED=0x… cargo test -p
//! clouds-chaos`), so any red run is reproducible from one number.
//!
//! The workloads themselves live in `tests/workloads.rs`; this library
//! provides the runner ([`run_chaos`]), the configuration
//! ([`ChaosConfig`]) and the real-time [`Pacer`] that drives schedule
//! application forward even when a fault has stalled all traffic.

#![forbid(unsafe_code)]

use clouds_obs::{merged_registry_text, MetricsRegistry, TraceSink};
use clouds_simnet::{FaultSchedule, Network, NodeId, Vt};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where flight-recorder dumps land; defaults to
/// `<tmp>/clouds-chaos-dumps` when unset.
pub const CHAOS_DUMP_DIR_ENV: &str = "CHAOS_DUMP_DIR";

/// How a chaos test run is parameterised. Read once per test from the
/// environment with [`ChaosConfig::from_env`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of generated schedules to run (ignored when `replay` is
    /// set). Overridden by `CHAOS_SCHEDULES`.
    pub schedules: usize,
    /// First seed of the run; seed `i` is derived from it. Overridden by
    /// `CHAOS_BASE_SEED`.
    pub base_seed: u64,
    /// Virtual-time horizon of every schedule; all fault windows close by
    /// this instant. Overridden by `CHAOS_HORIZON_MS`.
    pub horizon: Vt,
    /// Replay exactly one seed (from a previous failure report) instead
    /// of the generated stream. Set via `CHAOS_SEED`.
    pub replay: Option<u64>,
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl ChaosConfig {
    /// Build a config from `CHAOS_SCHEDULES`, `CHAOS_BASE_SEED`,
    /// `CHAOS_HORIZON_MS` and `CHAOS_SEED`, falling back to
    /// `default_schedules`, seed `0xC1A05` and a 200 ms horizon.
    pub fn from_env(default_schedules: usize) -> ChaosConfig {
        let get = |k: &str| std::env::var(k).ok();
        ChaosConfig {
            schedules: get("CHAOS_SCHEDULES")
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default_schedules),
            base_seed: get("CHAOS_BASE_SEED")
                .and_then(|v| parse_u64(&v))
                .unwrap_or(0xC1A05),
            horizon: Vt::from_millis(
                get("CHAOS_HORIZON_MS")
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(200),
            ),
            replay: get("CHAOS_SEED").and_then(|v| parse_u64(&v)),
        }
    }

    /// The seeds this config will run, in order.
    pub fn seeds(&self) -> Vec<u64> {
        match self.replay {
            Some(seed) => vec![seed],
            None => (0..self.schedules as u64)
                .map(|i| derive_seed(self.base_seed, i))
                .collect(),
        }
    }
}

/// SplitMix64 finalizer: spreads `base + i` into well-separated seeds.
fn derive_seed(base: u64, i: u64) -> u64 {
    let mut z = base
        .wrapping_add(1) // keep seed 0 / index 0 off the weak all-zero point
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Background thread that maps real time onto schedule virtual time.
///
/// Workload traffic advances virtual clocks on its own, but a schedule
/// window that crashes the only server can stall *all* traffic — and with
/// it, the virtual time that would end the window. The pacer guarantees
/// forward progress: over `real_budget` of wall-clock time it sweeps
/// [`Network::advance_schedule_to`] from zero to the horizon, so every
/// fault window both opens and closes within a bounded real-time run.
///
/// [`Pacer::finish`] stops the sweep and jumps straight to the horizon,
/// leaving the network fully healed for invariant checking.
pub struct Pacer {
    stop: Arc<AtomicBool>,
    net: Network,
    horizon: Vt,
    handle: Option<JoinHandle<()>>,
}

impl Pacer {
    /// Start sweeping `net`'s schedule to `horizon` over `real_budget`.
    pub fn drive(net: &Network, horizon: Vt, real_budget: Duration) -> Pacer {
        const STEPS: u64 = 100;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_net = net.clone();
        let step = (horizon.as_nanos() / STEPS).max(1);
        let tick = real_budget / STEPS as u32;
        let handle = std::thread::Builder::new()
            .name("chaos-pacer".into())
            .spawn(move || {
                let mut t = 0u64;
                while !thread_stop.load(Ordering::Acquire) && t < horizon.as_nanos() {
                    t = (t + step).min(horizon.as_nanos());
                    thread_net.advance_schedule_to(Vt::from_nanos(t));
                    // lint:allow(wall-clock) — the pacer deliberately
                    // burns real time to spread schedule application
                    // across the run; it never feeds virtual time.
                    std::thread::sleep(tick);
                }
            })
            .expect("spawn chaos pacer");
        Pacer {
            stop,
            net: net.clone(),
            horizon,
            handle: Some(handle),
        }
    }

    /// Stop the sweep and force the schedule to its fully-healed end
    /// state. After this returns, no fault from the schedule is in force.
    pub fn finish(mut self) {
        self.halt();
        self.net.advance_schedule_to(self.horizon);
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Pacer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// What the flight recorder captures from the system under test: the
/// cluster-shared trace sink (every node, one virtual timeline) and the
/// per-node metrics registries.
struct FlightData {
    sink: Arc<TraceSink>,
    registries: Vec<(u64, Arc<MetricsRegistry>)>,
}

thread_local! {
    /// Armed per attempt, on the thread running the workload (workloads
    /// execute synchronously inside [`run_chaos`]'s `catch_unwind`).
    static FLIGHT: RefCell<Option<FlightData>> = const { RefCell::new(None) };
}

/// Arm the flight recorder for the current attempt: call right after
/// building the system under test, handing over its trace sink and the
/// per-node registries (e.g. `Cluster::trace_sink()` /
/// `Cluster::registries()`). The ring buffer stays always-on; nothing
/// is written unless the attempt fails. Re-arming replaces the previous
/// attempt's capture.
pub fn arm_flight_recorder(sink: Arc<TraceSink>, registries: Vec<(u64, Arc<MetricsRegistry>)>) {
    FLIGHT.with(|f| *f.borrow_mut() = Some(FlightData { sink, registries }));
}

/// Dump directory: `CHAOS_DUMP_DIR` or `<tmp>/clouds-chaos-dumps`.
fn dump_dir() -> PathBuf {
    std::env::var_os(CHAOS_DUMP_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("clouds-chaos-dumps"))
}

/// Write the armed capture out after a failed attempt: the merged
/// cross-node trace (canonical JSONL), the canonical registry snapshot
/// and a `replay.txt` carrying the seed, schedule and violation, so the
/// exact failing run can be re-created from the dump alone. Returns the
/// dump directory, or `None` when nothing was armed or writing failed
/// (failure to dump never masks the invariant violation itself).
fn dump_flight_record(
    name: &str,
    seed: u64,
    horizon: Vt,
    schedule: &FaultSchedule,
    violation: &str,
) -> Option<PathBuf> {
    let data = FLIGHT.with(|f| f.borrow_mut().take())?;
    let dir = dump_dir().join(format!("{name}-{seed:016x}"));
    std::fs::create_dir_all(&dir).ok()?;
    data.sink.write_to_path(&dir.join("trace.jsonl")).ok()?;
    let snapshots: Vec<_> = data
        .registries
        .iter()
        .map(|(node, reg)| (*node, reg.snapshot()))
        .collect();
    std::fs::write(dir.join("registry.txt"), merged_registry_text(&snapshots)).ok()?;
    let replay = format!(
        "workload: {name}\n\
         seed: {seed:#x}\n\
         horizon_ms: {}\n\
         violation: {violation}\n\
         {schedule}\
         replay: CHAOS_SEED={seed:#x} CHAOS_HORIZON_MS={} cargo test -p clouds-chaos {name}\n",
        horizon.as_nanos() / 1_000_000,
        horizon.as_nanos() / 1_000_000,
    );
    std::fs::write(dir.join("replay.txt"), replay).ok()?;
    Some(dir)
}

/// Run `workload` under every schedule the config yields.
///
/// `nodes` are the machines eligible for crash/partition disruptions; the
/// workload is a full system run — build the system, apply the schedule,
/// drive traffic, heal, check invariants — returning `Err(description)`
/// on any invariant violation (panics inside the workload are caught and
/// treated the same way).
///
/// # Panics
///
/// Panics on the first failing schedule, after greedily shrinking it to a
/// minimal failing subset, with a message carrying the seed (replayable
/// via `CHAOS_SEED`), the minimal schedule and the invariant violation.
pub fn run_chaos<F>(name: &str, cfg: &ChaosConfig, nodes: &[NodeId], workload: F)
where
    F: Fn(&FaultSchedule) -> Result<(), String>,
{
    let seeds = cfg.seeds();
    eprintln!(
        "chaos '{name}': {} schedule(s), horizon {}, base seed {:#x}",
        seeds.len(),
        cfg.horizon,
        cfg.base_seed
    );
    for seed in seeds {
        let schedule = FaultSchedule::generate(seed, nodes, cfg.horizon);
        if let Err(err) = attempt(&workload, &schedule) {
            // Flight recorder: dump the *initial* failing attempt's
            // capture before shrinking re-runs clobber the armed state.
            let dump = dump_flight_record(name, seed, cfg.horizon, &schedule, &err);
            let dump_line = match &dump {
                Some(dir) => format!("flight recorder dump: {}\n", dir.display()),
                None => String::new(),
            };
            let (minimal, last_err) = shrink(&workload, schedule.clone(), err);
            panic!(
                "chaos workload '{name}' failed\n\
                 \n\
                 full {schedule}\
                 minimal failing subset ({} of {} disruptions):\n\
                 {minimal}\
                 invariant violation: {last_err}\n\
                 {dump_line}\
                 \n\
                 replay with: CHAOS_SEED={seed:#x} CHAOS_HORIZON_MS={} \
                 cargo test -p clouds-chaos {name}",
                minimal.disruptions.len(),
                schedule.disruptions.len(),
                cfg.horizon.as_nanos() / 1_000_000,
            );
        }
    }
}

/// One guarded workload execution: a panic counts as a failure report.
fn attempt<F>(workload: &F, schedule: &FaultSchedule) -> Result<(), String>
where
    F: Fn(&FaultSchedule) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| workload(schedule))) {
        Ok(result) => result,
        Err(payload) => Err(panic_text(payload.as_ref())),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Greedy delta-debugging: repeatedly drop any disruption whose removal
/// keeps the workload failing, until no single removal does (or the
/// re-run budget is spent). Because [`FaultSchedule::without`] removes a
/// whole window — onset and recovery together — a shrunk schedule can
/// never strand a node crashed.
fn shrink<F>(
    workload: &F,
    mut current: FaultSchedule,
    mut last_err: String,
) -> (FaultSchedule, String)
where
    F: Fn(&FaultSchedule) -> Result<(), String>,
{
    let mut budget = 24usize;
    loop {
        let mut reduced = false;
        let mut idx = 0;
        while idx < current.disruptions.len() && budget > 0 {
            budget -= 1;
            let candidate = current.without(idx);
            match attempt(workload, &candidate) {
                Err(err) => {
                    current = candidate;
                    last_err = err;
                    reduced = true;
                }
                Ok(()) => idx += 1,
            }
        }
        if !reduced || budget == 0 {
            return (current, last_err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clouds_simnet::DisruptionKind;

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..32).map(|i| derive_seed(7, i)).collect();
        let b: Vec<u64> = (0..32).map(|i| derive_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn parse_u64_accepts_hex_and_decimal() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64("0x2A"), Some(42));
        assert_eq!(parse_u64(" 0X2a "), Some(42));
        assert_eq!(parse_u64("nope"), None);
    }

    #[test]
    fn replay_config_yields_exactly_one_seed() {
        let cfg = ChaosConfig {
            schedules: 50,
            base_seed: 1,
            horizon: Vt::from_millis(10),
            replay: Some(0xABCD),
        };
        assert_eq!(cfg.seeds(), vec![0xABCD]);
    }

    #[test]
    fn passing_workload_runs_all_schedules() {
        let cfg = ChaosConfig {
            schedules: 5,
            base_seed: 3,
            horizon: Vt::from_millis(10),
            replay: None,
        };
        let runs = std::sync::atomic::AtomicUsize::new(0);
        run_chaos("noop", &cfg, &[NodeId(1)], |_s| {
            runs.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        assert_eq!(runs.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn failure_report_carries_seed_and_minimal_schedule() {
        // Fails whenever the schedule contains a crash of node 1; the
        // shrinker must strip everything else and the report must carry a
        // replayable seed.
        let nodes = [NodeId(1)];
        let target_seed = (0..500)
            .map(|i| derive_seed(99, i))
            .find(|&s| {
                let sched = FaultSchedule::generate(s, &nodes, Vt::from_millis(50));
                sched.disruptions.len() >= 2
                    && sched
                        .disruptions
                        .iter()
                        .any(|d| matches!(d.kind, DisruptionKind::Crash(NodeId(1))))
            })
            .expect("some seed produces a crash disruption");
        let cfg = ChaosConfig {
            schedules: 1,
            base_seed: 0,
            horizon: Vt::from_millis(50),
            replay: Some(target_seed),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_chaos("synthetic", &cfg, &nodes, |s| {
                if s.disruptions
                    .iter()
                    .any(|d| matches!(d.kind, DisruptionKind::Crash(NodeId(1))))
                {
                    Err("node 1 crashed".into())
                } else {
                    Ok(())
                }
            });
        }));
        let msg = panic_text(outcome.expect_err("must fail").as_ref());
        assert!(msg.contains(&format!("CHAOS_SEED={target_seed:#x}")), "{msg}");
        assert!(msg.contains("minimal failing subset (1 of"), "{msg}");
        assert!(msg.contains("crash node1"), "{msg}");
        assert!(msg.contains("node 1 crashed"), "{msg}");
    }

    #[test]
    fn pacer_heals_schedule_without_any_traffic() {
        let net = Network::with_seed(clouds_simnet::CostModel::zero(), 5);
        let a = net.register(NodeId(1)).unwrap();
        let _b = net.register(NodeId(2)).unwrap();
        let horizon = Vt::from_millis(20);
        let schedule =
            FaultSchedule::generate(11, &[NodeId(1), NodeId(2)], horizon);
        net.set_schedule(&schedule);
        let pacer = Pacer::drive(&net, horizon, Duration::from_millis(30));
        pacer.finish();
        assert_eq!(net.schedule_pending(), 0);
        assert!(!net.is_crashed(NodeId(1)));
        assert!(!net.is_crashed(NodeId(2)));
        // Fully healed: a send goes through without schedule interference.
        a.send(NodeId(2), bytes::Bytes::from_static(b"ok")).unwrap();
    }
}
