//! Whole-system chaos workloads: each test runs a real workload on a
//! freshly booted system while a seeded [`FaultSchedule`] crashes nodes,
//! opens partitions and degrades links, then checks system-wide
//! invariants after the schedule heals. Failures panic with a seed that
//! replays the exact schedule (`CHAOS_SEED=0x… cargo test -p
//! clouds-chaos <test>`).
//!
//! Tuning via environment: `CHAOS_SCHEDULES` (runs per workload),
//! `CHAOS_SEED` (replay one), `CHAOS_HORIZON_MS`, `CHAOS_BASE_SEED`.

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_chaos::{arm_flight_recorder, run_chaos, ChaosConfig, Pacer};
use clouds_consistency::{ConsistencyRuntime, CpOptions};
use clouds_pet::{resilient_invoke, PetOptions, ReplicatedObject};
use clouds_ratp::RatpConfig;
use clouds_simnet::{CostModel, FaultSchedule, Network, NodeId};
use std::time::Duration;

/// Real-time budget the pacer gets to sweep one schedule to its horizon.
const PACER_BUDGET: Duration = Duration::from_millis(250);

/// Server RaTP settings with a starvation-proof failure detector. The
/// default ~3 s retransmission budget doubles as "the peer is dead":
/// on an oversubscribed host (CI runners, `cargo test --workspace` on a
/// small machine) a merely *starved* thread can stay silent that long,
/// the DSM then reclaims its dirty page and a committed update is
/// clobbered — a genuine availability-over-consistency trade that chaos
/// runs must not trip by accident. Schedules heal within
/// [`PACER_BUDGET`] of real time, so the longer budget never slows a
/// healthy run; it only raises the bar for declaring a node dead.
fn patient_ratp() -> RatpConfig {
    RatpConfig {
        retry_interval: Duration::from_millis(15),
        max_retries: 800,
        dup_cache_size: 4096,
    }
}

fn err<E: std::fmt::Display>(what: &str) -> impl Fn(E) -> String + '_ {
    move |e| format!("{what}: {e}")
}

// ---------------------------------------------------------------------------
// Workload 1: ledger records through the consistency runtime.
// Invariant family: committed-durable / uncommitted-invisible.
// ---------------------------------------------------------------------------

/// The full_system ledger, reduced to its essentials: a persistent
/// linked list plus a count, written under gcp semantics.
struct Ledger;

impl ObjectCode for Ledger {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        ctx.persistent().write_u64(0, 0)
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "record" => {
                let (item, qty): (String, u64) = decode_args(args)?;
                let count = ctx.persistent().read_u64(0)?;
                let node = ctx.persistent().heap_alloc(64)?;
                let head = ctx.persistent().read_u64(8)?;
                let encoded = clouds_codec::to_bytes(&(item, qty))
                    .map_err(|e| CloudsError::BadArguments(e.to_string()))?;
                ctx.persistent()
                    .heap_write(node, &(encoded.len() as u64).to_le_bytes())?;
                ctx.persistent().heap_write(node + 8, &encoded)?;
                ctx.persistent().heap_write(node + 48, &head.to_le_bytes())?;
                ctx.persistent().write_u64(8, node)?;
                ctx.persistent().write_u64(0, count + 1)?;
                encode_result(&(count + 1))
            }
            "count" => encode_result(&ctx.persistent().read_u64(0)?),
            "dump" => {
                let mut items: Vec<(String, u64)> = Vec::new();
                let mut cursor = ctx.persistent().read_u64(8)?;
                while cursor != 0 {
                    let len = u64::from_le_bytes(
                        ctx.persistent().heap_read(cursor, 8)?.try_into().expect("8"),
                    );
                    let raw = ctx.persistent().heap_read(cursor + 8, len as usize)?;
                    items.push(
                        clouds_codec::from_bytes(&raw)
                            .map_err(|e| CloudsError::BadArguments(e.to_string()))?,
                    );
                    cursor = u64::from_le_bytes(
                        ctx.persistent().heap_read(cursor + 48, 8)?.try_into().expect("8"),
                    );
                }
                encode_result(&items)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }

    fn label(&self, entry: &str) -> OperationLabel {
        match entry {
            "record" => OperationLabel::Gcp,
            _ => OperationLabel::S,
        }
    }
}

#[test]
fn ledger_commits_survive_chaos() {
    let cfg = ChaosConfig::from_env(13);
    // 2 compute servers + 2 data servers, all crashable.
    let nodes = [NodeId(1), NodeId(2), NodeId(100), NodeId(101)];
    run_chaos("ledger", &cfg, &nodes, |schedule: &FaultSchedule| {
        let cluster = Cluster::builder()
            .compute_servers(2)
            .data_servers(2)
            .workstations(0)
            .cost_model(CostModel::zero())
            .seed(schedule.seed)
            .server_ratp_config(patient_ratp())
            .build()
            .map_err(err("cluster boot"))?;
        arm_flight_recorder(cluster.trace_sink().clone(), cluster.registries());
        cluster
            .register_class("ledger", Ledger)
            .map_err(err("register class"))?;
        let runtime = ConsistencyRuntime::install(&cluster);
        let obj = cluster
            .create_object("ledger", "ChaosLedger")
            .map_err(err("create object"))?;

        let net = cluster.network().clone();
        net.set_schedule(schedule);
        let pacer = Pacer::drive(&net, cfg.horizon, PACER_BUDGET);

        // Short lock waits and few retries: a record blocked by a fault is
        // allowed to fail — the invariants cover both outcomes.
        let opts = CpOptions {
            lock_wait_ms: 150,
            max_retries: 3,
        };
        let mut attempted = Vec::new();
        let mut confirmed = Vec::new();
        for i in 0..5u64 {
            let item = format!("item-{i}");
            attempted.push(item.clone());
            let args = clouds::encode_args(&(item.clone(), i + 1)).map_err(err("encode"))?;
            if runtime
                .invoke(
                    cluster.compute((i % 2) as usize),
                    OperationLabel::Gcp,
                    obj,
                    "record",
                    &args,
                    &opts,
                )
                .is_ok()
            {
                confirmed.push(item);
            }
        }
        pacer.finish();

        // Post-heal reads are S-labeled (no locks) and must succeed.
        let unit = clouds::encode_args(&()).map_err(err("encode"))?;
        let dump: Vec<(String, u64)> = decode_args(
            &cluster
                .compute(0)
                .invoke(obj, "dump", &unit, None)
                .map_err(err("post-heal dump"))?,
        )
        .map_err(err("decode dump"))?;
        let count: u64 = decode_args(
            &cluster
                .compute(0)
                .invoke(obj, "count", &unit, None)
                .map_err(err("post-heal count"))?,
        )
        .map_err(err("decode count"))?;

        // Invariants: the count matches the list; no record is ever
        // duplicated; every confirmed record is durable; nothing appears
        // that was never attempted.
        if count as usize != dump.len() {
            return Err(format!(
                "count {count} disagrees with dump length {} — torn commit",
                dump.len()
            ));
        }
        let names: Vec<&String> = dump.iter().map(|(n, _)| n).collect();
        for name in &names {
            if names.iter().filter(|n| ***n == **name).count() > 1 {
                return Err(format!("record {name} appears more than once"));
            }
            if !attempted.contains(name) {
                return Err(format!("phantom record {name} was never attempted"));
            }
        }
        for item in &confirmed {
            if !names.contains(&item) {
                return Err(format!("confirmed record {item} lost after heal"));
            }
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Workload 2: DSM writers on dedicated pages.
// Invariant family: one-copy semantics + no lost write-backs.
// ---------------------------------------------------------------------------

mod dsm_bed {
    use clouds_dsm::{DsmClientPartition, DsmServer};
    use clouds_ra::{AddressSpace, PageCache, Partition};
    use clouds_ratp::{RatpConfig, RatpNode};
    use clouds_simnet::{Network, NodeId};
    use std::sync::Arc;
    use std::time::Duration;

    pub fn server(net: &Network, id: NodeId) -> Arc<DsmServer> {
        let ratp = RatpNode::spawn(
            net.register(id).expect("register data server"),
            // Same starvation-proof budget as `patient_ratp`: recalls
            // must not declare a starved writer dead on a loaded host.
            RatpConfig {
                retry_interval: Duration::from_millis(15),
                max_retries: 800,
                dup_cache_size: 4096,
            },
        );
        DsmServer::install(&ratp)
    }

    pub fn client(net: &Network, id: NodeId, data: Vec<NodeId>) -> Arc<DsmClientPartition> {
        client_with(
            net,
            id,
            data,
            RatpConfig {
                retry_interval: Duration::from_millis(5),
                max_retries: 2_400,
                dup_cache_size: 4096,
            },
        )
    }

    pub fn client_with(
        net: &Network,
        id: NodeId,
        data: Vec<NodeId>,
        cfg: RatpConfig,
    ) -> Arc<DsmClientPartition> {
        let ratp = RatpNode::spawn(net.register(id).expect("register client"), cfg);
        DsmClientPartition::install(&ratp, Arc::new(PageCache::new(16)), data)
    }

    pub fn space(
        part: &Arc<DsmClientPartition>,
        seg: clouds_ra::SysName,
        pages: u64,
    ) -> AddressSpace {
        let mut s = AddressSpace::new(
            Arc::clone(part.cache()),
            Arc::clone(part) as Arc<dyn Partition>,
        );
        s.map(0, seg, 0, pages * clouds_ra::PAGE_SIZE as u64, true)
            .expect("map segment");
        s
    }
}

#[test]
fn dsm_writes_survive_chaos() {
    use clouds_ra::{Partition as _, PAGE_SIZE};
    let cfg = ChaosConfig::from_env(13);
    const WRITERS: usize = 2;
    const ROUNDS: u64 = 8;
    let data_node = NodeId(100);
    // Writers and the data server are all crashable.
    let nodes = [NodeId(1), NodeId(2), data_node];
    run_chaos("dsm", &cfg, &nodes, |schedule: &FaultSchedule| {
        let net = Network::with_seed(CostModel::zero(), schedule.seed);
        let server = dsm_bed::server(&net, data_node);
        let seg = SysName::from_parts(31, 1);
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| dsm_bed::client(&net, NodeId(1 + w as u32), vec![data_node]))
            .collect();
        writers[0]
            .create_segment(seg, WRITERS as u64 * PAGE_SIZE as u64)
            .map_err(err("create segment"))?;
        let spaces: Vec<_> = writers
            .iter()
            .map(|c| dsm_bed::space(c, seg, WRITERS as u64))
            .collect();

        net.set_schedule(schedule);
        let pacer = Pacer::drive(&net, cfg.horizon, PACER_BUDGET);

        // Each writer owns one page and writes strictly increasing round
        // numbers, confirming durability with an explicit flush. A write
        // or flush interrupted by a fault is allowed to fail.
        let mut attempted = [0u64; WRITERS];
        let mut confirmed = [0u64; WRITERS];
        let mut confirmed_flushes = 0u64;
        for round in 1..=ROUNDS {
            for (w, space) in spaces.iter().enumerate() {
                let addr = w as u64 * PAGE_SIZE as u64;
                if space.write_u64(addr, round).is_ok() {
                    attempted[w] = round;
                    if space.flush().is_ok() {
                        confirmed[w] = round;
                        confirmed_flushes += 1;
                    }
                }
            }
        }
        pacer.finish();

        // Two fresh clients: every page readable, both agree (one-copy),
        // and the value is the last confirmed write or a later attempted
        // one — never older than confirmed, never invented.
        let fresh_a = dsm_bed::client(&net, NodeId(11), vec![data_node]);
        let fresh_b = dsm_bed::client(&net, NodeId(12), vec![data_node]);
        let sa = dsm_bed::space(&fresh_a, seg, WRITERS as u64);
        let sb = dsm_bed::space(&fresh_b, seg, WRITERS as u64);
        for w in 0..WRITERS {
            let addr = w as u64 * PAGE_SIZE as u64;
            let va = sa.read_u64(addr).map_err(err("post-heal read"))?;
            if va < confirmed[w] || va > attempted[w] {
                return Err(format!(
                    "page {w}: read {va}, confirmed {} attempted {} — lost write-back",
                    confirmed[w], attempted[w]
                ));
            }
            let vb = sb.read_u64(addr).map_err(err("post-heal read"))?;
            if vb != va {
                return Err(format!(
                    "page {w}: fresh clients disagree ({va} vs {vb}) — one-copy violated"
                ));
            }
        }
        // Exclusive-ownership probe: the directory must still be able to
        // reclaim every page for a new exclusive writer.
        for w in 0..WRITERS {
            let addr = w as u64 * PAGE_SIZE as u64;
            let probe = 1_000 + w as u64;
            sa.write_u64(addr, probe).map_err(err("post-heal write"))?;
            sa.flush().map_err(err("post-heal flush"))?;
            let got = sb.read_u64(addr).map_err(err("post-heal read"))?;
            if got != probe {
                return Err(format!(
                    "page {w}: probe write read back {got}, want {probe} — stale exclusive copy"
                ));
            }
        }
        // Stats cross-check: every confirmed flush put a dirty page on
        // the server, so the server must account at least that many
        // write-backs.
        let stats = server.stats();
        if stats.write_backs < confirmed_flushes {
            return Err(format!(
                "server write_backs {} < confirmed flushes {confirmed_flushes}: {stats:?}",
                stats.write_backs
            ));
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Workload 2b: DSM sequential scanner with read-ahead vs a batch-flushing
// writer. Invariant family: one-copy semantics under speculative grants +
// no lost write-backs through `WriteBackBatch`.
// ---------------------------------------------------------------------------

#[test]
fn dsm_read_ahead_scan_survives_chaos() {
    use clouds_ra::{Partition as _, PAGE_SIZE};
    let cfg = ChaosConfig::from_env(21);
    const PAGES: u64 = 16;
    const ROUNDS: u64 = 6;
    let data_node = NodeId(100);
    let nodes = [NodeId(1), NodeId(2), data_node];
    run_chaos("dsm-scan", &cfg, &nodes, |schedule: &FaultSchedule| {
        let net = Network::with_seed(CostModel::zero(), schedule.seed);
        let server = dsm_bed::server(&net, data_node);
        let seg = SysName::from_parts(31, 2);
        let writer = dsm_bed::client(&net, NodeId(1), vec![data_node]);
        let scanner = dsm_bed::client(&net, NodeId(2), vec![data_node]);
        writer
            .create_segment(seg, PAGES * PAGE_SIZE as u64)
            .map_err(err("create segment"))?;
        let ws = dsm_bed::space(&writer, seg, PAGES);
        let ss = dsm_bed::space(&scanner, seg, PAGES);

        net.set_schedule(schedule);
        let pacer = Pacer::drive(&net, cfg.horizon, PACER_BUDGET);

        // The writer stamps every page with `round*1000 + page` and
        // flushes the whole set — a coalesced `WriteBackBatch` when more
        // than one write landed. The scanner then sweeps the segment
        // sequentially, so its faults ride the read-ahead window and the
        // server's speculative multi-page grants race the writer's
        // recalls. Every observed value must decode to a round between
        // the page's last confirmed flush and its last applied write.
        let mut attempted = [0u64; PAGES as usize];
        let mut confirmed = [0u64; PAGES as usize];
        let mut confirmed_batch_flushes = 0u64;
        for round in 1..=ROUNDS {
            let mut wrote = Vec::new();
            for page in 0..PAGES {
                let addr = page * PAGE_SIZE as u64;
                if ws.write_u64(addr, round * 1000 + page).is_ok() {
                    attempted[page as usize] = round;
                    wrote.push(page as usize);
                }
            }
            if !wrote.is_empty() && ws.flush().is_ok() {
                for &page in &wrote {
                    confirmed[page] = round;
                }
                if wrote.len() > 1 {
                    confirmed_batch_flushes += 1;
                }
            }
            for page in 0..PAGES {
                let Ok(v) = ss.read_u64(page * PAGE_SIZE as u64) else {
                    break; // fault mid-scan: sequentiality is gone anyway
                };
                let (r, p) = (v / 1000, v % 1000);
                if v != 0 && p != page {
                    return Err(format!("page {page}: read foreign stamp {v}"));
                }
                if r < confirmed[page as usize] || r > attempted[page as usize] {
                    return Err(format!(
                        "page {page}: scanner read round {r}, confirmed {} attempted {} \
                         — speculative grant leaked a stale or lost page",
                        confirmed[page as usize], attempted[page as usize]
                    ));
                }
            }
        }
        pacer.finish();

        // Post-heal: two fresh clients sweep sequentially (read-ahead
        // engages from page 1) and must agree page-for-page on a value
        // inside the [confirmed, attempted] window.
        let fresh_a = dsm_bed::client(&net, NodeId(11), vec![data_node]);
        let fresh_b = dsm_bed::client(&net, NodeId(12), vec![data_node]);
        let sa = dsm_bed::space(&fresh_a, seg, PAGES);
        let sb = dsm_bed::space(&fresh_b, seg, PAGES);
        for page in 0..PAGES {
            let addr = page * PAGE_SIZE as u64;
            let va = sa.read_u64(addr).map_err(err("post-heal read"))?;
            let r = va / 1000;
            if r < confirmed[page as usize] || r > attempted[page as usize] {
                return Err(format!(
                    "page {page}: post-heal round {r}, confirmed {} attempted {} — lost write-back",
                    confirmed[page as usize], attempted[page as usize]
                ));
            }
            let vb = sb.read_u64(addr).map_err(err("post-heal read"))?;
            if vb != va {
                return Err(format!(
                    "page {page}: fresh clients disagree ({va} vs {vb}) — one-copy violated"
                ));
            }
        }
        // The sweep above was sequential from a cold cache, so the
        // read-ahead detector must have fired at least once.
        let fa = fresh_a.stats();
        if fa.batch_fetches == 0 {
            return Err(format!("fresh sequential sweep never batched: {fa:?}"));
        }
        // Stats cross-check: every confirmed multi-page flush went out as
        // a coalesced batch the server accounted for.
        let stats = server.stats();
        if stats.batch_write_backs < confirmed_batch_flushes {
            return Err(format!(
                "server batch_write_backs {} < confirmed batch flushes \
                 {confirmed_batch_flushes}: {stats:?}",
                stats.batch_write_backs
            ));
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Workload 3: PET resilient invocations on a replicated object.
// Invariant family: quorum commit + replica agreement.
// ---------------------------------------------------------------------------

/// Replicated tally whose whole state lives in one page, so every commit
/// propagates the complete state and any torn page image is detectable:
/// offset 0 = sum, offset 8 = op count, offsets 16.. = op ids.
struct Tally;

impl ObjectCode for Tally {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        ctx.persistent().write_u64(0, 0)?;
        ctx.persistent().write_u64(8, 0)
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "apply" => {
                let (id, qty): (u64, u64) = decode_args(args)?;
                let sum = ctx.persistent().read_u64(0)?;
                let n = ctx.persistent().read_u64(8)?;
                ctx.persistent().write_u64(16 + n * 8, id)?;
                ctx.persistent().write_u64(8, n + 1)?;
                ctx.persistent().write_u64(0, sum + qty)?;
                encode_result(&(sum + qty))
            }
            "peek" => {
                let sum = ctx.persistent().read_u64(0)?;
                let n = ctx.persistent().read_u64(8)?;
                let mut ids = Vec::new();
                for i in 0..n {
                    ids.push(ctx.persistent().read_u64(16 + i * 8)?);
                }
                encode_result(&(sum, ids))
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }

    fn label(&self, entry: &str) -> OperationLabel {
        match entry {
            "apply" => OperationLabel::Gcp,
            _ => OperationLabel::S,
        }
    }
}

#[test]
fn pet_replicas_agree_after_chaos() {
    let cfg = ChaosConfig::from_env(13);
    // Only data servers are crashable: a compute server that dies while
    // holding replica locks can never release them (no lock leases yet),
    // which would wedge the workload rather than test it.
    let nodes = [NodeId(100), NodeId(101), NodeId(102)];
    run_chaos("pet", &cfg, &nodes, |schedule: &FaultSchedule| {
        let cluster = Cluster::builder()
            .compute_servers(3)
            .data_servers(3)
            .workstations(0)
            .cost_model(CostModel::zero())
            .seed(schedule.seed)
            .server_ratp_config(patient_ratp())
            .build()
            .map_err(err("cluster boot"))?;
        arm_flight_recorder(cluster.trace_sink().clone(), cluster.registries());
        cluster
            .register_class("tally", Tally)
            .map_err(err("register class"))?;
        let _runtime = ConsistencyRuntime::install(&cluster);
        let robj =
            ReplicatedObject::create(cluster.compute(0), "tally", 3).map_err(err("replicate"))?;
        let quorum = robj.degree() / 2 + 1;
        let opts = PetOptions {
            pets: 2,
            write_quorum: None,
            lock_wait_ms: 500,
        };

        let net = cluster.network().clone();
        net.set_schedule(schedule);
        let pacer = Pacer::drive(&net, cfg.horizon, PACER_BUDGET);

        let qty = |id: u64| id + 1;
        let mut attempted = Vec::new();
        for id in 0..3u64 {
            attempted.push(id);
            let args = clouds::encode_args(&(id, qty(id))).map_err(err("encode"))?;
            if let Ok(outcome) = resilient_invoke(cluster.computes(), &robj, "apply", &args, &opts)
            {
                if outcome.committed_replicas.len() < quorum {
                    return Err(format!(
                        "confirmed commit reached only {} replicas (quorum {quorum})",
                        outcome.committed_replicas.len()
                    ));
                }
            }
        }
        pacer.finish();

        // Post-heal, a fault-free resilient invocation must succeed and
        // reach a quorum.
        let final_id = 99u64;
        attempted.push(final_id);
        let args = clouds::encode_args(&(final_id, qty(final_id))).map_err(err("encode"))?;
        let final_outcome = resilient_invoke(cluster.computes(), &robj, "apply", &args, &opts)
            .map_err(err("post-heal resilient invoke"))?;
        if final_outcome.committed_replicas.len() < quorum {
            return Err(format!(
                "post-heal commit reached only {} replicas (quorum {quorum})",
                final_outcome.committed_replicas.len()
            ));
        }

        // Every replica the final commit reached holds the complete state
        // page: internally consistent, no duplicated or phantom ops, and
        // byte-for-byte agreement across the quorum.
        let unit = clouds::encode_args(&()).map_err(err("encode"))?;
        let mut views: Vec<(u64, Vec<u64>)> = Vec::new();
        for &r in &final_outcome.committed_replicas {
            let view: (u64, Vec<u64>) = decode_args(
                &cluster
                    .compute(0)
                    .invoke(robj.replica(r).sysname, "peek", &unit, None)
                    .map_err(err("post-heal peek"))?,
            )
            .map_err(err("decode peek"))?;
            let (sum, ids) = &view;
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            if dedup.len() != ids.len() {
                return Err(format!("replica {r}: duplicated op ids {ids:?}"));
            }
            for id in ids {
                if !attempted.contains(id) {
                    return Err(format!("replica {r}: phantom op id {id}"));
                }
            }
            if *sum != ids.iter().map(|&id| qty(id)).sum::<u64>() {
                return Err(format!(
                    "replica {r}: sum {sum} inconsistent with ops {ids:?} — torn page"
                ));
            }
            if !ids.contains(&final_id) {
                return Err(format!("replica {r}: missing the post-heal commit"));
            }
            views.push(view);
        }
        if views.windows(2).any(|w| w[0] != w[1]) {
            return Err(format!("quorum replicas disagree after heal: {views:?}"));
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Workload 4: raw RaTP transactions.
// Invariant family: at-most-once handler execution.
// ---------------------------------------------------------------------------

#[test]
fn ratp_executes_at_most_once_under_chaos() {
    use bytes::Bytes;
    use clouds_ratp::{RatpConfig, RatpNode, Request};
    use parking_lot::Mutex;
    use std::sync::Arc;

    let cfg = ChaosConfig::from_env(13);
    const PORT: u16 = 40;
    const CALLS: u64 = 30;
    let nodes = [NodeId(1), NodeId(2)];
    run_chaos("ratp", &cfg, &nodes, |schedule: &FaultSchedule| {
        let net = Network::with_seed(CostModel::zero(), schedule.seed);
        let ratp_cfg = RatpConfig {
            retry_interval: Duration::from_millis(5),
            max_retries: 400,
            dup_cache_size: 4096,
        };
        let client = RatpNode::spawn(net.register(NodeId(1)).unwrap(), ratp_cfg.clone());
        let server = RatpNode::spawn(net.register(NodeId(2)).unwrap(), ratp_cfg);
        let executed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&executed);
        server.register_service(PORT, move |req: Request| {
            let id = u64::from_le_bytes(req.payload[..8].try_into().expect("8-byte id"));
            log.lock().push(id);
            Bytes::copy_from_slice(&id.to_le_bytes())
        });

        net.set_schedule(schedule);
        let pacer = Pacer::drive(&net, cfg.horizon, PACER_BUDGET);

        // Each id is sent in exactly one transaction; retransmission,
        // duplication and reordering inside that transaction must never
        // re-execute the handler.
        let mut confirmed = Vec::new();
        for id in 0..CALLS {
            let payload = Bytes::copy_from_slice(&id.to_le_bytes());
            if let Ok(reply) = client.call(NodeId(2), PORT, payload) {
                let echoed = u64::from_le_bytes(reply[..8].try_into().expect("8-byte reply"));
                if echoed != id {
                    return Err(format!("call {id} answered with {echoed} — crossed replies"));
                }
                confirmed.push(id);
            }
        }
        pacer.finish();

        // Post-heal the transport must work again.
        let last = 0xFFFFu64;
        client
            .call(NodeId(2), PORT, Bytes::copy_from_slice(&last.to_le_bytes()))
            .map_err(err("post-heal call"))?;

        let log = executed.lock();
        for id in (0..CALLS).chain([last]) {
            let hits = log.iter().filter(|&&e| e == id).count();
            if hits > 1 {
                return Err(format!("request {id} executed {hits} times — at-most-once broken"));
            }
            if confirmed.contains(&id) && hits == 0 {
                return Err(format!("request {id} confirmed but never executed"));
            }
        }
        for e in log.iter() {
            if *e >= CALLS && *e != last {
                return Err(format!(
                    "phantom request id {e:#x} executed — corrupted frame accepted"
                ));
            }
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Workload 5: replicated segment home, primary data-server crash while a
// seeded schedule degrades every link. Invariant family: committed-durable
// across promotion + bounded availability gap + one-copy after re-homing.
// ---------------------------------------------------------------------------

#[test]
fn dsm_failover_under_data_server_crash() {
    use clouds::node::DataServer;
    use clouds::FailoverConfig;
    use clouds_naming::NameClient;
    use clouds_ra::PAGE_SIZE;
    use clouds_simnet::Vt;
    use std::time::Instant;

    let cfg = ChaosConfig::from_env(13);
    const PAGES: u64 = 2;
    const ROUNDS_BEFORE: u64 = 6;
    const ROUNDS_AFTER: u64 = 4;
    let data_nodes = [NodeId(100), NodeId(101), NodeId(102)];
    let primary = data_nodes[1];
    // Clients ride out any loss window (200 × 5 ms) but abandon a dead
    // home within a second, handing control to the failover retry layer
    // (re-resolve, bounded probes) instead of pinning on the corpse.
    let failover_client = RatpConfig {
        retry_interval: Duration::from_millis(5),
        max_retries: 200,
        dup_cache_size: 4096,
    };
    // The schedule gets *no* crash-eligible nodes: it degrades links
    // (loss, jitter, reorder, duplication, corruption) while the harness
    // itself reboot-crashes the primary mid-schedule. Schedule-driven
    // crash windows heal within the pacer sweep — faster than the
    // deliberately skeptical verify-before-promote concludes — so a
    // deterministic crash is the only way to pin an actual promotion at
    // every seed; the schedule's job is to make detection, mirroring and
    // re-homing survive hostile links.
    run_chaos("dsm-failover", &cfg, &[], |schedule: &FaultSchedule| {
        let net = Network::with_seed(CostModel::zero(), schedule.seed);
        let datas: Vec<DataServer> = data_nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| DataServer::boot(&net, node, patient_ratp(), i == 0))
            .collect();
        // Beacons are virtual-time stamped; the schedule jitters frames
        // by at most horizon/32, so a detector sized for exactly that
        // jitter never deposes a live primary.
        let failover = FailoverConfig::for_jitter(Vt::from_nanos(cfg.horizon.as_nanos() / 32));
        for (i, ds) in datas.iter().enumerate() {
            let peers: Vec<NodeId> = data_nodes
                .iter()
                .copied()
                .filter(|&n| n != data_nodes[i])
                .collect();
            ds.start_failover(peers, data_nodes[0], failover);
        }

        let writer = dsm_bed::client_with(&net, NodeId(1), data_nodes.to_vec(), failover_client.clone());
        let seg = SysName::from_parts(31, 5);
        let members = [primary, data_nodes[2], data_nodes[0]];
        writer
            .create_replicated_segment(seg, PAGES * PAGE_SIZE as u64, &members)
            .map_err(err("create replicated segment"))?;
        NameClient::new(writer.ratp(), data_nodes[0])
            .register_replicas(seg, members[0], &members[1..])
            .map_err(err("register replicas"))?;
        let space = dsm_bed::space(&writer, seg, PAGES);

        net.set_schedule(schedule);
        let pacer = Pacer::drive(&net, cfg.horizon, PACER_BUDGET);

        // Strictly increasing round numbers per page; an Ok flush is a
        // *commit* — the primary acked only after every replica confirmed
        // the mirrored write-back — and must survive the crash below. A
        // write or flush interrupted by a link fault is allowed to fail.
        let mut attempted = [0u64; PAGES as usize];
        let mut confirmed = [0u64; PAGES as usize];
        for round in 1..=ROUNDS_BEFORE {
            for page in 0..PAGES as usize {
                let addr = page as u64 * PAGE_SIZE as u64;
                if space.write_u64(addr, round).is_ok() {
                    attempted[page] = round;
                    if space.flush().is_ok() {
                        confirmed[page] = round;
                    }
                }
            }
        }

        // Reboot-crash the primary mid-schedule: volatile state (grants,
        // replica views, transport) dies, the store survives.
        datas[1].crash(&net);

        // Ride-through read while links are still hostile: a fresh
        // client's probes must find the promoted backup and serve every
        // committed byte — the availability gap is the failover budget,
        // not "until someone restarts the machine".
        let rider = dsm_bed::client_with(&net, NodeId(11), data_nodes.to_vec(), failover_client.clone());
        let ride = dsm_bed::space(&rider, seg, PAGES);
        for page in 0..PAGES as usize {
            let addr = page as u64 * PAGE_SIZE as u64;
            let v = ride.read_u64(addr).map_err(err("ride-through read"))?;
            if v < confirmed[page] || v > attempted[page] {
                return Err(format!(
                    "page {page}: ride-through read {v}, confirmed {} attempted {} — \
                     committed write lost across promotion",
                    confirmed[page], attempted[page]
                ));
            }
        }

        pacer.finish();

        // The naming directory must converge on the re-homed set (the
        // monitor retries the directory update each tick; links are
        // healed now, so this is quick).
        let naming = datas[0].naming().expect("node 100 hosts naming");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(set) = naming.replica_set(seg) {
                if set.primary_node() == data_nodes[2] && set.epoch == 2 {
                    break;
                }
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "directory never re-homed to {}: {:?}",
                    data_nodes[2].0,
                    naming.replica_set(seg)
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Reboot the ex-primary: it resyncs its demoted view from the
        // directory before serving again (split-brain prevention), then
        // catches up through mirror pushes as writes resume.
        datas[1].restart(&net);
        let applied_before = datas[1].dsm().stats().mirror_applies;
        for round in ROUNDS_BEFORE + 1..=ROUNDS_BEFORE + ROUNDS_AFTER {
            for page in 0..PAGES as usize {
                let addr = page as u64 * PAGE_SIZE as u64;
                space.write_u64(addr, round).map_err(err("post-failover write"))?;
                space.flush().map_err(err("post-failover flush"))?;
                attempted[page] = round;
                confirmed[page] = round;
            }
        }
        if datas[1].dsm().stats().mirror_applies <= applied_before {
            return Err("restarted ex-primary never caught a mirror push".into());
        }
        drop(space);
        drop(writer);

        // One-copy after re-homing: fresh clients agree on every page
        // and an exclusive probe through the new home reaches them all.
        let fresh_a = dsm_bed::client_with(&net, NodeId(12), data_nodes.to_vec(), failover_client.clone());
        let fresh_b = dsm_bed::client_with(&net, NodeId(13), data_nodes.to_vec(), failover_client.clone());
        let sa = dsm_bed::space(&fresh_a, seg, PAGES);
        let sb = dsm_bed::space(&fresh_b, seg, PAGES);
        for (page, &committed) in confirmed.iter().enumerate() {
            let addr = page as u64 * PAGE_SIZE as u64;
            let va = sa.read_u64(addr).map_err(err("post-heal read"))?;
            if va != committed {
                return Err(format!("page {page}: read {va}, want committed {committed}"));
            }
            let vb = sb.read_u64(addr).map_err(err("post-heal read"))?;
            if vb != va {
                return Err(format!(
                    "page {page}: fresh clients disagree ({va} vs {vb}) — one-copy violated"
                ));
            }
            let probe = 1_000 + page as u64;
            sa.write_u64(addr, probe).map_err(err("post-heal write"))?;
            sa.flush().map_err(err("post-heal flush"))?;
            let got = sb.read_u64(addr).map_err(err("post-heal read"))?;
            if got != probe {
                return Err(format!(
                    "page {page}: probe read back {got}, want {probe} — stale copy after re-homing"
                ));
            }
        }

        // Exactly one promotion happened, on the first backup, and the
        // availability gap it measured stays within the detector budget,
        // plus one verification window (a verify call aborted by a
        // late-landing beacon delays the detection tick by its wall
        // time), plus a few beacon quanta of scan granularity and skew.
        let verify_window = Vt::from_nanos(patient_ratp().retry_interval.as_nanos() as u64)
            .mul(failover.verify_retries as u64);
        let bound = failover.detector().budget() + verify_window + failover.beacon_interval.mul(6);
        let mut promotions = 0;
        for ds in &datas {
            let gap = ds.ratp().obs().registry().histogram_summary("core.failover.gap");
            promotions += gap.count;
            if gap.count > 0 && gap.max > bound {
                return Err(format!(
                    "node {}: availability gap {} exceeds budget bound {bound}",
                    ds.node_id().0,
                    gap.max
                ));
            }
        }
        if promotions != 1 {
            return Err(format!("{promotions} promotions recorded, want exactly 1"));
        }
        for ds in &datas {
            ds.stop_failover();
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Workload 6: a data server crashes mid-2PC and loses its *entire* memory —
// the append-only log is the only survivor. Invariant family:
// committed-durable from log replay alone + presumed abort for undecided
// intents + one-copy after recovery.
// ---------------------------------------------------------------------------

#[test]
fn data_server_recovers_from_log_mid_commit() {
    use bytes::Bytes;
    use clouds::node::DataServer;
    use clouds_consistency::{CommitParticipant, CommitReply, CommitRequest, OutcomeRegistry, PageImage};
    use clouds_dsm::ports;
    use clouds_ra::{Partition as _, PAGE_SIZE};
    use std::sync::Arc;

    let cfg = ChaosConfig::from_env(13);
    const PAGES: u64 = 2;
    const TXNS_BEFORE: u64 = 5;
    let data_nodes = [NodeId(100), NodeId(101)];
    let home = data_nodes[1]; // participant homing the segment (crash target)
    // Like workload 5, the schedule gets no crash-eligible nodes: it
    // degrades every link while the harness reboot-crashes the
    // participant at the worst moment — after the commit decision is
    // durable but before the Commit message lands.
    run_chaos("dsm-recovery", &cfg, &[], |schedule: &FaultSchedule| {
        let net = Network::with_seed(CostModel::zero(), schedule.seed);
        let datas: Vec<DataServer> = data_nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| DataServer::boot(&net, node, patient_ratp(), i == 0))
            .collect();
        // The outcome registry lives on the first data server; the
        // participant under test homes the segment on the second.
        let registry = OutcomeRegistry::new();
        let participants: Vec<Arc<CommitParticipant>> = datas
            .iter()
            .enumerate()
            .map(|(i, ds)| {
                CommitParticipant::install(
                    ds.ratp(),
                    Arc::clone(ds.dsm()),
                    (i == 0).then(|| registry.clone()),
                )
            })
            .collect();

        let writer = dsm_bed::client(&net, NodeId(1), vec![home]);
        let seg = SysName::from_parts(31, 6);
        writer
            .create_segment(seg, PAGES * PAGE_SIZE as u64)
            .map_err(err("create segment"))?;

        // The coordinator is the test itself, speaking the 2PC wire
        // protocol through the writer's transport.
        let call = |node: NodeId, req: &CommitRequest| -> Result<CommitReply, String> {
            let payload = Bytes::from(clouds_codec::to_bytes(req).map_err(err("encode 2pc"))?);
            let reply = writer
                .ratp()
                .call(node, ports::COMMIT, payload)
                .map_err(|e| format!("2pc call: {e}"))?;
            clouds_codec::from_bytes(&reply).map_err(err("decode 2pc"))
        };
        // Every transaction stamps both pages with its id: after any
        // recovery the segment must hold exactly the last *decided*
        // transaction's images on every page.
        let images = |txn: u64| -> Vec<PageImage> {
            (0..PAGES)
                .map(|page| {
                    let mut data = vec![0u8; PAGE_SIZE];
                    data[..8].copy_from_slice(&txn.to_le_bytes());
                    data[8..16].copy_from_slice(&page.to_le_bytes());
                    PageImage {
                        seg,
                        page: page as u32,
                        data,
                    }
                })
                .collect()
        };

        net.set_schedule(schedule);
        let pacer = Pacer::drive(&net, cfg.horizon, PACER_BUDGET);

        // Warm-up transactions under hostile links. Any phase may fail;
        // a recorded outcome is a *decision* and recovery must honor it,
        // so nothing after this loop depends on which commits landed.
        for txn in 1..=TXNS_BEFORE {
            if !matches!(call(home, &CommitRequest::Prepare { txn, pages: images(txn) }), Ok(CommitReply::Ok)) {
                continue;
            }
            if !matches!(call(data_nodes[0], &CommitRequest::RecordOutcome { txn }), Ok(CommitReply::Ok)) {
                continue;
            }
            let _ = call(home, &CommitRequest::Commit { txn });
        }

        // The crash transaction: prepared, decided committed — and the
        // participant dies before any Commit message reaches it. Its
        // images must still survive, reconstructed from the intent
        // record in the log plus the registry's verdict.
        let crash_txn = TXNS_BEFORE + 1;
        match call(home, &CommitRequest::Prepare { txn: crash_txn, pages: images(crash_txn) }) {
            Ok(CommitReply::Ok) => {}
            other => return Err(format!("crash-txn prepare: {other:?}")),
        }
        match call(data_nodes[0], &CommitRequest::RecordOutcome { txn: crash_txn }) {
            Ok(CommitReply::Ok) => {}
            other => return Err(format!("crash-txn record outcome: {other:?}")),
        }
        // A second intent with *no* recorded outcome: presumed abort —
        // its poison images must never become visible.
        let poison_txn = crash_txn + 1;
        match call(home, &CommitRequest::Prepare { txn: poison_txn, pages: images(0xDEAD) }) {
            Ok(CommitReply::Ok) => {}
            other => return Err(format!("poison prepare: {other:?}")),
        }

        // The machine dies: segment cache, staged transactions, replica
        // views, transport state — all DRAM — are gone. Only the log
        // survives.
        datas[1].crash(&net);
        participants[1].crash_volatile_state();

        // Reboot while links are still hostile: replay is local, and the
        // participant's outcome queries ride the patient transport.
        datas[1].restart(&net);
        let (staged, _) = participants[1].resume_from_log();
        if staged < 2 {
            return Err(format!(
                "replay re-staged {staged} intents, want at least the crash and poison txns"
            ));
        }
        let (installed, aborted) =
            participants[1].recover(datas[1].ratp(), data_nodes[0]);
        if installed < 1 {
            return Err(format!("recovery installed {installed} txns, want the decided one"));
        }
        if aborted < 1 {
            return Err(format!("recovery aborted {aborted} txns, want the undecided one"));
        }
        if participants[1].staged_count() != 0 {
            return Err(format!(
                "{} intents still staged after recovery",
                participants[1].staged_count()
            ));
        }
        pacer.finish();

        // Committed-durable from the log alone: both pages hold exactly
        // the decided crash transaction's stamps — not the poison images,
        // not any older round — and two fresh clients agree (one-copy).
        let fresh_a = dsm_bed::client(&net, NodeId(11), vec![home]);
        let fresh_b = dsm_bed::client(&net, NodeId(12), vec![home]);
        let sa = dsm_bed::space(&fresh_a, seg, PAGES);
        let sb = dsm_bed::space(&fresh_b, seg, PAGES);
        for page in 0..PAGES {
            let addr = page * PAGE_SIZE as u64;
            let va = sa.read_u64(addr).map_err(err("post-heal read"))?;
            if va != crash_txn {
                return Err(format!(
                    "page {page}: read txn {va}, want decided txn {crash_txn} — \
                     commit lost (or aborted intent leaked) across the crash"
                ));
            }
            let stamp = sa.read_u64(addr + 8).map_err(err("post-heal read"))?;
            if stamp != page {
                return Err(format!("page {page}: foreign page stamp {stamp} — torn install"));
            }
            let vb = sb.read_u64(addr).map_err(err("post-heal read"))?;
            if vb != va {
                return Err(format!(
                    "page {page}: fresh clients disagree ({va} vs {vb}) — one-copy violated"
                ));
            }
        }

        // The recovery actually went through the log: the replay
        // histogram on the crashed node must account the restart.
        let replay = datas[1]
            .ratp()
            .obs()
            .registry()
            .histogram_summary("store.replay");
        if replay.count < 1 {
            return Err("restart never recorded a store.replay sample".into());
        }

        // Finally the *registry host* loses its memory too: the commit
        // decision itself must be reconstructible from its log.
        datas[0].crash(&net);
        participants[0].crash_volatile_state();
        datas[0].restart(&net);
        let (_, outcomes) = participants[0].resume_from_log();
        if outcomes < 1 {
            return Err(format!(
                "registry host replayed {outcomes} outcomes, want at least the decided txn"
            ));
        }
        match call(data_nodes[0], &CommitRequest::QueryOutcome { txn: crash_txn }) {
            Ok(CommitReply::Committed) => {}
            other => {
                return Err(format!(
                    "decided txn {crash_txn} answered {other:?} after registry-host crash"
                ))
            }
        }
        Ok(())
    });
}
