//! Cross-node causal tracing, end to end: a fault-free 3-node cluster
//! (1 compute server, 1 data server, 1 workstation) runs the paper's
//! quickstart workload, the merged trace is written out as canonical
//! JSONL, and the causal reconstruction API must rebuild at least one
//! trace tree rooted at an invocation span that spans two nodes — with
//! zero orphan parents, zero cycles and no interval-nesting violations.

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_obs::causal::{build_forest, parse_jsonl};

struct Rectangle;

impl ObjectCode for Rectangle {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        ctx.persistent().write_i32(0, 1)?;
        ctx.persistent().write_i32(4, 1)
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "size" => {
                let (x, y): (i32, i32) = decode_args(args)?;
                ctx.persistent().write_i32(0, x)?;
                ctx.persistent().write_i32(4, y)?;
                encode_result(&())
            }
            "area" => {
                let x = ctx.persistent().read_i32(0)?;
                let y = ctx.persistent().read_i32(4)?;
                encode_result(&(x * y))
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

#[test]
fn quickstart_trace_reconstructs_across_nodes() {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(1)
        .build()
        .expect("cluster boots");
    cluster
        .register_class("rectangle", Rectangle)
        .expect("class registers");

    let ws = cluster.workstation(0);
    ws.create_object("rectangle", "Rect01").expect("create");
    ws.run_wait("Rect01", "size", &(5i32, 10i32)).expect("size");
    let area: i32 = ws.run_wait_decode("Rect01", "area", &()).expect("area");
    assert_eq!(area, 50);

    // Round-trip through the on-disk format, not just the in-memory
    // ring: CLOUDS_TRACE consumers read exactly this file.
    let path = std::env::temp_dir().join(format!(
        "clouds-causal-trace-{}.jsonl",
        std::process::id()
    ));
    cluster.write_trace(&path).expect("trace writes");
    let text = std::fs::read_to_string(&path).expect("trace reads back");
    let _ = std::fs::remove_file(&path);

    let events = parse_jsonl(&text).expect("canonical JSONL parses");
    assert!(!events.is_empty(), "trace is not empty");
    let (forest, report) = build_forest(&events);
    assert!(
        report.is_clean(),
        "causal defects in fault-free trace:\n{}",
        report.findings().join("\n")
    );

    // At least one trace must be rooted at an invocation span and reach
    // a second node (the data server answering the page fetches).
    let compute = cluster.compute(0).node_id().0 as u64;
    let cross = forest.trees.values().find(|tree| {
        tree.roots.iter().any(|root| {
            let span = &tree.spans[root];
            span.layer == "invoke" && span.node == compute
        }) && tree.nodes().len() >= 2
    });
    let tree = cross.unwrap_or_else(|| {
        panic!(
            "no invocation-rooted trace spanning >=2 nodes; traces: {:?}",
            forest
                .trees
                .values()
                .map(|t| (t.trace_id, t.nodes()))
                .collect::<Vec<_>>()
        )
    });

    // The cross-node hop must be causally attributed: some span on a
    // remote node has a parent recorded on the compute server.
    let remote_child = tree.spans.values().any(|s| {
        s.node != compute
            && s.parent != 0
            && tree.spans.get(&s.parent).is_some_and(|p| p.node == compute)
    });
    assert!(
        remote_child,
        "no remote span parented by a compute-server span in trace {:#x}",
        tree.trace_id
    );

    // And the critical path through that tree telescopes: per-step self
    // times must sum back to the root's duration.
    let root = tree.roots[0];
    let path = tree.critical_path(root);
    assert!(!path.is_empty());
    let total: u64 = path.iter().map(|s| s.self_time).sum();
    assert_eq!(
        total,
        tree.spans[&root].dur.unwrap_or(0),
        "critical-path self times must telescope to the root duration"
    );
}
