//! Trace-determinism invariant: the same seed must produce the same
//! virtual-time event stream, byte for byte.
//!
//! Every `clouds-obs` event is stamped with *virtual* time, and the
//! canonical stream is sorted by `(ts, node, layer, name, args, dur)` —
//! so thread interleaving cannot reorder it. What CAN break equality is
//! genuine nondeterminism: wall-clock retransmission timers firing,
//! fault-RNG draws, or virtual-clock charges racing. This invariant
//! pins the fault-free case: a sequential workload on a freshly booted
//! cluster, run twice from the same seed in the same process, must
//! produce byte-identical canonical JSONL and identical protocol
//! counters.
//!
//! Under an active fault schedule the stream is *not* expected to be
//! byte-stable (retransmit instants depend on wall-clock timing), which
//! is why the chaos workloads in `workloads.rs` check semantic
//! invariants instead. Determinism is asserted exactly where the system
//! promises it.

use clouds::prelude::*;
use clouds::encode_result;
use clouds_dsm::{DsmClientStats, DsmServerStats};
use clouds_ratp::RatpConfig;
use clouds_simnet::CostModel;
use std::time::Duration;

/// One persistent cell: bump/get over a single page, so an s-thread
/// flush always carries exactly one dirty page.
struct Cell;

impl ObjectCode for Cell {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        ctx.persistent().write_u64(0, 0)
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, _args: &[u8]) -> EntryResult {
        match entry {
            "bump" => {
                let v = ctx.persistent().read_u64(0)?;
                ctx.persistent().write_u64(0, v + 1)?;
                encode_result(&(v + 1))
            }
            "get" => encode_result(&ctx.persistent().read_u64(0)?),
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }

    fn label(&self, _entry: &str) -> OperationLabel {
        OperationLabel::S
    }
}

/// Boot a one-compute/one-data cluster, run a sequential bump/get
/// workload, and return the canonical trace plus the protocol counters.
fn run_once(seed: u64) -> (String, u64, DsmClientStats, DsmServerStats) {
    // Retransmissions are paced by *wall-clock* timers, and every
    // retransmitted packet charges virtual transport time — on a loaded
    // host that would leak real scheduling jitter into virtual
    // durations. A patient retry interval keeps a fault-free run
    // retransmit-free, so its virtual timeline depends only on the
    // workload.
    let patient = RatpConfig {
        retry_interval: Duration::from_secs(5),
        max_retries: 120,
        dup_cache_size: 4096,
    };
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(0)
        .cost_model(CostModel::sun3_ethernet())
        .seed(seed)
        .server_ratp_config(patient)
        .build()
        .expect("cluster boots");
    cluster.register_class("cell", Cell).expect("register");
    let obj = cluster.create_object("cell", "the-cell").expect("create");
    let compute = cluster.compute(0);
    for _ in 0..5 {
        compute.invoke(obj, "bump", &[], None).expect("bump");
    }
    compute.invoke(obj, "get", &[], None).expect("get");

    let sink = cluster.trace_sink();
    (
        sink.canonical_jsonl(),
        sink.dropped(),
        compute.dsm().stats(),
        cluster.data_server(0).dsm().stats(),
    )
}

#[test]
fn same_seed_produces_byte_identical_event_streams() {
    let (stream_a, dropped_a, client_a, server_a) = run_once(0xC1A05);
    let (stream_b, dropped_b, client_b, server_b) = run_once(0xC1A05);

    assert_eq!(dropped_a, 0, "ring must not overflow in this workload");
    assert_eq!(dropped_b, 0);
    assert!(!stream_a.is_empty(), "workload must produce events");

    // The stream spans every layer the workload exercises.
    for layer in ["\"layer\":\"invoke\"", "\"layer\":\"ratp\"", "\"layer\":\"dsm.client\"", "\"layer\":\"dsm.server\""] {
        assert!(stream_a.contains(layer), "missing {layer} in trace");
    }

    if stream_a != stream_b {
        if std::env::var_os("DETERMINISM_DUMP").is_some() {
            std::fs::write("/tmp/stream_a.jsonl", &stream_a).unwrap();
            std::fs::write("/tmp/stream_b.jsonl", &stream_b).unwrap();
        }
        let a: Vec<&str> = stream_a.lines().collect();
        let b: Vec<&str> = stream_b.lines().collect();
        let i = (0..a.len().max(b.len()))
            .find(|&i| a.get(i) != b.get(i))
            .unwrap_or(0);
        panic!(
            "same seed must replay the same virtual-time event stream\n\
             lengths: {} vs {} events; first divergence at line {i}:\n\
             run A: {}\nrun B: {}",
            a.len(),
            b.len(),
            a.get(i).unwrap_or(&"<eof>"),
            b.get(i).unwrap_or(&"<eof>"),
        );
    }
    assert_eq!(client_a, client_b, "client counters must be deterministic");
    assert_eq!(server_a, server_b, "server counters must be deterministic");
}

#[test]
fn registry_counters_reconcile_with_trace_volume() {
    let (stream, _, client, server) = run_once(0xD15C0);
    // Every batched client fetch leaves one fetch_pages span in the
    // trace; the registry and the trace must tell the same story.
    let fetch_spans = stream.matches("\"name\":\"fetch_pages\"").count() as u64;
    assert_eq!(fetch_spans, client.batch_fetches);
    // Pages granted as seen by the client equal grants served by the
    // server (speculative read-ahead grants count on both sides).
    assert_eq!(
        client.pages_granted,
        server.read_grants + server.write_grants
    );
}
