//! The chaos flight recorder: a run that violates an invariant must
//! leave a dump — merged cross-node trace, canonical registry snapshot
//! and a replay file carrying the seed — in `CHAOS_DUMP_DIR`, and
//! re-running that seed must reproduce the violation.

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_chaos::{arm_flight_recorder, run_chaos, ChaosConfig};
use clouds_obs::causal::{build_forest, parse_jsonl};
use clouds_simnet::{CostModel, FaultSchedule, NodeId, Vt};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

struct Counter;

impl ObjectCode for Counter {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        ctx.persistent().write_i32(0, 0)
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "add" => {
                let n: i32 = decode_args(args)?;
                let v = ctx.persistent().read_i32(0)?;
                ctx.persistent().write_i32(0, v + n)?;
                encode_result(&(v + n))
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

/// The workload under test: runs real traffic (so the ring buffer has a
/// cross-node trace to dump), then reports an invariant violation
/// whenever the schedule contains any disruption. Deterministic in the
/// seed, so replaying the reported seed reproduces the violation.
fn violating_workload(schedule: &FaultSchedule) -> Result<(), String> {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(0)
        .cost_model(CostModel::zero())
        .seed(schedule.seed)
        .build()
        .map_err(|e| format!("cluster boot: {e}"))?;
    arm_flight_recorder(cluster.trace_sink().clone(), cluster.registries());
    cluster
        .register_class("counter", Counter)
        .map_err(|e| format!("register: {e}"))?;
    let obj = cluster
        .create_object("counter", "FlightCounter")
        .map_err(|e| format!("create: {e}"))?;
    let v: i32 = cluster
        .compute(0)
        .invoke(obj, "add", &clouds::encode_args(&7i32).unwrap(), None)
        .and_then(|b| clouds::decode_args(&b))
        .map_err(|e| format!("invoke: {e}"))?;
    if v != 7 {
        return Err(format!("counter read {v}, expected 7"));
    }
    if schedule.disruptions.is_empty() {
        Ok(())
    } else {
        Err("synthetic invariant violation: schedule had disruptions".into())
    }
}

fn run_one(seed: u64, horizon: Vt) -> Result<(), String> {
    let cfg = ChaosConfig {
        schedules: 1,
        base_seed: 0,
        horizon,
        replay: Some(seed),
    };
    catch_unwind(AssertUnwindSafe(|| {
        run_chaos("flightrec", &cfg, &[NodeId(1), NodeId(100)], violating_workload);
    }))
    .map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    })
}

#[test]
fn violation_dumps_trace_registry_and_seed_and_replays() {
    let horizon = Vt::from_millis(50);
    let nodes = [NodeId(1), NodeId(100)];
    // Find a seed whose schedule actually disrupts something.
    let seed = (0..500u64)
        .find(|&s| !FaultSchedule::generate(s, &nodes, horizon).disruptions.is_empty())
        .expect("some seed produces a disruption");

    // Route dumps to a private directory. Safe here: this integration
    // test binary holds exactly one test, so no other thread races the
    // process environment.
    let dump_root = std::env::temp_dir().join(format!("clouds-flightrec-{}", std::process::id()));
    std::env::set_var(clouds_chaos::CHAOS_DUMP_DIR_ENV, &dump_root);

    let msg = run_one(seed, horizon).expect_err("violating workload must panic");
    assert!(msg.contains("synthetic invariant violation"), "{msg}");
    assert!(msg.contains("flight recorder dump:"), "{msg}");

    let dir: PathBuf = dump_root.join(format!("flightrec-{seed:016x}"));
    assert!(dir.is_dir(), "dump directory missing: {}", dir.display());

    // The dump must carry a parseable merged trace…
    let trace = std::fs::read_to_string(dir.join("trace.jsonl")).expect("trace.jsonl");
    let events = parse_jsonl(&trace).expect("dumped trace parses");
    assert!(!events.is_empty());
    let (_forest, report) = build_forest(&events);
    assert!(report.is_clean(), "{}", report.findings().join("\n"));

    // …a canonically sorted registry snapshot with per-node sections…
    let registry = std::fs::read_to_string(dir.join("registry.txt")).expect("registry.txt");
    assert!(registry.contains("# node 1\n"), "{registry}");
    assert!(registry.contains("# node 100\n"), "{registry}");
    assert!(registry.contains("counter "), "{registry}");

    // …and the failing seed, replayable.
    let replay = std::fs::read_to_string(dir.join("replay.txt")).expect("replay.txt");
    assert!(replay.contains(&format!("seed: {seed:#x}")), "{replay}");
    assert!(replay.contains("CHAOS_SEED="), "{replay}");

    // Re-running the recorded seed reproduces the violation.
    let again = run_one(seed, horizon).expect_err("replay must fail again");
    assert!(again.contains("synthetic invariant violation"), "{again}");

    let _ = std::fs::remove_dir_all(&dump_root);
}
