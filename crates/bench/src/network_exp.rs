//! E2 — network microbenchmarks (§4.3 ¶2–3).
//!
//! Paper: "The Ethernet round-trip time is 2.4 ms; this involves sending
//! and receiving a short message (72 bytes) between two compute servers.
//! The RaTP reliable round-trip time is 4.8 ms. To reliably transfer an
//! 8K page from one machine to another costs 11.9 ms, compared to 70 ms
//! using Unix FTP and 50 ms using Unix NFS."

use crate::baselines;
use bytes::Bytes;
use clouds_ratp::{RatpConfig, RatpNode, Request};
use clouds_simnet::{CostModel, Network, NodeId, Vt};
use std::sync::Arc;
use std::time::Duration;

/// Measured results of the network benchmarks (virtual time).
#[derive(Debug, Clone, Copy)]
pub struct NetworkResults {
    /// Raw frame echo, 72-byte message.
    pub ethernet_rtt: Vt,
    /// Null RaTP transaction.
    pub ratp_rtt: Vt,
    /// 8 KB one-way reliable transfer over RaTP.
    pub ratp_8k: Vt,
    /// 8 KB via the FTP-like baseline.
    pub ftp_8k: Vt,
    /// 8 KB via the NFS-like baseline.
    pub nfs_8k: Vt,
}

/// Raw Ethernet echo round trip for a payload of `len` bytes.
pub fn ethernet_rtt(net: &Network, len: usize) -> Vt {
    let a = net.register(NodeId(51)).expect("fresh node");
    let b = net.register(NodeId(52)).expect("fresh node");
    let echo = std::thread::spawn(move || {
        if let Ok(frame) = b.recv_timeout(Duration::from_secs(5)) {
            let _ = b.send(frame.src, frame.payload);
        }
    });
    let start = a.clock().now();
    a.send(NodeId(52), Bytes::from(vec![0u8; len])).unwrap();
    let _ = a.recv_timeout(Duration::from_secs(5)).unwrap();
    let rtt = a.clock().now() - start;
    echo.join().expect("echo thread");
    rtt
}

/// One-way reliable transfer of `len` bytes over RaTP: the client sends
/// the payload, the server replies with a short acknowledgement. The
/// measured duration is the sender's virtual time until the ack.
pub fn ratp_transfer(net: &Network, len: usize) -> Vt {
    let a = RatpNode::spawn(net.register(NodeId(53)).expect("fresh"), RatpConfig::default());
    let b = RatpNode::spawn(net.register(NodeId(54)).expect("fresh"), RatpConfig::default());
    b.register_service(1, |_req: Request| Bytes::new());
    let start = a.clock().now();
    a.call(NodeId(54), 1, Bytes::from(vec![0u8; len])).unwrap();
    a.clock().now() - start
}

/// Null (empty-payload) RaTP transaction round trip.
pub fn ratp_null_rtt(net: &Network) -> Vt {
    ratp_transfer(net, 0)
}

/// Run the whole E2 suite (each measurement on a fresh network so the
/// clocks start at zero).
pub fn run() -> NetworkResults {
    let cost = CostModel::sun3_ethernet();
    let ethernet = ethernet_rtt(&Network::new(cost.clone()), 72);
    let ratp = ratp_null_rtt(&Network::new(cost.clone()));
    let ratp8k = ratp_transfer(&Network::new(cost.clone()), 8192);
    let ftp = baselines::ftp_sim(&Network::new(cost.clone()), 8192);
    let nfs = baselines::nfs_sim(&Network::new(cost), 8192);
    NetworkResults {
        ethernet_rtt: ethernet,
        ratp_rtt: ratp,
        ratp_8k: ratp8k,
        ftp_8k: ftp,
        nfs_8k: nfs,
    }
}

/// Keep a hold of `Arc<RatpNode>` types referenced in doc text.
#[doc(hidden)]
pub fn _anchor(_: Option<Arc<RatpNode>>) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_matches_paper_shape() {
        let r = run();
        // Exact calibration points.
        assert_eq!(r.ethernet_rtt, Vt::from_micros(2400)); // paper: 2.4 ms
        // Paper: 4.8 ms. A null transaction's packets are 33 bytes on
        // the wire (RaTP header only) vs the 72-byte calibration
        // message, so the model lands ~2% under.
        assert!(r.ratp_rtt >= Vt::from_micros(4600), "{}", r.ratp_rtt);
        assert!(r.ratp_rtt <= Vt::from_micros(4900), "{}", r.ratp_rtt);
        // 8K transfer: paper 11.9 ms; ours must be in the same band and
        // strictly ordered against the baselines.
        assert!(r.ratp_8k >= Vt::from_millis(8), "{}", r.ratp_8k);
        assert!(r.ratp_8k <= Vt::from_millis(18), "{}", r.ratp_8k);
        assert!(r.ratp_8k < r.nfs_8k, "ratp {} nfs {}", r.ratp_8k, r.nfs_8k);
        assert!(r.nfs_8k < r.ftp_8k, "nfs {} ftp {}", r.nfs_8k, r.ftp_8k);
    }
}
