//! E12 — crash-recovery time from the append-only log (this repo's
//! single-level-store mechanics, not a paper table).
//!
//! The paper's data servers are "repositories for long-lived data"
//! (§3): a crashed one must come back serving exactly the committed
//! state. In this reproduction durability lives in the segment-
//! structured log (`clouds-store`), so recovery time is the sequential
//! replay of that log — one seek per log segment plus a streaming scan
//! (see [`clouds_store::replay_cost`]). This experiment grows the log by
//! writing more pages through the normal write-back path, then
//! reboot-crashes the server (its whole DRAM is wiped) and reports how
//! long the replay keeps the server unavailable.

use clouds_codec::PageBytes;
use clouds_dsm::proto::{self, ports, DsmReply, DsmRequest};
use clouds_dsm::DsmServer;
use clouds_ra::{SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId, Vt};

/// One row of the E12 table: a log of `pages_written` page records and
/// the cost of replaying it after a full crash.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryRow {
    /// Dirty pages written through the server before the crash (the
    /// workload knob; each write-back appends one page record).
    pub pages_written: u64,
    /// Log bytes scanned by the replay.
    pub log_bytes: u64,
    /// Fixed-size log segments the replay seeked across.
    pub log_segments: u64,
    /// Records replayed.
    pub records: u64,
    /// Virtual time the replay charged the server — the availability
    /// gap a restart adds before the server can serve again, as
    /// recorded in the `store.replay` histogram.
    pub replay_vt: Vt,
}

/// Run one crash/replay measurement with a log of `pages_written` page
/// records (fresh network per row so the clocks start at zero).
fn row(pages_written: u64) -> RecoveryRow {
    let net = Network::new(CostModel::sun3_ethernet());
    let home = NodeId(100);
    let ds = RatpNode::spawn(net.register(home).expect("server node"), RatpConfig::default());
    let server = DsmServer::install(&ds);
    let seg = SysName::from_parts(12, 1);

    // Seed through the wire so every page takes the normal durable
    // write-back path (page record appended before the ack).
    let raw = RatpNode::spawn(net.register(NodeId(99)).expect("seed node"), RatpConfig::default());
    let call = |req: &DsmRequest| {
        let reply = raw
            .call(home, ports::DSM_SERVER, proto::encode(req))
            .expect("seed rpc");
        assert!(matches!(proto::decode(&reply).expect("decode"), DsmReply::Ok));
    };
    call(&DsmRequest::CreateSegment {
        seg,
        len: pages_written * PAGE_SIZE as u64,
    });
    for page in 0..pages_written {
        call(&DsmRequest::WriteBack {
            seg,
            page: page as u32,
            data: PageBytes::from(vec![page as u8; PAGE_SIZE]),
            release: true,
        });
    }

    // Reboot-crash: every volatile structure dies, only the log is left.
    server.begin_recovery();
    server.clear_directory();
    server.wipe_store();
    let out = server.recover_from_log();
    server.finish_recovery();

    // Committed-durable sanity: every written page must be back.
    for page in 0..pages_written {
        let byte = server
            .store()
            .get(seg)
            .expect("segment replayed")
            .read()
            .read(page * PAGE_SIZE as u64, 1)
            .expect("page replayed");
        assert_eq!(byte[0], page as u8, "page {page} lost across the crash");
    }

    let replay = ds.obs().registry().histogram_summary("store.replay");
    assert_eq!(replay.count, 1, "exactly one replay must be recorded");
    RecoveryRow {
        pages_written,
        log_bytes: out.bytes,
        log_segments: out.log_segments,
        records: out.records,
        replay_vt: replay.max,
    }
}

/// Run the E12 sweep: log sizes from a handful of pages to a few MiB.
pub fn run() -> Vec<RecoveryRow> {
    [16, 64, 256].into_iter().map(row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_replay_time_grows_with_the_log() {
        let rows = run();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // Every page record is in the log (plus the create record).
            assert!(r.records > r.pages_written, "{r:?}");
            assert!(r.log_bytes > r.pages_written * PAGE_SIZE as u64, "{r:?}");
            assert!(r.log_segments >= 1, "{r:?}");
            assert!(r.replay_vt > Vt::ZERO, "{r:?}");
        }
        // Bigger logs take longer to replay: the availability gap is the
        // price of the log-structured store, and it must scale with log
        // size, not with anything hidden.
        assert!(rows[0].replay_vt < rows[1].replay_vt, "{rows:?}");
        assert!(rows[1].replay_vt < rows[2].replay_vt, "{rows:?}");
    }
}
