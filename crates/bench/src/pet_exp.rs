//! E6 — the PET resources/resilience trade-off (§5.2.2).
//!
//! "This method allows a tradeoff in the amount of resources used (i.e.
//! the number of parallel threads started for each computation) and the
//! desired degree of resilience (number of failures the computation can
//! tolerate, while the computation is in progress.)"
//!
//! The sweep runs a resilient computation with replication degree `r`
//! and PET count `n` under injected failures (one data server and one
//! compute server crashed per trial, chosen round-robin by trial
//! number), and reports the success rate.

use clouds::prelude::*;
use clouds_consistency::ConsistencyRuntime;
use clouds_pet::{resilient_invoke, PetOptions, ReplicatedObject};
use clouds_simnet::CostModel;

/// One cell of the resilience sweep.
#[derive(Debug, Clone, Copy)]
pub struct PetPoint {
    /// Replication degree.
    pub replicas: usize,
    /// Parallel execution threads.
    pub pets: usize,
    /// Trials attempted.
    pub trials: u32,
    /// Trials that completed and committed a quorum.
    pub successes: u32,
}

struct Tally;

impl ObjectCode for Tally {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "add" => {
                let n: u64 = decode_args(args)?;
                let v = ctx.persistent().read_u64(0)? + n;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&v)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

/// Run one (replicas, pets) cell with `trials` trials. Each trial
/// crashes one compute server and one data server (different pick each
/// trial) *before* the computation starts.
pub fn run_cell(replicas: usize, pets: usize, trials: u32) -> PetPoint {
    let mut successes = 0;
    for trial in 0..trials {
        let cluster = Cluster::builder()
            .compute_servers(3)
            .data_servers(3)
            .workstations(0)
            .cost_model(CostModel::zero())
            .build()
            .expect("cluster boots");
        cluster.register_class("tally", Tally).expect("register");
        let _runtime = ConsistencyRuntime::install(&cluster);
        let robj =
            ReplicatedObject::create(cluster.compute(0), "tally", replicas).expect("replicas");

        // Static failures: one compute server, one data server.
        cluster.crash_compute(trial as usize % 3);
        cluster.crash_data_server((trial as usize + 1) % 3);

        let outcome = resilient_invoke(
            cluster.computes(),
            &robj,
            "add",
            &encode_args(&1u64).expect("args"),
            &PetOptions {
                pets,
                ..PetOptions::default()
            },
        );
        if outcome.is_ok() {
            successes += 1;
        }
    }
    PetPoint {
        replicas,
        pets,
        trials,
        successes,
    }
}

/// Virtual-time overhead of resilience on a *healthy* cluster: the
/// resources half of the §5.2.2 trade-off. Returns (pets, vt) pairs for
/// one `add` computation at replication degree 3.
pub fn overhead() -> Vec<(usize, clouds_simnet::Vt)> {
    use clouds_simnet::Vt;
    let mut out = Vec::new();
    for pets in [1usize, 2, 3] {
        let cluster = Cluster::builder()
            .compute_servers(3)
            .data_servers(3)
            .workstations(0)
            .build()
            .expect("cluster boots");
        cluster.register_class("tally", Tally).expect("register");
        let _runtime = ConsistencyRuntime::install(&cluster);
        let robj =
            ReplicatedObject::create(cluster.compute(0), "tally", 3).expect("replicas");
        let before: Vec<Vt> = (0..3)
            .map(|i| {
                cluster
                    .network()
                    .clock(cluster.compute(i).node_id())
                    .expect("clock")
                    .now()
            })
            .collect();
        resilient_invoke(
            cluster.computes(),
            &robj,
            "add",
            &encode_args(&1u64).expect("args"),
            &PetOptions {
                pets,
                ..PetOptions::default()
            },
        )
        .expect("healthy run succeeds");
        let spent = (0..3)
            .map(|i| {
                cluster
                    .network()
                    .clock(cluster.compute(i).node_id())
                    .expect("clock")
                    .now()
                    .saturating_sub(before[i])
            })
            .max()
            .expect("three nodes");
        out.push((pets, spent));
    }
    out
}

/// Run the full E6 sweep.
pub fn run(trials: u32) -> Vec<PetPoint> {
    let mut out = Vec::new();
    for &replicas in &[1usize, 3] {
        for &pets in &[1usize, 3] {
            out.push(run_cell(replicas, pets, trials));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_resources_buy_resilience() {
        // Minimal configuration fails under some failure placements…
        let weak = run_cell(1, 1, 3);
        // …while full replication + full PET fan-out always survives a
        // single compute + single data server crash.
        let strong = run_cell(3, 3, 3);
        assert_eq!(strong.successes, strong.trials, "{strong:?}");
        assert!(
            weak.successes < weak.trials,
            "r=1/n=1 should fail under some placements: {weak:?}"
        );
    }
}
