//! Regenerate every measured claim of the paper in one run:
//!
//! ```text
//! cargo run -p clouds-bench --release --bin paper_tables
//! ```
//!
//! Results are in virtual time under the calibrated Sun-3/Ethernet cost
//! model (see `clouds_simnet::CostModel::sun3_ethernet`); EXPERIMENTS.md
//! records a snapshot with commentary.

use clouds_bench::report::{ms, print_table, Row};
use clouds_bench::{
    causal_exp, consistency_exp, invocation_exp, kernel_exp, load, network_exp, paging_exp,
    pet_exp, recovery_exp, sort_exp,
};

fn main() {
    println!("Clouds reproduction — paper-vs-measured tables");
    println!("(virtual time, calibrated Sun-3 / 10 Mb/s Ethernet cost model)");

    // E1 — kernel microbenchmarks.
    let k = kernel_exp::run();
    print_table(
        "E1  Kernel microbenchmarks (§4.3)",
        &[
            Row::new(
                "context switch",
                "0.14 ms",
                ms(k.context_switch),
                format!("over {} switches", k.switches),
            ),
            Row::new("page fault, zero-filled 8K", "1.5 ms", ms(k.fault_zero), "exact"),
            Row::new("page fault, non-zero-filled", "0.629 ms", ms(k.fault_copy), "exact"),
        ],
    );

    // E2 — network.
    let n = network_exp::run();
    print_table(
        "E2  Network (§4.3)",
        &[
            Row::new("Ethernet round trip, 72 B", "2.4 ms", ms(n.ethernet_rtt), "calibration point"),
            Row::new("RaTP reliable round trip", "4.8 ms", ms(n.ratp_rtt), "calibration point"),
            Row::new("8K page transfer, RaTP", "11.9 ms", ms(n.ratp_8k), "6 fragments + ack"),
            Row::new("8K transfer, Unix NFS", "50 ms", ms(n.nfs_8k), "block-RPC baseline"),
            Row::new("8K transfer, Unix FTP", "70 ms", ms(n.ftp_8k), "stop-and-wait baseline"),
        ],
    );

    // E3 — invocation.
    let i = invocation_exp::run();
    print_table(
        "E3  Null object invocation (§4.3)",
        &[
            Row::new("minimum (object in memory)", "8 ms", ms(i.hot), "2×(switch+remap)"),
            Row::new(
                "maximum (fetch from data server)",
                "103 ms",
                ms(i.cold),
                "header + code demand-paged",
            ),
            Row::new(
                "locality-weighted mean (5% cold)",
                "\"close to min\"",
                ms(i.mixed_mean),
                "matches the paper's claim",
            ),
        ],
    );

    // E4 — distributed sort.
    let sort = sort_exp::run();
    let base = sort[0].makespan;
    let rows: Vec<Row> = sort
        .iter()
        .map(|p| {
            Row::new(
                format!("{} worker(s)", p.workers),
                "speedup expected",
                format!(
                    "{}  (×{:.2})",
                    ms(p.makespan),
                    base.as_nanos() as f64 / p.makespan.as_nanos().max(1) as f64
                ),
                format!("{} frames, {} page migrations", p.frames, p.page_migrations),
            )
        })
        .collect();
    print_table("E4  Distributed sort over DSM (§5.1)", &rows);

    // E5 — consistency spectrum.
    let cons = consistency_exp::run();
    let rows: Vec<Row> = cons
        .iter()
        .map(|p| {
            Row::new(
                format!("{}-threads", p.label),
                match p.label.as_str() {
                    "S" => "fast, unsafe",
                    "LCP" => "locking, local commit",
                    _ => "locking + 2PC",
                },
                format!("{} /op", ms(p.vt_per_op)),
                format!(
                    "balance {}/{} ({} aborts){}",
                    p.final_balance,
                    p.attempted,
                    p.aborts,
                    if p.final_balance < p.attempted {
                        "  ← lost updates!"
                    } else {
                        ""
                    }
                ),
            )
        })
        .collect();
    print_table("E5  Consistency labels: s / lcp / gcp threads (§5.2.1)", &rows);

    // E6 — PET resilience.
    let pets = pet_exp::run(3);
    let rows: Vec<Row> = pets
        .iter()
        .map(|p| {
            Row::new(
                format!("r={} replicas, n={} PETs", p.replicas, p.pets),
                "more resources → more resilience",
                format!("{}/{} trials survive", p.successes, p.trials),
                "1 compute + 1 data server crashed per trial",
            )
        })
        .collect();
    print_table("E6  PET: resources vs resilience (§5.2.2)", &rows);

    // E6b — the other side of the trade-off: what the resources cost on
    // a healthy cluster (virtual time of one resilient computation).
    let overhead = pet_exp::overhead();
    let rows: Vec<Row> = overhead
        .iter()
        .map(|(pets, vt)| {
            Row::new(
                format!("n={pets} PETs, r=3, no failures"),
                "resources cost",
                ms(*vt),
                "virtual time of one resilient add",
            )
        })
        .collect();
    print_table("E6b PET overhead on a healthy cluster (§5.2.2)", &rows);

    // A1 — ablation: the same sort on a modern LAN, where communication
    // is ~40× cheaper relative to computation: finer granularity pays.
    let modern: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| sort_exp::run_sort_with_cost(w, clouds_simnet::CostModel::modern_lan()))
        .collect();
    let mbase = modern[0].makespan;
    let rows: Vec<Row> = modern
        .iter()
        .map(|p| {
            Row::new(
                format!("{} worker(s), modern LAN", p.workers),
                "(ablation)",
                format!(
                    "{}  (×{:.2})",
                    ms(p.makespan),
                    mbase.as_nanos() as f64 / p.makespan.as_nanos().max(1) as f64
                ),
                format!("{} frames", p.frames),
            )
        })
        .collect();
    print_table(
        "A1  Ablation: sort speedup vs network generation (design trade-off of §5.1)",
        &rows,
    );

    // E7 — batched paging ablation: read-ahead grants + coalesced
    // write-back flushes vs the one-RPC-per-page protocol.
    let p = paging_exp::run();
    print_table(
        "E7  Batched DSM paging: read-ahead + coalesced flush (ablation)",
        &[
            Row::new(
                "128-page sequential scan, unbatched",
                "(baseline)",
                ms(p.scan_unbatched.vt),
                format!("{} fetch RPCs", p.scan_unbatched.rpcs),
            ),
            Row::new(
                "128-page sequential scan, read-ahead 8",
                "(ours)",
                ms(p.scan_batched.vt),
                format!("{} fetch RPCs", p.scan_batched.rpcs),
            ),
            Row::new(
                "32-dirty-page commit flush, per-page",
                "(baseline)",
                ms(p.flush_unbatched.vt),
                format!("{} write-back RPCs", p.flush_unbatched.rpcs),
            ),
            Row::new(
                "32-dirty-page commit flush, coalesced",
                "(ours)",
                ms(p.flush_batched.vt),
                format!("{} write-back RPCs", p.flush_batched.rpcs),
            ),
        ],
    );

    // E8 — per-layer latency breakdown of the batched E7 scan, read
    // from the client's clouds-obs metrics registry.
    let b = paging_exp::run_layer_breakdown();
    let share = |vt: clouds_simnet::Vt| {
        format!("{:.0}%", 100.0 * vt.as_nanos() as f64 / b.total.as_nanos().max(1) as f64)
    };
    print_table(
        "E8  Per-layer latency breakdown of the batched scan (clouds-obs registry)",
        &[
            Row::new(
                "whole scan (client clock)",
                "—",
                ms(b.total),
                format!("{} pages", paging_exp::SCAN_PAGES),
            ),
            Row::new(
                "dsm.client.fetch (fault service)",
                "—",
                ms(b.dsm_fetch.sum),
                format!(
                    "{} of total; n={}, p50 {}, p99 {}",
                    share(b.dsm_fetch.sum),
                    b.dsm_fetch.count,
                    ms(b.dsm_fetch.p50),
                    ms(b.dsm_fetch.p99)
                ),
            ),
            Row::new(
                "ratp.call (wire transactions)",
                "—",
                ms(b.ratp_call.sum),
                format!(
                    "{} of total; n={}, p50 {}, p99 {}",
                    share(b.ratp_call.sum),
                    b.ratp_call.count,
                    ms(b.ratp_call.p50),
                    ms(b.ratp_call.p99)
                ),
            ),
            Row::new(
                "dsm bookkeeping above transport",
                "—",
                ms(b.dsm_overhead()),
                "fetch − wire: decode, install, acks",
            ),
            Row::new(
                "local compute (no fault taken)",
                "—",
                ms(b.local_compute()),
                "scan − fetch: MMU hits + the reads",
            ),
        ],
    );

    // E9 — causal critical path: where the virtual time of one remote
    // invocation actually lives, exclusive of children, derived from
    // the cross-node trace tree rather than per-layer histograms.
    let c = causal_exp::run();
    let mut rows = vec![Row::new(
        "invocation critical path (root)",
        "—",
        ms(c.root_dur),
        format!(
            "{} steps, {} nodes, {} traces / {} spans in run",
            c.path.len(),
            c.trace_nodes,
            c.traces,
            c.spans
        ),
    )];
    rows.extend(c.layer_self.iter().map(|(layer, self_ns)| {
        Row::new(
            format!("  self time in {layer}"),
            "—",
            ms(clouds_simnet::Vt::from_nanos(*self_ns)),
            format!(
                "{:.0}% of critical path",
                100.0 * *self_ns as f64 / c.root_dur.as_nanos().max(1) as f64
            ),
        )
    }));
    print_table(
        "E9  Causal critical path of a remote invocation (clouds-obs traces)",
        &rows,
    );

    // E11 — concurrent-scan scaling: 1/2/4 clients demand-paging
    // disjoint segments from one data server, aggregate throughput and
    // the worst per-client fault-service p99 from the obs registry.
    let scaling = paging_exp::run_concurrent_scans();
    print_table(
        "E11 Concurrent demand-paging scans against one data server",
        &scaling
            .iter()
            .map(|r| {
                Row::new(
                    format!(
                        "{} client{} × {} pages",
                        r.clients,
                        if r.clients == 1 { "" } else { "s" },
                        paging_exp::CONCURRENT_PAGES
                    ),
                    "—",
                    ms(r.elapsed),
                    format!("{:.1} MiB/s aggregate, fetch p99 {}", r.mib_per_s, ms(r.fetch_p99)),
                )
            })
            .collect::<Vec<_>>(),
    );

    // E12 — crash-recovery time from the append-only log: grow the log
    // by writing more pages through the server, reboot-crash it, and
    // report how long the replay keeps the server unavailable.
    let recovery = recovery_exp::run();
    print_table(
        "E12 Data-server crash recovery by log replay",
        &recovery
            .iter()
            .map(|r| {
                Row::new(
                    format!("{} dirty pages", r.pages_written),
                    "—",
                    ms(r.replay_vt),
                    format!(
                        "{} KiB log, {} segment{}, {} records replayed",
                        r.log_bytes / 1024,
                        r.log_segments,
                        if r.log_segments == 1 { "" } else { "s" },
                        r.records
                    ),
                )
            })
            .collect::<Vec<_>>(),
    );

    // E13 — open-loop latency vs offered load: the saturation knee,
    // measured coordinated-omission-correctly (latency from *intended*
    // arrival, so queueing past the knee is charged, not hidden). Same
    // sweep and seed as the committed SLO_dsm.json gate baselines.
    let slo = load::run_e13(load::DEFAULT_SEED);
    print_table(
        "E13 Open-loop latency vs offered load (SLO sweep, seed-deterministic)",
        &slo.iter()
            .map(|p| {
                Row::new(
                    format!("{} @ {} rps offered", p.scenario, p.offered_rps),
                    "knee expected",
                    format!(
                        "p50 {}, p99 {}, p999 {}",
                        ms(p.p50),
                        ms(p.p99),
                        ms(p.p999)
                    ),
                    format!(
                        "achieved {:.1} rps, {} reqs, {} errors",
                        p.achieved_rps_milli as f64 / 1000.0,
                        p.requests,
                        p.errors
                    ),
                )
            })
            .collect::<Vec<_>>(),
    );

    println!();
    println!("done. see EXPERIMENTS.md for the recorded snapshot and commentary.");
}
