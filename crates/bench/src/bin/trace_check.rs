//! Validate a `clouds-obs` JSONL trace (`CLOUDS_TRACE=path.jsonl`):
//!
//! ```text
//! cargo run -p clouds-bench --bin trace_check -- path.jsonl
//! ```
//!
//! Checks every line against the canonical schema
//! `{"ts":N[,"dur":N],"node":N,"layer":"…","name":"…"[,"trace":T,
//! "span":S,"parent":P],"args":"…"}` (strict key order — the
//! determinism invariant compares these bytes), that timestamps are
//! non-decreasing (canonical order), and that the causal edges are
//! sound: every `parent` resolves within its trace, no span id is
//! duplicated, no parent chain cycles, and same-node child spans nest
//! inside their parent's interval. Prints a per-layer census and exits
//! non-zero on any malformed line or causal defect — CI runs this after
//! a traced example to pin both the wire format and the causality.

use clouds_obs::causal::{build_forest, parse_jsonl};
use std::process::ExitCode;

fn run(path: &str) -> Result<(), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let events = parse_jsonl(&body).map_err(|e| format!("{path}: {e}"))?;
    if events.is_empty() {
        return Err(format!("{path}: no events — the traced run recorded nothing"));
    }
    let mut last_ts = 0u64;
    for (i, ev) in events.iter().enumerate() {
        if ev.ts < last_ts {
            return Err(format!(
                "{path}:{}: timestamps regress ({} after {last_ts}) — not in canonical order",
                i + 1,
                ev.ts
            ));
        }
        last_ts = ev.ts;
    }

    let (forest, report) = build_forest(&events);
    if !report.is_clean() {
        return Err(format!(
            "{path}: causal defects ({} orphan(s), {} duplicate(s), {} cycle(s), {} nesting violation(s)):\n{}",
            report.orphans.len(),
            report.duplicates.len(),
            report.cycles.len(),
            report.nesting.len(),
            report.findings().join("\n")
        ));
    }

    let spans = events.iter().filter(|e| e.is_span()).count();
    println!(
        "{path}: OK — {} events ({spans} spans, {} instants); {} trace(s), {} untraced event(s), 0 orphans, 0 cycles",
        events.len(),
        events.len() - spans,
        forest.trees.len(),
        forest.untraced,
    );
    let mut layers: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for ev in &events {
        *layers.entry(ev.layer.as_str()).or_default() += 1;
    }
    for (layer, n) in layers {
        println!("  {layer:<12} {n}");
    }
    for tree in forest.trees.values() {
        println!(
            "  trace {:#018x}: {} span(s) over {} node(s), {} root(s)",
            tree.trace_id,
            tree.spans.len(),
            tree.nodes().len(),
            tree.roots.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.jsonl>");
        return ExitCode::from(2);
    };
    match run(&path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_check: {e}");
            ExitCode::FAILURE
        }
    }
}
