//! Validate a `clouds-obs` JSONL trace (`CLOUDS_TRACE=path.jsonl`):
//!
//! ```text
//! cargo run -p clouds-bench --bin trace_check -- path.jsonl
//! ```
//!
//! Checks every line against the canonical schema
//! `{"ts":N[,"dur":N],"node":N,"layer":"…","name":"…","args":"…"}`,
//! that timestamps are non-decreasing (canonical order), and prints a
//! per-layer event census. Exits non-zero on the first malformed line —
//! CI runs this after a traced example to pin the wire format.

use std::process::ExitCode;

/// One parsed event line (only what validation needs).
struct Line {
    ts: u64,
    has_dur: bool,
    layer: String,
}

/// Cursor over one line's bytes; every helper consumes an exact token.
struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn expect(&mut self, tok: &str) -> Result<(), String> {
        if self.s[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            Ok(())
        } else {
            Err(format!(
                "expected `{tok}` at byte {}, found `{}`",
                self.pos,
                &self.s[self.pos..self.s.len().min(self.pos + 16)]
            ))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.s.as_bytes().get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        self.s[start..self.pos]
            .parse()
            .map_err(|_| format!("expected a number at byte {start}"))
    }

    /// A JSON string body up to the closing quote, honouring escapes.
    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        let bytes = self.s.as_bytes();
        while let Some(&b) = bytes.get(self.pos) {
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = bytes.get(self.pos + 1).copied();
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            // \u00XX control-char escape.
                            let hex = self
                                .s
                                .get(self.pos + 2..self.pos + 6)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 2;
                }
                _ => {
                    let c = self.s[self.pos..].chars().next().ok_or("truncated line")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        Err("unterminated string".to_string())
    }
}

/// Parse one canonical event line, enforcing the exact key order the
/// sink emits (the determinism invariant compares these bytes, so the
/// validator must be just as strict).
fn parse_line(s: &str) -> Result<Line, String> {
    let mut c = Cursor { s, pos: 0 };
    c.expect("{\"ts\":")?;
    let ts = c.number()?;
    let has_dur = s[c.pos..].starts_with(",\"dur\":");
    if has_dur {
        c.expect(",\"dur\":")?;
        c.number()?;
    }
    c.expect(",\"node\":")?;
    c.number()?;
    c.expect(",\"layer\":")?;
    let layer = c.string()?;
    c.expect(",\"name\":")?;
    let name = c.string()?;
    c.expect(",\"args\":")?;
    c.string()?;
    c.expect("}")?;
    if c.pos != s.len() {
        return Err(format!("trailing bytes after event at byte {}", c.pos));
    }
    if layer.is_empty() || name.is_empty() {
        return Err("layer and name must be non-empty".to_string());
    }
    Ok(Line { ts, has_dur, layer })
}

fn run(path: &str) -> Result<(), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut events = 0u64;
    let mut spans = 0u64;
    let mut last_ts = 0u64;
    let mut layers: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (i, line) in body.lines().enumerate() {
        let ev = parse_line(line).map_err(|e| format!("{path}:{}: {e}\n  {line}", i + 1))?;
        if ev.ts < last_ts {
            return Err(format!(
                "{path}:{}: timestamps regress ({} after {last_ts}) — not in canonical order",
                i + 1,
                ev.ts
            ));
        }
        last_ts = ev.ts;
        events += 1;
        spans += u64::from(ev.has_dur);
        *layers.entry(ev.layer).or_default() += 1;
    }
    if events == 0 {
        return Err(format!("{path}: no events — the traced run recorded nothing"));
    }
    println!("{path}: OK — {events} events ({spans} spans, {} instants)", events - spans);
    for (layer, n) in layers {
        println!("  {layer:<12} {n}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.jsonl>");
        return ExitCode::from(2);
    };
    match run(&path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_check: {e}");
            ExitCode::FAILURE
        }
    }
}
