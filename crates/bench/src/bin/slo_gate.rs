//! SLO regression gate over the open-loop sweep emitted by `slo_run`:
//!
//! ```text
//! cargo run -p clouds-bench --release --bin slo_gate -- SLO_dsm.json fresh_slo.json
//! ```
//!
//! Every committed point is keyed by `(scenario, offered_rps)` and must
//! be present in the fresh run. A point fails the gate when any latency
//! percentile (p50/p99/p999) regresses by more than 15%, when achieved
//! throughput drops by more than 15%, or when new request errors
//! appear. The sweep is deterministic virtual time, so in practice any
//! delta at all is a real behaviour change; the tolerance only forgives
//! intentional small cost-model shifts. Failure messages print the
//! committed-vs-measured numbers for each offending metric.

use std::process::ExitCode;

/// Allowed relative regression for percentiles and throughput.
const TOLERANCE: f64 = 0.15;

/// Pull `"key":<digits>` out of one JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Pull `"key":"<value>"` out of one JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// One parsed sweep point.
struct Point {
    scenario: String,
    offered_rps: u64,
    errors: u64,
    achieved_rps_milli: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

fn load(path: &str) -> Result<Vec<Point>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut out = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: &str| format!("{path}:{}: {msg}", i + 1);
        let get = |key: &str| field_u64(line, key).ok_or_else(|| at(&format!("no \"{key}\"")));
        out.push(Point {
            scenario: field_str(line, "scenario").ok_or_else(|| at("no \"scenario\""))?.to_string(),
            offered_rps: get("offered_rps")?,
            errors: get("errors")?,
            achieved_rps_milli: get("achieved_rps_milli")?,
            p50_ns: get("p50_ns")?,
            p99_ns: get("p99_ns")?,
            p999_ns: get("p999_ns")?,
        });
    }
    if out.is_empty() {
        return Err(format!("{path}: no sweep points"));
    }
    Ok(out)
}

/// Offending-metric lines (`committed X, measured Y (+Z%)`); empty =
/// the fresh sweep holds every committed SLO.
fn run(baseline_path: &str, fresh_path: &str) -> Result<Vec<String>, String> {
    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    let mut offenders = Vec::new();
    for b in &baseline {
        let key = format!("{}@{}rps", b.scenario, b.offered_rps);
        let Some(f) = fresh
            .iter()
            .find(|f| f.scenario == b.scenario && f.offered_rps == b.offered_rps)
        else {
            offenders.push(format!("{key}: committed point missing from {fresh_path}"));
            continue;
        };
        let mut point_ok = true;
        // Higher-is-worse latency metrics.
        for (metric, committed, measured) in [
            ("p50", b.p50_ns, f.p50_ns),
            ("p99", b.p99_ns, f.p99_ns),
            ("p999", b.p999_ns, f.p999_ns),
        ] {
            let ratio = measured as f64 / committed.max(1) as f64;
            if ratio > 1.0 + TOLERANCE {
                point_ok = false;
                offenders.push(format!(
                    "{key} {metric}: committed {committed} ns, measured {measured} ns ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                ));
            }
        }
        // Lower-is-worse throughput.
        let tput = f.achieved_rps_milli as f64 / b.achieved_rps_milli.max(1) as f64;
        if tput < 1.0 - TOLERANCE {
            point_ok = false;
            offenders.push(format!(
                "{key} throughput: committed {:.3} rps, measured {:.3} rps ({:+.1}%)",
                b.achieved_rps_milli as f64 / 1000.0,
                f.achieved_rps_milli as f64 / 1000.0,
                (tput - 1.0) * 100.0
            ));
        }
        if f.errors > b.errors {
            point_ok = false;
            offenders.push(format!(
                "{key} errors: committed {}, measured {}",
                b.errors, f.errors
            ));
        }
        println!(
            "{key:<16} p50 {:>12}/{:<12} p99 {:>12}/{:<12} p999 {:>12}/{:<12} {}",
            b.p50_ns,
            f.p50_ns,
            b.p99_ns,
            f.p99_ns,
            b.p999_ns,
            f.p999_ns,
            if point_ok { "ok" } else { "REGRESSED" },
        );
    }
    Ok(offenders)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline, fresh] = args.as_slice() else {
        eprintln!("usage: slo_gate <SLO_baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    match run(baseline, fresh) {
        Ok(offenders) if offenders.is_empty() => {
            println!(
                "slo_gate: every committed SLO point holds within {:.0}%",
                TOLERANCE * 100.0
            );
            ExitCode::SUCCESS
        }
        Ok(offenders) => {
            eprintln!(
                "slo_gate: {} SLO metric(s) regressed more than {:.0}% — \
                 investigate, or re-bless SLO_dsm.json (slo_run --out SLO_dsm.json) if intentional",
                offenders.len(),
                TOLERANCE * 100.0
            );
            for line in &offenders {
                eprintln!("slo_gate:   {line}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("slo_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
