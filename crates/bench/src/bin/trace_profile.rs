//! Critical-path profiler for `clouds-obs` JSONL traces:
//!
//! ```text
//! CLOUDS_TRACE=run.jsonl cargo run --example quickstart
//! cargo run -p clouds-bench --bin trace_profile -- run.jsonl [--json out.json]
//! ```
//!
//! Reconstructs the causal forest (parent edges stitched across nodes),
//! then for every trace computes the critical path — at each span, the
//! child chain maximising duration — and each step's *self* time,
//! exclusive of its on-path child. Self times telescope: they sum to
//! the root's duration, so the per-layer table answers "where does the
//! latency actually live?" without double counting. `--json` addition-
//! ally emits the same data machine-readably.

use clouds_obs::causal::{build_forest, layer_self_times, parse_jsonl, Forest};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

fn human_report(forest: &Forest) -> String {
    let mut out = String::new();
    let mut global_layers: BTreeMap<String, u64> = BTreeMap::new();
    let mut global_total = 0u64;
    for tree in forest.trees.values() {
        for &root in &tree.roots {
            let span = &tree.spans[&root];
            let path = tree.critical_path(root);
            let dur = span.dur.unwrap_or(0);
            let _ = writeln!(
                out,
                "trace {:#018x}  root {}/{}  dur {} ns  {} span(s), {} node(s)",
                tree.trace_id,
                span.layer,
                span.name,
                dur,
                tree.spans.len(),
                tree.nodes().len()
            );
            for step in &path {
                let _ = writeln!(
                    out,
                    "  {:>10} ns self {:>10} ns  node {:<4} {}/{}",
                    step.dur, step.self_time, step.node, step.layer, step.name
                );
                *global_layers.entry(step.layer.clone()).or_default() += step.self_time;
            }
            global_total += dur;
        }
    }
    let _ = writeln!(out, "critical-path self time by layer (all traces):");
    for (layer, ns) in &global_layers {
        let _ = writeln!(
            out,
            "  {:<12} {:>12} ns  {:.0}%",
            layer,
            ns,
            100.0 * *ns as f64 / global_total.max(1) as f64
        );
    }
    let _ = writeln!(out, "  {:<12} {:>12} ns  total critical-path length", "=", global_total);
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_report(forest: &Forest) -> String {
    let mut traces = Vec::new();
    for tree in forest.trees.values() {
        for &root in &tree.roots {
            let span = &tree.spans[&root];
            let path = tree.critical_path(root);
            let layers = layer_self_times(&path);
            let steps: Vec<String> = path
                .iter()
                .map(|s| {
                    format!(
                        "{{\"span\":{},\"node\":{},\"layer\":\"{}\",\"name\":\"{}\",\"dur\":{},\"self\":{}}}",
                        s.span,
                        s.node,
                        json_escape(&s.layer),
                        json_escape(&s.name),
                        s.dur,
                        s.self_time
                    )
                })
                .collect();
            let layer_obj: Vec<String> = layers
                .iter()
                .map(|(l, ns)| format!("\"{}\":{ns}", json_escape(l)))
                .collect();
            traces.push(format!(
                "{{\"trace\":{},\"root\":{root},\"root_dur\":{},\"spans\":{},\"nodes\":{},\
                 \"critical_path\":[{}],\"layer_self\":{{{}}}}}",
                tree.trace_id,
                span.dur.unwrap_or(0),
                tree.spans.len(),
                tree.nodes().len(),
                steps.join(","),
                layer_obj.join(",")
            ));
        }
    }
    format!(
        "{{\"traces\":[{}],\"untraced_events\":{}}}\n",
        traces.join(","),
        forest.untraced
    )
}

fn run(path: &str, json_out: Option<&str>) -> Result<(), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let events = parse_jsonl(&body).map_err(|e| format!("{path}: {e}"))?;
    let (forest, report) = build_forest(&events);
    if !report.is_clean() {
        return Err(format!(
            "{path}: causal defects — refusing to profile a broken trace:\n{}",
            report.findings().join("\n")
        ));
    }
    if forest.trees.is_empty() {
        return Err(format!("{path}: no traced spans — nothing to profile"));
    }
    print!("{}", human_report(&forest));
    if let Some(out) = json_out {
        std::fs::write(out, json_report(&forest)).map_err(|e| format!("write {out}: {e}"))?;
        eprintln!("trace_profile: wrote {out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, json_out) = match args.as_slice() {
        [p] => (p.as_str(), None),
        [p, flag, out] if flag == "--json" => (p.as_str(), Some(out.as_str())),
        _ => {
            eprintln!("usage: trace_profile <trace.jsonl> [--json <out.json>]");
            return ExitCode::from(2);
        }
    };
    match run(path, json_out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_profile: {e}");
            ExitCode::FAILURE
        }
    }
}
