//! Performance regression gate over the criterion-shim JSON emitted by
//! `CRITERION_JSON=… cargo bench -p clouds-bench --bench dsm`:
//!
//! ```text
//! cargo run -p clouds-bench --bin bench_gate -- BENCH_dsm.json fresh.json
//! ```
//!
//! Compares the gated benchmarks' `min_ns` (minimum is the stablest
//! statistic under CI noise; the harness runs in virtual time, so it is
//! deterministic for a fixed seed anyway) in `fresh` against the
//! committed `baseline` and fails when any regresses by more than 15%.
//! Improvements and non-gated benches are reported but never fail.

use std::process::ExitCode;

/// Benchmarks that gate the build: the two paging paths the batched DSM
/// protocol exists for, the single-page fault and local-hit latencies,
/// and the contended four-client scan the striped directory exists for.
const GATED: &[&str] = &[
    "sequential_scan_1mb",
    "commit_flush_32_dirty",
    "page_ping_pong",
    "local_hit_read",
    "concurrent_scan_4_clients",
];

/// Allowed slowdown of `min_ns` vs the baseline.
const TOLERANCE: f64 = 0.15;

/// Pull `"key":<digits>` out of one shim JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Pull `"key":"<value>"` out of one shim JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// `bench name → min_ns` for every line of a shim JSON file.
fn load(path: &str) -> Result<Vec<(String, u64)>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut out = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bench = field_str(line, "bench")
            .ok_or_else(|| format!("{path}:{}: no \"bench\" field", i + 1))?;
        let min_ns = field_u64(line, "min_ns")
            .ok_or_else(|| format!("{path}:{}: no \"min_ns\" field", i + 1))?;
        out.push((bench.to_string(), min_ns));
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok(out)
}

/// Run the gate; `Ok` carries one pre-formatted
/// `bench: committed X ns, measured Y ns (+Z%)` line per offending
/// gated benchmark (empty = pass).
fn run(baseline_path: &str, fresh_path: &str) -> Result<Vec<String>, String> {
    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    let base_of = |name: &str| baseline.iter().find(|(b, _)| b == name).map(|(_, v)| *v);
    let mut offenders = Vec::new();
    for (bench, fresh_min) in &fresh {
        let gated = GATED.contains(&bench.as_str());
        match base_of(bench) {
            Some(base_min) => {
                let ratio = *fresh_min as f64 / base_min.max(1) as f64;
                let verdict = if ratio > 1.0 + TOLERANCE && gated {
                    offenders.push(format!(
                        "{bench}: committed {base_min} ns, measured {fresh_min} ns ({:+.1}%)",
                        (ratio - 1.0) * 100.0
                    ));
                    "REGRESSED"
                } else if ratio > 1.0 + TOLERANCE {
                    "slower (not gated)"
                } else {
                    "ok"
                };
                println!(
                    "{:<24} base {:>12} ns  fresh {:>12} ns  {:>+7.1}%  {}{}",
                    bench,
                    base_min,
                    fresh_min,
                    (ratio - 1.0) * 100.0,
                    verdict,
                    if gated { "  [gated]" } else { "" },
                );
            }
            None => println!("{bench:<24} (no baseline — skipped)"),
        }
    }
    for name in GATED {
        if !fresh.iter().any(|(b, _)| b == name) {
            return Err(format!("gated benchmark `{name}` missing from {fresh_path}"));
        }
    }
    Ok(offenders)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline, fresh] = args.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    match run(baseline, fresh) {
        Ok(offenders) if offenders.is_empty() => {
            println!("bench_gate: within {:.0}% of baseline", TOLERANCE * 100.0);
            ExitCode::SUCCESS
        }
        Ok(offenders) => {
            eprintln!(
                "bench_gate: {} gated benchmark(s) regressed more than {:.0}% — \
                 investigate, or re-bless BENCH_dsm.json if intentional",
                offenders.len(),
                TOLERANCE * 100.0
            );
            for line in &offenders {
                eprintln!("bench_gate:   {line}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
