//! Run the canonical E13 open-loop SLO sweep and emit one JSON line per
//! offered-load point (the `SLO_dsm.json` record format):
//!
//! ```text
//! cargo run -p clouds-bench --release --bin slo_run -- --out fresh_slo.json
//! ```
//!
//! The sweep is entirely virtual-time and seeded: two runs with the
//! same `--seed` (default [`clouds_bench::load::DEFAULT_SEED`]) produce
//! **byte-identical** output, which CI checks by running it twice and
//! `cmp`-ing, then gates with `slo_gate` against the committed
//! `SLO_dsm.json`. Re-bless the baseline by committing this bin's
//! output.

use clouds_bench::load;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed = load::DEFAULT_SEED;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("slo_run: --seed needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => {
                    eprintln!("slo_run: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("usage: slo_run [--seed N] [--out PATH]   (got `{other}`)");
                return ExitCode::from(2);
            }
        }
    }

    eprintln!("slo_run: E13 open-loop sweep, seed {seed} (virtual time, Sun-3 cost model)");
    let points = load::run_e13(seed);
    let mut body = String::new();
    for p in &points {
        body.push_str(&p.json_line());
        body.push('\n');
        eprintln!(
            "slo_run: {:<6} offered {:>4} rps  achieved {:>8.3} rps  p50 {:>12}  p99 {:>12}  p999 {:>12}  ({} reqs, {} errors)",
            p.scenario,
            p.offered_rps,
            p.achieved_rps_milli as f64 / 1000.0,
            format!("{}", p.p50),
            format!("{}", p.p99),
            format!("{}", p.p999),
            p.requests,
            p.errors,
        );
    }
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &body) {
                eprintln!("slo_run: write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("slo_run: wrote {} points to {path}", points.len());
        }
        None => {
            print!("{body}");
            if std::io::stdout().flush().is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
