//! E4 — distributed sorting over DSM (§5.1 "Distributed Programming").
//!
//! Paper: "sorting algorithms can use multiple threads to perform a
//! sort, with each thread being executed at a different compute server,
//! even though the data itself is contained in one object … the
//! computation can be run in a distributed fashion without incurring a
//! high overhead. These experiments are helping us understand the
//! trade-off between computation and communication."
//!
//! The experiment reports, per worker count: makespan (virtual time),
//! speedup over one worker, and DSM page traffic.

use clouds::prelude::*;
use clouds_simnet::Vt;

/// Modeled per-comparison CPU cost (a Sun-3 was slow).
const SORT_STEP: Vt = Vt::from_micros(40);
/// Elements in the shared array (page-aligned chunks for 1..=8 workers).
pub const ELEMENTS: usize = 4096;

/// One row of the sort experiment.
#[derive(Debug, Clone, Copy)]
pub struct SortPoint {
    /// Parallel workers.
    pub workers: usize,
    /// Virtual completion time.
    pub makespan: Vt,
    /// Frames on the wire during the run.
    pub frames: u64,
    /// Exclusive page grants served by the data server.
    pub page_migrations: u64,
}

struct Sortable;

impl ObjectCode for Sortable {
    fn data_segment_len(&self) -> u64 {
        8 * ELEMENTS as u64
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "fill" => {
                let seed: u64 = decode_args(args)?;
                let mut x = seed | 1;
                let mut data = Vec::with_capacity(8 * ELEMENTS);
                for _ in 0..ELEMENTS {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    data.extend_from_slice(&x.to_le_bytes());
                }
                ctx.persistent().write_bytes(0, &data)?;
                encode_result(&())
            }
            "load_chunk" => {
                let (start, len): (u64, u64) = decode_args(args)?;
                let _ = ctx.persistent().read_bytes(8 * start, 8 * len as usize)?;
                encode_result(&())
            }
            "sort_chunk" => {
                let (start, len): (u64, u64) = decode_args(args)?;
                let raw = ctx.persistent().read_bytes(8 * start, 8 * len as usize)?;
                let mut values: Vec<u64> = raw
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect();
                values.sort_unstable();
                let n = values.len() as u64;
                ctx.charge(SORT_STEP.mul(n * (64 - n.leading_zeros() as u64)));
                let mut out = Vec::with_capacity(raw.len());
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                ctx.persistent().write_bytes(8 * start, &out)?;
                encode_result(&())
            }
            "merge_check" => {
                let raw = ctx.persistent().read_bytes(0, 8 * ELEMENTS)?;
                let mut values: Vec<u64> = raw
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect();
                values.sort_unstable();
                ctx.charge(SORT_STEP.mul(values.len() as u64));
                let mut out = Vec::with_capacity(raw.len());
                for v in &values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                ctx.persistent().write_bytes(0, &out)?;
                let sorted = out
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect::<Vec<_>>()
                    .windows(2)
                    .all(|w| w[0] <= w[1]);
                encode_result(&sorted)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

/// Run the sort with `workers` parallel threads on distinct compute
/// servers (plus a separate coordinator node for fill/merge).
///
/// # Panics
///
/// Panics if `workers` does not divide [`ELEMENTS`] into page-aligned
/// chunks, or on any OS-level failure.
pub fn run_sort(workers: usize) -> SortPoint {
    run_sort_with_cost(workers, clouds_simnet::CostModel::sun3_ethernet())
}

/// [`run_sort`] under an explicit cost model (ablation A1: how the
/// communication/computation balance moves the speedup curve).
///
/// # Panics
///
/// As for [`run_sort`].
pub fn run_sort_with_cost(workers: usize, cost: clouds_simnet::CostModel) -> SortPoint {
    assert!(ELEMENTS.is_multiple_of(workers), "chunks must be page-aligned");
    let cluster = Cluster::builder()
        .compute_servers(workers + 1)
        .data_servers(1)
        .workstations(0)
        .cost_model(cost)
        .build()
        .expect("cluster boots");
    cluster
        .register_class("sortable", Sortable)
        .expect("register");
    let coordinator = cluster.compute(workers).clone();
    let obj = coordinator
        .create_object("sortable", None, None)
        .expect("object");
    coordinator
        .invoke(obj, "fill", &encode_args(&42u64).expect("args"), None)
        .expect("fill");

    let before = cluster.network().stats();
    let before_grants: u64 = cluster
        .data_servers()
        .iter()
        .map(|d| d.dsm().stats().write_grants)
        .sum();
    let chunk = (ELEMENTS / workers) as u64;

    // Phase 1: all workers fault their chunk in (join = phase barrier,
    // aligning virtual clocks before the compute phase).
    let loads: Vec<_> = (0..workers)
        .map(|w| {
            let cs = cluster.compute(w).clone();
            let args = encode_args(&(w as u64 * chunk, chunk)).expect("args");
            std::thread::spawn(move || cs.invoke(obj, "load_chunk", &args, None))
        })
        .collect();
    for h in loads {
        h.join().expect("load thread").expect("load");
    }
    // Phase 2: parallel sorts.
    let sorts: Vec<_> = (0..workers)
        .map(|w| {
            let cs = cluster.compute(w).clone();
            let args = encode_args(&(w as u64 * chunk, chunk)).expect("args");
            std::thread::spawn(move || cs.invoke(obj, "sort_chunk", &args, None))
        })
        .collect();
    for h in sorts {
        h.join().expect("sort thread").expect("sort");
    }
    // Merge + verify on the coordinator.
    let sorted: bool = decode_args(
        &coordinator
            .invoke(obj, "merge_check", &encode_args(&()).expect("args"), None)
            .expect("merge"),
    )
    .expect("decode");
    assert!(sorted, "the array must end up sorted");

    let makespan = cluster
        .network()
        .clock(coordinator.node_id())
        .expect("clock")
        .now();
    let after_grants: u64 = cluster
        .data_servers()
        .iter()
        .map(|d| d.dsm().stats().write_grants)
        .sum();
    SortPoint {
        workers,
        makespan,
        frames: cluster.network().stats().since(&before).frames_sent,
        page_migrations: after_grants - before_grants,
    }
}

/// Run the full E4 sweep.
pub fn run() -> Vec<SortPoint> {
    [1usize, 2, 4, 8].iter().map(|&w| run_sort(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_parallel_sort_speeds_up_then_plateaus() {
        let one = run_sort(1);
        let four = run_sort(4);
        let speedup = one.makespan.as_nanos() as f64 / four.makespan.as_nanos() as f64;
        assert!(speedup > 1.4, "speedup {speedup}");
        // Communication grows with distribution.
        assert!(four.frames > one.frames);
        assert!(four.page_migrations >= one.page_migrations);
    }
}
