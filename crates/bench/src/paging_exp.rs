//! E7 — batched & pipelined DSM paging ablation (this repo's
//! optimization, not a paper table).
//!
//! The paper's activation path "causes a series of page faults which are
//! serviced by demand paging the pages of O from the data server(s)";
//! unbatched, every fault pays a full RaTP transaction. This experiment
//! measures, in virtual time under the calibrated Sun-3/Ethernet model,
//! what multi-page grants with read-ahead and coalesced write-back
//! flushes buy over the one-RPC-per-page protocol.

use clouds_codec::PageBytes;
use clouds_dsm::proto::{self, ports, DsmReply, DsmRequest};
use clouds_dsm::{DsmClientConfig, DsmClientPartition, DsmServer};
use clouds_obs::HistogramSummary;
use clouds_ra::{AddressSpace, PageCache, Partition, SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId, Vt};
use std::sync::Arc;

/// Pages in the sequential-scan workload (1 MiB of 8 KiB pages).
pub const SCAN_PAGES: u64 = 128;
/// Dirty pages in the commit-flush workload.
pub const FLUSH_PAGES: u64 = 32;

/// One scenario's measurement: elapsed virtual time on the client's
/// clock plus the RPCs it took.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub vt: Vt,
    pub rpcs: u64,
}

/// Measured results of the paging ablation.
#[derive(Debug, Clone, Copy)]
pub struct PagingResults {
    /// 128-page sequential scan, one fetch RPC per fault.
    pub scan_unbatched: Measurement,
    /// Same scan with the default read-ahead window.
    pub scan_batched: Measurement,
    /// 32-dirty-page flush, one write-back RPC per page.
    pub flush_unbatched: Measurement,
    /// Same flush as coalesced `WriteBackBatch` RPCs.
    pub flush_batched: Measurement,
}

fn unbatched() -> DsmClientConfig {
    DsmClientConfig {
        read_ahead_window: 1,
        batch_write_backs: false,
    }
}

fn client(
    net: &Network,
    id: NodeId,
    home: NodeId,
    config: DsmClientConfig,
) -> Arc<DsmClientPartition> {
    let ratp = RatpNode::spawn(net.register(id).expect("fresh node"), RatpConfig::default());
    DsmClientPartition::install_with_config(&ratp, Arc::new(PageCache::new(256)), vec![home], config)
}

fn space(part: &Arc<DsmClientPartition>, seg: SysName, pages: u64) -> AddressSpace {
    let mut s = AddressSpace::new(
        Arc::clone(part.cache()),
        Arc::clone(part) as Arc<dyn Partition>,
    );
    s.map(0, seg, 0, pages * PAGE_SIZE as u64, true)
        .expect("map segment");
    s
}

/// Sequential scan of a server-resident segment: seed the canonical
/// store over the raw wire (written back and released), then time a cold
/// client reading every page in order.
fn scan(config: DsmClientConfig) -> Measurement {
    scan_keeping_client(config).0
}

/// [`scan`], but hand back the client partition too so callers can read
/// its metrics registry after the run.
fn scan_keeping_client(config: DsmClientConfig) -> (Measurement, Arc<DsmClientPartition>) {
    let net = Network::new(CostModel::sun3_ethernet());
    let home = NodeId(100);
    let ds = RatpNode::spawn(net.register(home).expect("server node"), RatpConfig::default());
    let _server = DsmServer::install(&ds);
    let seg = SysName::from_parts(10, 1);

    let raw = RatpNode::spawn(net.register(NodeId(99)).expect("seed node"), RatpConfig::default());
    let call = |req: &DsmRequest| {
        let reply = raw
            .call(home, ports::DSM_SERVER, proto::encode(req))
            .expect("seed rpc");
        assert!(matches!(proto::decode(&reply).expect("decode"), DsmReply::Ok));
    };
    call(&DsmRequest::CreateSegment {
        seg,
        len: SCAN_PAGES * PAGE_SIZE as u64,
    });
    for page in 0..SCAN_PAGES {
        call(&DsmRequest::WriteBack {
            seg,
            page: page as u32,
            data: PageBytes::from(vec![page as u8; PAGE_SIZE]),
            release: true,
        });
    }

    let reader = client(&net, NodeId(1), home, config);
    let rs = space(&reader, seg, SCAN_PAGES);
    let clock = net.clock(NodeId(1)).expect("client clock");
    let start = clock.now();
    for page in 0..SCAN_PAGES {
        rs.read_u64(page * PAGE_SIZE as u64).expect("scan read");
    }
    let m = Measurement {
        vt: clock.now() - start,
        rpcs: reader.stats().fetch_rpcs,
    };
    (m, reader)
}

/// Commit flush of a dirty working set: dirty `FLUSH_PAGES` pages
/// locally, then time the flush that ships them home.
fn flush(config: DsmClientConfig) -> Measurement {
    let net = Network::new(CostModel::sun3_ethernet());
    let home = NodeId(100);
    let ds = RatpNode::spawn(net.register(home).expect("server node"), RatpConfig::default());
    let server = DsmServer::install(&ds);
    let seg = SysName::from_parts(10, 2);

    let writer = client(&net, NodeId(1), home, config);
    writer
        .create_segment(seg, FLUSH_PAGES * PAGE_SIZE as u64)
        .expect("create segment");
    let ws = space(&writer, seg, FLUSH_PAGES);
    for page in 0..FLUSH_PAGES {
        ws.write_u64(page * PAGE_SIZE as u64, page).expect("dirty page");
    }
    let clock = net.clock(NodeId(1)).expect("client clock");
    let start = clock.now();
    ws.flush().expect("flush");
    let rpcs = if config.batch_write_backs {
        writer.stats().batch_write_back_rpcs
    } else {
        // The per-page path is one `WriteBack` RPC per dirty page by
        // construction; the server's page count confirms it.
        server.stats().write_backs
    };
    Measurement {
        vt: clock.now() - start,
        rpcs,
    }
}

/// E8 — where the virtual time of the batched sequential scan goes,
/// layer by layer, read straight out of the client's `clouds-obs`
/// [`MetricsRegistry`](clouds_obs::MetricsRegistry) histograms
/// (`dsm.client.fetch` wraps the whole
/// fault→install path; `ratp.call` is the wire transaction nested
/// inside it).
#[derive(Debug, Clone)]
pub struct LayerBreakdown {
    /// End-to-end virtual time of the scan on the client clock.
    pub total: Vt,
    /// Full DSM fault service: RPC + grant decode + page installs.
    pub dsm_fetch: HistogramSummary,
    /// RaTP transaction alone: fragmentation, wire, reassembly.
    pub ratp_call: HistogramSummary,
}

impl LayerBreakdown {
    /// Virtual time spent in DSM bookkeeping above the transport
    /// (decode, cache install, ack) — `dsm.client.fetch − ratp.call`.
    pub fn dsm_overhead(&self) -> Vt {
        self.dsm_fetch.sum - self.ratp_call.sum
    }

    /// Virtual time outside any fault — MMU hits and the reads
    /// themselves — `total − dsm.client.fetch`.
    pub fn local_compute(&self) -> Vt {
        self.total - self.dsm_fetch.sum
    }
}

/// Run the batched E7 scan and report its per-layer latency breakdown
/// from the registry.
pub fn run_layer_breakdown() -> LayerBreakdown {
    let (m, reader) = scan_keeping_client(DsmClientConfig::default());
    let registry = reader.obs().registry();
    LayerBreakdown {
        total: m.vt,
        dsm_fetch: registry.histogram_summary("dsm.client.fetch"),
        ratp_call: registry.histogram_summary("ratp.call"),
    }
}

/// Run the whole E7 ablation (each scenario on a fresh network so the
/// clocks start at zero).
pub fn run() -> PagingResults {
    PagingResults {
        scan_unbatched: scan(unbatched()),
        scan_batched: scan(DsmClientConfig::default()),
        flush_unbatched: flush(unbatched()),
        flush_batched: flush(DsmClientConfig::default()),
    }
}

/// Pages each scanner reads in the E11 concurrent workload.
pub const CONCURRENT_PAGES: u64 = 64;

/// E11 — one row of the concurrent-scan scaling table: `clients`
/// scanners demand-paging disjoint segments from one data server.
#[derive(Debug, Clone)]
pub struct ConcurrentScan {
    pub clients: u32,
    /// Virtual time until the slowest scanner finished.
    pub elapsed: Vt,
    /// Aggregate canonical bytes paged per virtual second, in MiB/s.
    pub mib_per_s: f64,
    /// Worst per-client `dsm.client.fetch` p99 from the obs registry.
    pub fetch_p99: Vt,
}

/// Run the E11 scaling sweep: 1, 2 and 4 concurrent scanners, each
/// sweep on a fresh network so the clocks start from zero.
pub fn run_concurrent_scans() -> Vec<ConcurrentScan> {
    [1, 2, 4].into_iter().map(concurrent_scan).collect()
}

fn concurrent_scan(clients: u32) -> ConcurrentScan {
    let net = Network::new(CostModel::sun3_ethernet());
    let home = NodeId(100);
    let ds = RatpNode::spawn(net.register(home).expect("server node"), RatpConfig::default());
    let _server = DsmServer::install(&ds);

    let raw = RatpNode::spawn(net.register(NodeId(99)).expect("seed node"), RatpConfig::default());
    let seed = |req: &DsmRequest| {
        let reply = raw
            .call(home, ports::DSM_SERVER, proto::encode(req))
            .expect("seed rpc");
        assert!(matches!(proto::decode(&reply).expect("decode"), DsmReply::Ok));
    };
    let seg_of = |i: u32| SysName::from_parts(11, u64::from(i) + 1);
    for i in 0..clients {
        seed(&DsmRequest::CreateSegment {
            seg: seg_of(i),
            len: CONCURRENT_PAGES * PAGE_SIZE as u64,
        });
        for page in 0..CONCURRENT_PAGES {
            seed(&DsmRequest::WriteBack {
                seg: seg_of(i),
                page: page as u32,
                data: PageBytes::from(vec![page as u8; PAGE_SIZE]),
                release: true,
            });
        }
    }

    let parts: Vec<_> = (0..clients)
        .map(|i| client(&net, NodeId(1 + i), home, DsmClientConfig::default()))
        .collect();
    let spaces: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(i, p)| space(p, seg_of(i as u32), CONCURRENT_PAGES))
        .collect();
    let clocks: Vec<_> = (0..clients)
        .map(|i| net.clock(NodeId(1 + i)).expect("client clock"))
        .collect();
    let starts: Vec<Vt> = clocks.iter().map(|c| c.now()).collect();
    std::thread::scope(|s| {
        for sp in &spaces {
            s.spawn(move || {
                for page in 0..CONCURRENT_PAGES {
                    sp.read_u64(page * PAGE_SIZE as u64).expect("scan read");
                }
            });
        }
    });
    let elapsed = clocks
        .iter()
        .zip(&starts)
        .map(|(c, s)| c.now() - *s)
        .max()
        .expect("at least one client");
    let bytes = u64::from(clients) * CONCURRENT_PAGES * PAGE_SIZE as u64;
    let secs = elapsed.as_nanos() as f64 / 1e9;
    let fetch_p99 = parts
        .iter()
        .map(|p| p.obs().registry().histogram_summary("dsm.client.fetch").p99)
        .max()
        .expect("at least one client");
    ConcurrentScan {
        clients,
        elapsed,
        mib_per_s: bytes as f64 / (1 << 20) as f64 / secs,
        fetch_p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_batching_improves_scan_and_flush() {
        let r = run();
        // RPC budgets: the acceptance criteria of the batching work.
        assert_eq!(r.scan_unbatched.rpcs, SCAN_PAGES);
        assert!(r.scan_batched.rpcs <= 20, "{:?}", r.scan_batched);
        assert_eq!(r.flush_unbatched.rpcs, FLUSH_PAGES);
        assert!(r.flush_batched.rpcs <= 2, "{:?}", r.flush_batched);
        // Virtual time must improve: the bytes moved are identical, the
        // saving is per-RPC overhead, so the batched variants win.
        assert!(
            r.scan_batched.vt < r.scan_unbatched.vt,
            "scan {} !< {}",
            r.scan_batched.vt,
            r.scan_unbatched.vt
        );
        assert!(
            r.flush_batched.vt < r.flush_unbatched.vt,
            "flush {} !< {}",
            r.flush_batched.vt,
            r.flush_unbatched.vt
        );
    }

    #[test]
    fn e11_concurrent_scans_share_one_server() {
        let rows = run_concurrent_scans();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.mib_per_s > 0.0, "{r:?}");
            assert!(r.fetch_p99.as_nanos() > 0, "{r:?}");
        }
        // The server is shared: adding scanners cannot make any single
        // client's fault service faster than running alone.
        assert!(
            rows[2].fetch_p99 >= rows[0].fetch_p99,
            "4-client p99 {} < 1-client p99 {}",
            rows[2].fetch_p99,
            rows[0].fetch_p99
        );
    }

    #[test]
    fn e8_layer_breakdown_accounts_for_the_scan() {
        let b = run_layer_breakdown();
        // One histogram sample per batched fetch; the wire transaction
        // count can only exceed it (resolution probes ride along).
        assert!(b.dsm_fetch.count > 0, "{b:?}");
        assert!(b.ratp_call.count >= b.dsm_fetch.count, "{b:?}");
        // The layers nest: wire time inside fault service, fault
        // service inside the scan — so the sums must be ordered and the
        // derived shares non-negative.
        assert!(b.ratp_call.sum <= b.dsm_fetch.sum, "{b:?}");
        assert!(b.dsm_fetch.sum <= b.total, "{b:?}");
        assert!(b.dsm_overhead() + b.local_compute() + b.ratp_call.sum <= b.total, "{b:?}");
    }
}
