//! E5 — the consistency spectrum (§5.2.1).
//!
//! The paper offers three thread kinds instead of mandating one
//! atomicity level: s-threads (no guarantees, no overhead), lcp-threads
//! (locking + per-server atomic commit) and gcp-threads (locking + full
//! 2PC). The experiment quantifies what each level costs — and what the
//! s-thread "saves" actually buys: lost updates.

use clouds::prelude::*;
use clouds_consistency::{ConsistencyRuntime, CpOptions};
use clouds_simnet::Vt;
use std::sync::Arc;

/// Result of one consistency-level run.
#[derive(Debug, Clone)]
pub struct ConsistencyPoint {
    /// Label name ("S", "LCP", "GCP").
    pub label: String,
    /// Deposits attempted.
    pub attempted: u64,
    /// Final balance (equals `attempted` only if no updates were lost).
    pub final_balance: u64,
    /// Virtual time per operation (max node clock / ops).
    pub vt_per_op: Vt,
    /// cp-thread aborts observed (lock timeouts).
    pub aborts: u64,
}

struct Account;

impl ObjectCode for Account {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "deposit" => {
                let amount: u64 = decode_args(args)?;
                let v = ctx.persistent().read_u64(0)? + amount;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&v)
            }
            "balance" => encode_result(&ctx.persistent().read_u64(0)?),
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

/// Run `per_thread` deposits from each of `threads` concurrent threads
/// (spread over two compute servers) at the given label.
pub fn run_level(label: OperationLabel, threads: usize, per_thread: u64) -> ConsistencyPoint {
    let cluster = Cluster::builder()
        .compute_servers(2)
        .data_servers(2)
        .workstations(0)
        .build()
        .expect("cluster boots");
    cluster.register_class("account", Account).expect("register");
    let runtime = ConsistencyRuntime::install(&cluster);
    let obj = cluster.create_object("account", "Acct").expect("object");

    let opts = CpOptions {
        lock_wait_ms: 500,
        max_retries: 40,
    };
    let mut handles = Vec::new();
    for t in 0..threads {
        let cs = cluster.compute(t % 2).clone();
        let runtime = Arc::clone(&runtime);
        let opts = opts.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                let _ = runtime.invoke(
                    &cs,
                    label,
                    obj,
                    "deposit",
                    &encode_args(&1u64).expect("args"),
                    &opts,
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }

    let attempted = threads as u64 * per_thread;
    let final_balance: u64 = decode_args(
        &cluster
            .compute(0)
            .invoke(obj, "balance", &encode_args(&()).expect("args"), None)
            .expect("balance"),
    )
    .expect("decode");
    let vt = (0..2)
        .map(|i| {
            cluster
                .network()
                .clock(cluster.compute(i).node_id())
                .expect("clock")
                .now()
        })
        .max()
        .expect("two nodes");
    ConsistencyPoint {
        label: format!("{label:?}").to_uppercase(),
        attempted,
        final_balance,
        vt_per_op: Vt::from_nanos(vt.as_nanos() / attempted.max(1)),
        aborts: runtime.stats().aborts,
    }
}

/// Run the full E5 sweep: S, LCP, GCP with 4 threads × 15 deposits.
pub fn run() -> Vec<ConsistencyPoint> {
    [OperationLabel::S, OperationLabel::Lcp, OperationLabel::Gcp]
        .iter()
        .map(|&l| run_level(l, 4, 15))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_cp_threads_cost_more_but_lose_nothing() {
        let gcp = run_level(OperationLabel::Gcp, 3, 8);
        assert_eq!(
            gcp.final_balance, gcp.attempted,
            "gcp must not lose updates"
        );
        let s = run_level(OperationLabel::S, 3, 8);
        assert!(s.final_balance <= s.attempted);
        // The consistency machinery costs virtual time per operation.
        assert!(
            gcp.vt_per_op > s.vt_per_op,
            "gcp {} vs s {}",
            gcp.vt_per_op,
            s.vt_per_op
        );
    }
}
