//! E13 — open-loop SLO load harness.
//!
//! Closed-loop benchmarks (issue the next request when the previous one
//! returns) understate tail latency: when the system stalls, the load
//! generator politely stops offering load, so the stall never shows up
//! in the histogram — the *coordinated omission* problem. This harness
//! is open-loop: request arrival times come from a deterministic
//! Poisson process that does not care how the system is doing, and each
//! request's latency is measured from its **intended arrival time** to
//! completion. When the cluster saturates, the backlog charges queueing
//! delay into the tail percentiles instead of hiding it.
//!
//! Everything runs in virtual time on `clouds-simnet`, seeded from the
//! run seed: two same-seed runs produce byte-identical
//! [`LoadPoint::json_line`] output, which is what makes tail latency
//! CI-gateable (`slo_gate` vs the committed `SLO_dsm.json`) — something
//! a real cluster cannot promise.
//!
//! The arrival process models the aggregate of [`CLIENTS`] independent
//! simulated clients; zipfian skew over the key working set gives the
//! hot-key concentration of production traffic.

use clouds::prelude::*;
use clouds_consistency::{ConsistencyRuntime, CpOptions};
use clouds_simnet::Vt;
use std::sync::Arc;

/// Simulated client population behind the arrival process (stamped into
/// each request's span discriminator, and the unit the per-client
/// arrival story is told in: an open loop is the limit of "clients
/// never wait for each other").
pub const CLIENTS: u64 = 2000;

/// Session objects in the KV working set.
pub const KV_KEYS: usize = 64;

/// Bank accounts in the ledger working set.
pub const LEDGER_ACCOUNTS: usize = 16;

/// Zipf exponent for both working sets (the classic web-caching value).
pub const ZIPF_S: f64 = 0.99;

/// Seed used by `slo_run`, `paper_tables` E13 and the committed
/// `SLO_dsm.json` baselines.
pub const DEFAULT_SEED: u64 = 13;

// ---------------------------------------------------------------------
// Deterministic generators (no OS entropy, no wall clock — the lint
// `os-entropy`/`wall-clock` rules hold in this crate).
// ---------------------------------------------------------------------

/// SplitMix64 — tiny, seedable, and statistically fine for load
/// shaping. Hand-rolled so the harness takes no entropy from the OS.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire future is determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn next_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift: unbiased enough for load shaping, branch-free.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Deterministic Poisson arrival process: exponential inter-arrival
/// gaps with the given mean rate, accumulated into absolute virtual
/// arrival times.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: SplitMix64,
    mean_gap_ns: f64,
    next: u64,
}

impl PoissonArrivals {
    /// Arrivals at `offered_rps` requests per virtual second, seeded.
    pub fn new(seed: u64, offered_rps: u64) -> PoissonArrivals {
        PoissonArrivals {
            rng: SplitMix64::new(seed),
            mean_gap_ns: 1e9 / offered_rps.max(1) as f64,
            next: 0,
        }
    }

    /// Absolute virtual time of the next arrival (strictly increasing).
    pub fn next_arrival(&mut self) -> Vt {
        let u = self.rng.next_f64();
        // Inverse-CDF sample of Exp(1/mean); 1-u ∈ (0, 1] keeps ln
        // finite. Gaps round to ≥ 1 ns so arrivals stay distinct.
        let gap = (-self.mean_gap_ns * (1.0 - u).ln()).round().max(1.0);
        self.next = self.next.saturating_add(gap as u64);
        Vt::from_nanos(self.next)
    }
}

/// Zipfian sampler over `0..n` (rank 0 hottest), via inverse CDF with
/// binary search — exact, deterministic, no rejection loop.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf over an empty set");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// One measured offered-load point of a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadPoint {
    /// Scenario name (`kv` or `ledger`).
    pub scenario: &'static str,
    /// Offered load, requests per virtual second.
    pub offered_rps: u64,
    /// Requests issued (measurement window, excludes prewarm).
    pub requests: u64,
    /// Requests that returned an error (still measured for latency).
    pub errors: u64,
    /// Virtual duration from first intended arrival to last completion.
    pub elapsed: Vt,
    /// Achieved throughput in milli-requests per virtual second.
    pub achieved_rps_milli: u64,
    /// Latency percentiles from intended arrival to completion.
    pub p50: Vt,
    /// 99th percentile.
    pub p99: Vt,
    /// 99.9th percentile (the SLO tail).
    pub p999: Vt,
}

impl LoadPoint {
    /// One canonical JSON line (the `SLO_dsm.json` record format).
    /// Integer fields only, fixed key order: byte-identical across
    /// same-seed runs.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"offered_rps\":{},\"requests\":{},\"errors\":{},\
             \"elapsed_ns\":{},\"achieved_rps_milli\":{},\
             \"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
            self.scenario,
            self.offered_rps,
            self.requests,
            self.errors,
            self.elapsed.as_nanos(),
            self.achieved_rps_milli,
            self.p50.as_nanos(),
            self.p99.as_nanos(),
            self.p999.as_nanos()
        )
    }
}

/// Session-store object: one persistent slot per session, `get`/`put`.
struct Session;

impl ObjectCode for Session {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "get" => encode_result(&ctx.persistent().read_u64(0)?),
            "put" => {
                let v: u64 = decode_args(args)?;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&v)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

/// Bank-account object (the E5 ledger shape).
struct Account;

impl ObjectCode for Account {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "deposit" => {
                let amount: u64 = decode_args(args)?;
                let v = ctx.persistent().read_u64(0)? + amount;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&v)
            }
            "balance" => encode_result(&ctx.persistent().read_u64(0)?),
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

/// The request issued at one arrival: which object, and how to call it.
enum Op {
    /// s-thread invocation (KV `get`/`put`).
    Plain { entry: &'static str, args: Vec<u8> },
    /// gcp-thread invocation through 2PC (ledger `deposit`).
    Gcp { entry: &'static str, args: Vec<u8> },
}

/// Drive one open-loop point: `requests` arrivals against `targets`,
/// latency into the node histogram `hist_name`, ops chosen by `pick`.
///
/// The driver is a single thread: it sleeps (advances the client's
/// virtual clock) until the next intended arrival when idle, and issues
/// immediately when behind — so a backlog charges queueing delay to
/// every queued request, which is exactly the coordinated-omission
/// correction.
#[allow(clippy::too_many_arguments)]
fn drive_open_loop(
    cluster: &Cluster,
    runtime: Option<&Arc<ConsistencyRuntime>>,
    scenario: &'static str,
    hist: Arc<clouds_obs::Histogram>,
    targets: &[SysName],
    seed: u64,
    offered_rps: u64,
    requests: u64,
    mut pick: impl FnMut(&mut SplitMix64, usize) -> Op,
) -> LoadPoint {
    let cs = cluster.compute(0);
    let obs = cs.ratp().obs();
    let clock = cluster
        .network()
        .clock(cs.node_id())
        .expect("client clock");
    let registry = obs.registry();
    let requests_ctr = registry.counter("load.requests");
    let errors_ctr = registry.counter("load.errors");

    let mut arrivals = PoissonArrivals::new(seed ^ 0xA11A, offered_rps);
    let mut rng = SplitMix64::new(seed ^ 0x5EED);
    let zipf = Zipf::new(targets.len(), ZIPF_S);
    let gcp_opts = CpOptions {
        lock_wait_ms: 500,
        max_retries: 40,
    };

    let start = clock.now();
    let mut errors = 0u64;
    for i in 0..requests {
        // Intended arrival, offset to the measurement window's origin.
        let arrival = start + arrivals.next_arrival();
        clock.advance_to(arrival.max(clock.now()));

        let rank = zipf.sample(&mut rng);
        let client = rng.next_range(CLIENTS);
        let obj = targets[rank];
        let trace_id = clouds_obs::derive_trace_id(seed ^ client, i);
        // The request span starts at the *intended* arrival — by now the
        // clock may be far past it — and parents the invocation span
        // through the ambient context, so each request is one
        // end-to-end trace tree.
        let span = obs
            .root_span_at(arrival, trace_id, "load", "request", scenario)
            .with_histogram(Arc::clone(&hist));
        requests_ctr.inc();
        let result = match pick(&mut rng, rank) {
            Op::Plain { entry, args } => cs.invoke(obj, entry, &args, None),
            Op::Gcp { entry, args } => runtime
                .expect("gcp scenario has a consistency runtime")
                .invoke(cs, OperationLabel::Gcp, obj, entry, &args, &gcp_opts),
        };
        if result.is_err() {
            errors += 1;
            errors_ctr.inc();
        }
        drop(span);
    }

    let elapsed = clock.now().saturating_sub(start);
    let summary = hist.summary();
    let achieved_rps_milli =
        (u128::from(requests) * 1_000_000_000_000u128 / u128::from(elapsed.as_nanos().max(1))) as u64;
    LoadPoint {
        scenario,
        offered_rps,
        requests,
        errors,
        elapsed,
        achieved_rps_milli,
        p50: summary.p50,
        p99: summary.p99,
        p999: summary.p999,
    }
}

/// One KV/session-store point: 1 compute + 1 data server, [`KV_KEYS`]
/// session objects, zipf-skewed 70% `get` / 30% `put` mix. A hot
/// invocation costs ~8 ms virtual under the Sun-3 model, so a single
/// in-order server saturates near 125 rps.
pub fn run_kv_point(seed: u64, offered_rps: u64, requests: u64) -> LoadPoint {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(0)
        .seed(seed)
        .build()
        .expect("cluster boots");
    cluster.register_class("session", Session).expect("register");
    let targets: Vec<SysName> = (0..KV_KEYS)
        .map(|k| {
            cluster
                .create_object("session", &format!("S{k}"))
                .expect("session object")
        })
        .collect();
    // Prewarm: touch every session once so the measurement window sees
    // the steady (hot) state, not 64 cold demand-page storms.
    let cs = cluster.compute(0);
    let probe = encode_args(&()).expect("args");
    for &obj in &targets {
        cs.invoke(obj, "get", &probe, None).expect("prewarm");
    }

    // Literal name here so `clouds-lint`'s obs-schema rule sees the
    // registration site.
    let hist = cs.ratp().obs().histogram("slo.kv.latency");
    drive_open_loop(
        &cluster,
        None,
        "kv",
        hist,
        &targets,
        seed,
        offered_rps,
        requests,
        |rng, rank| {
            if rng.next_f64() < 0.7 {
                Op::Plain {
                    entry: "get",
                    args: encode_args(&()).expect("args"),
                }
            } else {
                Op::Plain {
                    entry: "put",
                    args: encode_args(&(rank as u64)).expect("args"),
                }
            }
        },
    )
}

/// One bank-ledger point: 1 compute + 2 data servers,
/// [`LEDGER_ACCOUNTS`] accounts, every request a gcp-thread `deposit`
/// (lock + full 2PC), zipf-skewed over accounts.
pub fn run_ledger_point(seed: u64, offered_rps: u64, requests: u64) -> LoadPoint {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(2)
        .workstations(0)
        .seed(seed)
        .build()
        .expect("cluster boots");
    cluster.register_class("account", Account).expect("register");
    let runtime = ConsistencyRuntime::install(&cluster);
    let targets: Vec<SysName> = (0..LEDGER_ACCOUNTS)
        .map(|k| {
            cluster
                .create_object("account", &format!("A{k}"))
                .expect("account object")
        })
        .collect();
    let cs = cluster.compute(0);
    let probe = encode_args(&()).expect("args");
    for &obj in &targets {
        cs.invoke(obj, "balance", &probe, None).expect("prewarm");
    }

    let hist = cs.ratp().obs().histogram("slo.ledger.latency");
    drive_open_loop(
        &cluster,
        Some(&runtime),
        "ledger",
        hist,
        &targets,
        seed,
        offered_rps,
        requests,
        |_rng, _rank| Op::Gcp {
            entry: "deposit",
            args: encode_args(&1u64).expect("args"),
        },
    )
}

/// The canonical E13 sweep: ≥4 offered-load points per scenario,
/// bracketing each scenario's saturation knee. This exact configuration
/// (with [`DEFAULT_SEED`]) produced the committed `SLO_dsm.json`.
pub fn run_e13(seed: u64) -> Vec<LoadPoint> {
    let mut out = Vec::new();
    for &rps in &[40u64, 80, 110, 140] {
        out.push(run_kv_point(seed, rps, 300));
    }
    for &rps in &[10u64, 20, 30, 40] {
        out.push(run_ledger_point(seed, rps, 150));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_charges_queueing_delay_past_saturation() {
        // Far past the ~125 rps knee the tail must blow up relative to
        // a lightly loaded run — that is the whole point of open loop.
        let light = run_kv_point(7, 30, 60);
        let heavy = run_kv_point(7, 400, 60);
        assert_eq!(light.errors, 0);
        assert!(
            heavy.p99.as_nanos() > light.p99.as_nanos() * 3,
            "no knee: light p99 {} vs heavy p99 {}",
            light.p99,
            heavy.p99
        );
        // Achieved throughput saturates below offered.
        assert!(heavy.achieved_rps_milli < 400_000);
    }

    #[test]
    fn kv_point_is_deterministic_for_a_fixed_seed() {
        let a = run_kv_point(11, 90, 50);
        let b = run_kv_point(11, 90, 50);
        assert_eq!(a.json_line(), b.json_line());
        assert_ne!(
            a.json_line(),
            run_kv_point(12, 90, 50).json_line(),
            "seed must matter"
        );
    }
}
