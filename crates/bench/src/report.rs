//! Table formatting for the paper-vs-measured reports.

/// One row of an experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// What is measured.
    pub quantity: String,
    /// The paper's reported value (verbatim).
    pub paper: String,
    /// Our measured/modeled value.
    pub measured: String,
    /// Shape verdict or remark.
    pub note: String,
}

impl Row {
    /// Build a row.
    pub fn new(
        quantity: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        note: impl Into<String>,
    ) -> Row {
        Row {
            quantity: quantity.into(),
            paper: paper.into(),
            measured: measured.into(),
            note: note.into(),
        }
    }
}

/// Print one experiment's table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!();
    println!("== {title}");
    let wq = rows
        .iter()
        .map(|r| r.quantity.len())
        .chain(["quantity".len()])
        .max()
        .unwrap_or(8);
    let wp = rows
        .iter()
        .map(|r| r.paper.len())
        .chain(["paper".len()])
        .max()
        .unwrap_or(5);
    let wm = rows
        .iter()
        .map(|r| r.measured.len())
        .chain(["measured".len()])
        .max()
        .unwrap_or(8);
    println!("{:<wq$}  {:>wp$}  {:>wm$}  note", "quantity", "paper", "measured");
    println!("{}", "-".repeat(wq + wp + wm + 10));
    for r in rows {
        println!(
            "{:<wq$}  {:>wp$}  {:>wm$}  {}",
            r.quantity, r.paper, r.measured, r.note
        );
    }
}

/// Format a virtual time in the paper's style (milliseconds).
pub fn ms(vt: clouds_simnet::Vt) -> String {
    format!("{:.2} ms", vt.as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_format() {
        let r = Row::new("context switch", "0.14 ms", "0.14 ms", "exact");
        assert_eq!(r.quantity, "context switch");
        print_table("smoke", &[r]);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(clouds_simnet::Vt::from_micros(2400)), "2.40 ms");
    }
}
