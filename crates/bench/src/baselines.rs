//! Simulated FTP- and NFS-style transfer baselines for experiment E2.3.
//!
//! The paper compares RaTP's 11.9 ms 8 KB transfer against "70 ms using
//! Unix FTP and 50 ms using Unix NFS". We cannot run 1988's TCP stack,
//! so the baselines model what made those numbers slow, over the same
//! simulated Ethernet:
//!
//! * **FTP-sim** — stop-and-wait over a byte stream: a connection
//!   handshake, then one 512-byte data block per round trip (each block
//!   individually acknowledged, with per-block protocol processing on
//!   both ends), then a teardown exchange.
//! * **NFS-sim** — block RPC: `lookup` + `getattr`, then one
//!   request/reply RPC per 1 KB block (NFS2-era rsize), each paying UDP
//!   RPC processing on both ends.
//!
//! Both run over real `clouds-simnet` frames, so their costs respond to
//! the same cost-model knobs as RaTP — the *ordering* RaTP < NFS < FTP
//! is structural (fewer round trips), not hard-coded.

use bytes::Bytes;
use clouds_simnet::{Endpoint, Network, NodeId, Vt};
use std::time::Duration;

const RECV_TIMEOUT: Duration = Duration::from_secs(5);

/// Per-block software processing charged by the old stacks (TCP/UDP +
/// RPC + user/kernel copies on a Sun-3).
const STACK_PROCESSING: Vt = Vt::from_micros(650);

fn echo_server(endpoint: Endpoint, blocks: usize, ack: usize) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for _ in 0..blocks {
            let Ok(frame) = endpoint.recv_timeout(RECV_TIMEOUT) else {
                return;
            };
            endpoint.clock().charge(STACK_PROCESSING);
            let _ = endpoint.send(frame.src, Bytes::from(vec![0u8; ack]));
        }
    })
}

/// Transfer `total` bytes with FTP-like stop-and-wait 512 B blocks.
/// Returns the sender-observed virtual duration.
pub fn ftp_sim(net: &Network, total: usize) -> Vt {
    let a = net.register(NodeId(61)).expect("fresh node");
    let b = net.register(NodeId(62)).expect("fresh node");
    let blocks = total.div_ceil(512);
    // Control connection: SYN-ish handshake + PORT/RETR exchange.
    let server = echo_server(b, blocks + 2, 32);
    let start = a.clock().now();
    for _ in 0..2 {
        a.clock().charge(STACK_PROCESSING);
        a.send(NodeId(62), Bytes::from(vec![0u8; 64])).unwrap();
        let _ = a.recv_timeout(RECV_TIMEOUT).unwrap();
        a.clock().charge(STACK_PROCESSING);
    }
    // Data: one block per round trip.
    for i in 0..blocks {
        let len = 512.min(total - i * 512);
        a.clock().charge(STACK_PROCESSING);
        a.send(NodeId(62), Bytes::from(vec![0u8; len])).unwrap();
        let _ = a.recv_timeout(RECV_TIMEOUT).unwrap();
        a.clock().charge(STACK_PROCESSING);
    }
    let elapsed = a.clock().now() - start;
    server.join().expect("ftp server");
    elapsed
}

/// Read `total` bytes with NFS-like 1 KB block RPCs.
pub fn nfs_sim(net: &Network, total: usize) -> Vt {
    let a = net.register(NodeId(63)).expect("fresh node");
    let b = net.register(NodeId(64)).expect("fresh node");
    let blocks = total.div_ceil(1024);
    // Server replies with the block payload per request.
    let server = {
        std::thread::spawn(move || {
            // lookup + getattr.
            for _ in 0..2 {
                let Ok(frame) = b.recv_timeout(RECV_TIMEOUT) else { return };
                b.clock().charge(STACK_PROCESSING);
                let _ = b.send(frame.src, Bytes::from(vec![0u8; 96]));
            }
            let mut sent = 0usize;
            while sent < total {
                let Ok(frame) = b.recv_timeout(RECV_TIMEOUT) else { return };
                b.clock().charge(STACK_PROCESSING);
                let len = 1024.min(total - sent);
                let _ = b.send(frame.src, Bytes::from(vec![0u8; len + 128]));
                sent += len;
            }
        })
    };
    let start = a.clock().now();
    for _ in 0..2 {
        a.clock().charge(STACK_PROCESSING);
        a.send(NodeId(64), Bytes::from(vec![0u8; 96])).unwrap();
        let _ = a.recv_timeout(RECV_TIMEOUT).unwrap();
        a.clock().charge(STACK_PROCESSING);
    }
    for _ in 0..blocks {
        a.clock().charge(STACK_PROCESSING);
        a.send(NodeId(64), Bytes::from(vec![0u8; 120])).unwrap();
        let _ = a.recv_timeout(RECV_TIMEOUT).unwrap();
        a.clock().charge(STACK_PROCESSING);
    }
    let elapsed = a.clock().now() - start;
    server.join().expect("nfs server");
    elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use clouds_simnet::CostModel;

    #[test]
    fn baselines_order_matches_paper() {
        let net = Network::new(CostModel::sun3_ethernet());
        let ftp = ftp_sim(&net, 8192);
        let net2 = Network::new(CostModel::sun3_ethernet());
        let nfs = nfs_sim(&net2, 8192);
        // Paper: FTP 70 ms > NFS 50 ms (> RaTP 11.9 ms, asserted in the
        // network experiment).
        assert!(ftp > nfs, "ftp {ftp} vs nfs {nfs}");
        assert!(nfs > Vt::from_millis(20), "nfs {nfs}");
        assert!(ftp < Vt::from_millis(140), "ftp {ftp}");
    }
}
