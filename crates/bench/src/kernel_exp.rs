//! E1 — kernel microbenchmarks (§4.3 ¶1).
//!
//! Paper: "Context switch time is 0.14 ms. The time to service a page
//! fault when the page is resident on the same node costs 1.5 ms for a
//! zero-filled, 8K page; and costs 0.629 ms for a non zero-filled page."

use clouds_ra::sched::{Scheduler, StackKind};
use clouds_ra::{AccessMode, LocalPartition, PageCache, SegmentStore, SysName, PAGE_SIZE};
use clouds_simnet::{CostModel, VirtualClock, Vt};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Measured results of the kernel microbenchmarks.
#[derive(Debug, Clone, Copy)]
pub struct KernelResults {
    /// Virtual time per context switch.
    pub context_switch: Vt,
    /// Virtual time to service a zero-filled 8 KB fault.
    pub fault_zero: Vt,
    /// Virtual time to service a copied (non-zero-filled) fault.
    pub fault_copy: Vt,
    /// Context switches performed in the ping-pong run.
    pub switches: u64,
}

/// Two IsiBas ping-pong on one virtual CPU; the per-switch cost is the
/// accumulated virtual time divided by the switch count.
pub fn context_switch_vt(iters: u64) -> (Vt, u64) {
    let clock = Arc::new(VirtualClock::new());
    let sched = Scheduler::new(
        1,
        Arc::clone(&clock),
        CostModel::sun3_ethernet().context_switch,
    );
    let go = Arc::new(AtomicBool::new(false));
    let mk = |go: Arc<AtomicBool>| {
        move |ctx: &clouds_ra::sched::IsiBaCtx| {
            while !go.load(Ordering::Acquire) {
                ctx.yield_now();
            }
            for _ in 0..iters {
                ctx.yield_now();
            }
        }
    };
    let start = clock.now();
    let a = sched.spawn(StackKind::User, mk(Arc::clone(&go)));
    let b = sched.spawn(StackKind::User, mk(Arc::clone(&go)));
    go.store(true, Ordering::Release);
    a.join();
    b.join();
    let switches = sched.switches();
    let per_switch = Vt::from_nanos((clock.now() - start).as_nanos() / switches.max(1));
    (per_switch, switches)
}

/// Real (wall-clock) cost of one cooperative context switch, for the
/// Criterion benches. Returns total switches performed.
pub fn context_switch_wall(iters: u64) -> u64 {
    let clock = Arc::new(VirtualClock::new());
    let sched = Scheduler::new(1, Arc::clone(&clock), Vt::ZERO);
    let go = Arc::new(AtomicBool::new(false));
    let mk = |go: Arc<AtomicBool>| {
        move |ctx: &clouds_ra::sched::IsiBaCtx| {
            while !go.load(Ordering::Acquire) {
                ctx.yield_now();
            }
            for _ in 0..iters {
                ctx.yield_now();
            }
        }
    };
    let a = sched.spawn(StackKind::User, mk(Arc::clone(&go)));
    let b = sched.spawn(StackKind::User, mk(Arc::clone(&go)));
    go.store(true, Ordering::Release);
    a.join();
    b.join();
    sched.switches()
}

/// Local page-fault service times (zero-filled vs copied).
pub fn page_fault_vt() -> (Vt, Vt) {
    let clock = Arc::new(VirtualClock::new());
    let store = SegmentStore::new();
    let zero_seg = SysName::from_parts(1, 1);
    let full_seg = SysName::from_parts(1, 2);
    store.create(zero_seg, PAGE_SIZE as u64).unwrap();
    store.create(full_seg, PAGE_SIZE as u64).unwrap();
    store
        .get(full_seg)
        .unwrap()
        .write()
        .write(0, &vec![7u8; PAGE_SIZE])
        .unwrap();
    let part = LocalPartition::new(store, Arc::clone(&clock), CostModel::sun3_ethernet());
    let cache = PageCache::new(8);

    let t0 = clock.now();
    cache
        .access((zero_seg, 0), AccessMode::Read, &part, |_| ())
        .unwrap();
    let zero = clock.now() - t0;

    let t1 = clock.now();
    cache
        .access((full_seg, 0), AccessMode::Read, &part, |_| ())
        .unwrap();
    let copy = clock.now() - t1;
    (zero, copy)
}

/// Run the whole E1 suite.
pub fn run() -> KernelResults {
    let (context_switch, switches) = context_switch_vt(500);
    let (fault_zero, fault_copy) = page_fault_vt();
    KernelResults {
        context_switch,
        fault_zero,
        fault_copy,
        switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_matches_paper_exactly() {
        let r = run();
        assert_eq!(r.context_switch, Vt::from_micros(140));
        assert_eq!(r.fault_zero, Vt::from_micros(1500));
        assert_eq!(r.fault_copy, Vt::from_micros(629));
        assert!(r.switches >= 1000);
    }
}
