//! E3 — object invocation costs (§4.3 ¶4).
//!
//! Paper: "Object invocation costs vary widely depending upon whether
//! the object is currently in memory or have to be fetched from a data
//! server. The maximum cost for a null invocation is 103 ms while the
//! minimum cost is 8 ms. Note that due to locality the average costs is
//! much closer to the minimum than the maximum."

use clouds::prelude::*;
use clouds_simnet::Vt;

/// Measured invocation costs (virtual time).
#[derive(Debug, Clone, Copy)]
pub struct InvocationResults {
    /// Null invocation with the object activated and resident (min).
    pub hot: Vt,
    /// Null invocation with nothing resident: header + code demand-paged
    /// from the data server (max).
    pub cold: Vt,
    /// Mean over a locality-weighted mix (19 hot : 1 cold).
    pub mixed_mean: Vt,
}

/// The null object: one entry point that does nothing.
struct Null;

impl ObjectCode for Null {
    fn dispatch(&self, entry: &str, _ctx: &mut Invocation<'_>, _args: &[u8]) -> EntryResult {
        match entry {
            "nop" => encode_result(&()),
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn cluster() -> (Cluster, SysName) {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(0)
        .build()
        .expect("cluster boots");
    cluster.register_class("null", Null).expect("class registers");
    let obj = cluster.create_object("null", "Null01").expect("object");
    (cluster, obj)
}

fn invoke_vt(cluster: &Cluster, obj: SysName) -> Vt {
    let clock = cluster
        .network()
        .clock(cluster.compute(0).node_id())
        .expect("clock");
    let before = clock.now();
    cluster
        .compute(0)
        .invoke(obj, "nop", &clouds::encode_args(&()).expect("args"), None)
        .expect("invocation");
    clock.now() - before
}

/// Hot null invocation: activation cached, everything resident.
pub fn hot(cluster: &Cluster, obj: SysName) -> Vt {
    // Warm up once, then measure.
    invoke_vt(cluster, obj);
    invoke_vt(cluster, obj)
}

/// Cold null invocation: drop the activation so header + code pages are
/// demand-paged from the data server again.
pub fn cold(cluster: &Cluster, obj: SysName) -> Vt {
    cluster.compute(0).object_manager().deactivate(obj);
    cluster.compute(0).dsm().forget_home(obj);
    invoke_vt(cluster, obj)
}

/// Run the whole E3 suite.
pub fn run() -> InvocationResults {
    let (cluster, obj) = cluster();
    let hot_t = hot(&cluster, obj);
    let cold_t = cold(&cluster, obj);
    // Locality mix: 1 cold in 20 ("average much closer to the minimum").
    let mut total = Vt::ZERO;
    let mixes = 20u64;
    for i in 0..mixes {
        if i % 20 == 0 {
            cluster.compute(0).object_manager().deactivate(obj);
        }
        total += invoke_vt(&cluster, obj);
    }
    InvocationResults {
        hot: hot_t,
        cold: cold_t,
        mixed_mean: Vt::from_nanos(total.as_nanos() / mixes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_matches_paper_shape() {
        let r = run();
        // Paper min: 8 ms. Ours is 2×(context switch + stack remap).
        assert_eq!(r.hot, Vt::from_micros(8000), "hot {}", r.hot);
        // Paper max: 103 ms. Ours must be an order of magnitude above
        // hot, in the ~100 ms band (header + 8 code pages over RaTP).
        assert!(r.cold >= Vt::from_millis(60), "cold {}", r.cold);
        assert!(r.cold <= Vt::from_millis(160), "cold {}", r.cold);
        // Locality pulls the mean near the minimum.
        let hot_ns = r.hot.as_nanos() as f64;
        let cold_ns = r.cold.as_nanos() as f64;
        let mean_ns = r.mixed_mean.as_nanos() as f64;
        assert!(
            (mean_ns - hot_ns) < 0.25 * (cold_ns - hot_ns),
            "mean {} not close to min {}",
            r.mixed_mean,
            r.hot
        );
    }
}
