//! E9 — causal critical path of a remote invocation.
//!
//! Runs the quickstart-shaped workload (workstation → compute server →
//! data server) on a fault-free cluster with tracing on, reconstructs
//! the cross-node trace forest with [`clouds_obs::causal`], and reports
//! the critical path of the longest invocation-rooted trace: which
//! layer the virtual time actually lives in, *exclusive* of children —
//! the paper's per-layer cost intuition (§4.3) derived from causality
//! rather than from per-layer histograms (E8).

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_obs::causal::{build_forest, parse_jsonl, PathStep, TraceTree};
use clouds_simnet::Vt;
use std::collections::BTreeMap;

/// What E9 reports.
#[derive(Debug)]
pub struct CausalBreakdown {
    /// Distinct traces reconstructed from the run.
    pub traces: usize,
    /// Spans across all traces.
    pub spans: usize,
    /// Nodes the chosen trace touches.
    pub trace_nodes: usize,
    /// Duration of the chosen trace's root span.
    pub root_dur: Vt,
    /// The chosen trace's critical path, root first.
    pub path: Vec<PathStep>,
    /// Per-layer self time along the critical path (exclusive of
    /// children), summing to `root_dur`.
    pub layer_self: BTreeMap<String, u64>,
}

struct Rectangle;

impl ObjectCode for Rectangle {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        ctx.persistent().write_i32(0, 1)?;
        ctx.persistent().write_i32(4, 1)
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "size" => {
                let (x, y): (i32, i32) = decode_args(args)?;
                ctx.persistent().write_i32(0, x)?;
                ctx.persistent().write_i32(4, y)?;
                encode_result(&())
            }
            "area" => {
                let x = ctx.persistent().read_i32(0)?;
                let y = ctx.persistent().read_i32(4)?;
                encode_result(&(x * y))
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

/// Run the traced workload and profile it.
///
/// # Panics
///
/// Panics if the run produces no clean invocation-rooted trace — that
/// is itself a regression in the tracing layer.
pub fn run() -> CausalBreakdown {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(1)
        .build()
        .expect("cluster boots");
    cluster
        .register_class("rectangle", Rectangle)
        .expect("class registers");
    let ws = cluster.workstation(0);
    ws.create_object("rectangle", "Rect01").expect("create");
    ws.run_wait("Rect01", "size", &(5i32, 10i32)).expect("size");
    let area: i32 = ws.run_wait_decode("Rect01", "area", &()).expect("area");
    assert_eq!(area, 50);

    let jsonl = cluster.trace_sink().canonical_jsonl();
    let events = parse_jsonl(&jsonl).expect("own trace parses");
    let (forest, report) = build_forest(&events);
    assert!(
        report.is_clean(),
        "causal defects in fault-free trace:\n{}",
        report.findings().join("\n")
    );

    // Profile the longest invocation-rooted trace (the `size` call that
    // takes the cold page faults).
    let (tree, root) = forest
        .trees
        .values()
        .filter_map(|t| {
            t.roots
                .iter()
                .find(|r| t.spans[r].layer == "invoke")
                .map(|&r| (t, r))
        })
        .max_by_key(|(t, r)| (t.spans[r].dur.unwrap_or(0), t.trace_id))
        .expect("an invocation-rooted trace exists");
    profile(&forest, tree, root)
}

fn profile(forest: &clouds_obs::causal::Forest, tree: &TraceTree, root: u64) -> CausalBreakdown {
    let path = tree.critical_path(root);
    let layer_self = clouds_obs::causal::layer_self_times(&path);
    CausalBreakdown {
        traces: forest.trees.len(),
        spans: forest.trees.values().map(|t| t.spans.len()).sum(),
        trace_nodes: tree.nodes().len(),
        root_dur: Vt::from_nanos(tree.spans[&root].dur.unwrap_or(0)),
        path,
        layer_self,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_critical_path_telescopes_and_crosses_nodes() {
        let b = run();
        assert!(b.traces >= 1);
        assert!(b.trace_nodes >= 2, "critical trace should cross nodes");
        assert!(!b.path.is_empty());
        let total: u64 = b.path.iter().map(|s| s.self_time).sum();
        assert_eq!(
            total,
            b.root_dur.as_nanos(),
            "per-layer self time must sum to the root duration"
        );
        let by_layer: u64 = b.layer_self.values().sum();
        assert_eq!(by_layer, total);
    }
}
