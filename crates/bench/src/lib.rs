//! `clouds-bench` — the benchmark harness that regenerates every
//! measured claim of the paper's evaluation (§4.3) and research section
//! (§5). See DESIGN.md's per-experiment index (E1–E6) and
//! EXPERIMENTS.md for recorded results.
//!
//! Two front ends share the experiment runners in this library:
//!
//! * `cargo run -p clouds-bench --release --bin paper_tables` prints the
//!   paper-vs-measured tables in **virtual time** (the calibrated Sun-3
//!   cost model).
//! * `cargo bench` runs Criterion benches measuring the **wall-clock**
//!   cost of the same code paths on the host machine.

#![forbid(unsafe_code)]

pub mod baselines;
pub mod causal_exp;
pub mod consistency_exp;
pub mod invocation_exp;
pub mod kernel_exp;
pub mod load;
pub mod network_exp;
pub mod paging_exp;
pub mod pet_exp;
pub mod recovery_exp;
pub mod report;
pub mod sort_exp;

pub use report::{print_table, Row};
