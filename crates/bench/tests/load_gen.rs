//! Property tests for the open-loop load generators: deterministic for
//! a fixed seed, statistically shaped as advertised, and free of wall
//! clock / OS entropy (the latter enforced repo-wide by
//! `clouds-lint --deny`, which these generators must pass).

use clouds_bench::load::{PoissonArrivals, SplitMix64, Zipf, ZIPF_S};
use proptest::prelude::*;

#[test]
fn poisson_rate_matches_offered_load() {
    // 20k gaps at 100 rps: the empirical mean inter-arrival must sit
    // within 3% of the configured 10 ms.
    let mut arr = PoissonArrivals::new(42, 100);
    let n = 20_000u64;
    let mut last = 0u64;
    for _ in 0..n {
        let t = arr.next_arrival().as_nanos();
        assert!(t > last, "arrivals strictly increase");
        last = t;
    }
    let mean_gap = last as f64 / n as f64;
    let expected = 1e9 / 100.0;
    assert!(
        (mean_gap - expected).abs() / expected < 0.03,
        "mean gap {mean_gap} vs expected {expected}"
    );
}

#[test]
fn zipf_skew_concentrates_on_hot_ranks() {
    let zipf = Zipf::new(64, ZIPF_S);
    let mut rng = SplitMix64::new(7);
    let mut freq = [0u64; 64];
    let n = 40_000;
    for _ in 0..n {
        freq[zipf.sample(&mut rng)] += 1;
    }
    // Rank 0's share under s=0.99, n=64 is 1/H ≈ 21%; allow wide
    // statistical slack but reject anything uniform-ish (1.6%).
    let share0 = freq[0] as f64 / n as f64;
    assert!((0.15..=0.28).contains(&share0), "rank-0 share {share0}");
    // The head dominates the tail: the top 8 ranks draw ~57% of
    // traffic vs ~14.5% for the bottom 32 (analytically ×3.9 under
    // s=0.99); ×3 leaves statistical slack.
    let head: u64 = freq[..8].iter().sum();
    let tail: u64 = freq[32..].iter().sum();
    assert!(head > 3 * tail, "head {head} vs tail {tail}");
    // Every rank is reachable in a sample this large.
    assert!(freq.iter().all(|&f| f > 0), "no starved ranks");
}

proptest! {
    /// Same seed → same stream; different seed → different stream
    /// (no hidden entropy source can sneak in either way).
    #[test]
    fn generators_are_pure_functions_of_the_seed(seed in any::<u64>(), rps in 1u64..10_000) {
        let take = |mut a: PoissonArrivals| -> Vec<u64> {
            (0..64).map(|_| a.next_arrival().as_nanos()).collect()
        };
        let s1 = take(PoissonArrivals::new(seed, rps));
        prop_assert_eq!(&s1, &take(PoissonArrivals::new(seed, rps)));
        prop_assert_ne!(&s1, &take(PoissonArrivals::new(seed ^ 1, rps)));

        let zipf = Zipf::new(32, ZIPF_S);
        let draw = |mut r: SplitMix64| -> Vec<usize> {
            (0..64).map(|_| zipf.sample(&mut r)).collect()
        };
        let z1 = draw(SplitMix64::new(seed));
        prop_assert_eq!(&z1, &draw(SplitMix64::new(seed)));
        prop_assert!(z1.iter().all(|&k| k < 32), "ranks in range");
    }

    /// Range sampling is in-bounds for any seed and modulus.
    #[test]
    fn next_range_is_in_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_range(n) < n);
        }
    }
}
