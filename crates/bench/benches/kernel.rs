//! Criterion wall-clock benches for E1: the real cost of the
//! reproduction's context switch and page-fault service on the host
//! machine (the paper's absolute numbers live in `paper_tables`).

use clouds_bench::kernel_exp;
use clouds_ra::{AccessMode, LocalPartition, PageCache, SegmentStore, SysName, PAGE_SIZE};
use clouds_simnet::{CostModel, VirtualClock};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_context_switch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    group.bench_function("context_switch_pair_x200", |b| {
        b.iter(|| black_box(kernel_exp::context_switch_wall(200)));
    });
    group.finish();
}

fn bench_page_fault(c: &mut Criterion) {
    let clock = Arc::new(VirtualClock::new());
    let store = SegmentStore::new();
    let seg = SysName::from_parts(1, 1);
    store.create(seg, 64 * PAGE_SIZE as u64).unwrap();
    let part = LocalPartition::new(store, clock, CostModel::zero());

    let mut group = c.benchmark_group("kernel");
    group.bench_function("page_fault_zero_fill", |b| {
        let mut page = 0u32;
        let cache = PageCache::new(4);
        b.iter(|| {
            cache
                .access((seg, page % 64), AccessMode::Read, &part, |f| {
                    black_box(f.data[0]);
                })
                .unwrap();
            page = page.wrapping_add(1);
        });
    });
    group.bench_function("page_hit", |b| {
        let cache = PageCache::new(4);
        cache
            .access((seg, 0), AccessMode::Read, &part, |_| ())
            .unwrap();
        b.iter(|| {
            cache
                .access((seg, 0), AccessMode::Read, &part, |f| {
                    black_box(f.data[0]);
                })
                .unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_context_switch, bench_page_fault);
criterion_main!(benches);
