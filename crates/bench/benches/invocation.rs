//! Criterion wall-clock benches for E3 and E5: hot object invocation
//! and gcp-thread deposits on the host machine.

use clouds::prelude::*;
use clouds_consistency::{ConsistencyRuntime, CpOptions};
use clouds_simnet::CostModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

struct Null;
impl ObjectCode for Null {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "nop" => encode_result(&()),
            "deposit" => {
                let amount: u64 = decode_args(args)?;
                let v = ctx.persistent().read_u64(0)? + amount;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&v)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn bench_invocation(c: &mut Criterion) {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(0)
        .cost_model(CostModel::zero())
        .build()
        .unwrap();
    cluster.register_class("null", Null).unwrap();
    let obj = cluster.create_object("null", "N").unwrap();
    let args = encode_args(&()).unwrap();

    let mut group = c.benchmark_group("invocation");
    group.sample_size(20);
    group.bench_function("hot_null_invocation", |b| {
        b.iter(|| black_box(cluster.compute(0).invoke(obj, "nop", &args, None).unwrap()));
    });
    group.finish();
}

fn bench_gcp(c: &mut Criterion) {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(0)
        .cost_model(CostModel::zero())
        .build()
        .unwrap();
    cluster.register_class("null", Null).unwrap();
    let runtime = ConsistencyRuntime::install(&cluster);
    let obj = cluster.create_object("null", "N").unwrap();
    let args = encode_args(&1u64).unwrap();
    let opts = CpOptions::default();

    let mut group = c.benchmark_group("consistency");
    group.sample_size(20);
    group.bench_function("gcp_deposit", |b| {
        b.iter(|| {
            black_box(
                runtime
                    .invoke(
                        cluster.compute(0),
                        OperationLabel::Gcp,
                        obj,
                        "deposit",
                        &args,
                        &opts,
                    )
                    .unwrap(),
            )
        });
    });
    group.bench_function("s_deposit", |b| {
        b.iter(|| {
            black_box(
                cluster
                    .compute(0)
                    .invoke(obj, "deposit", &args, None)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_invocation, bench_gcp);
criterion_main!(benches);
