//! Criterion wall-clock benches for E2: the real cost of RaTP message
//! transactions in the reproduction (virtual-time results live in
//! `paper_tables`).

use bytes::Bytes;
use clouds_ratp::{RatpConfig, RatpNode, Request};
use clouds_simnet::{CostModel, Network, NodeId};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_ratp(c: &mut Criterion) {
    let net = Network::new(CostModel::zero());
    let a = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
    let b = RatpNode::spawn(net.register(NodeId(2)).unwrap(), RatpConfig::default());
    b.register_service(1, |req: Request| req.payload);

    let mut group = c.benchmark_group("ratp");
    group.sample_size(20);
    group.bench_function("null_transaction", |bch| {
        bch.iter(|| black_box(a.call(NodeId(2), 1, Bytes::new()).unwrap()));
    });
    group.throughput(Throughput::Bytes(8192));
    group.bench_function("8k_echo", |bch| {
        let payload = Bytes::from(vec![0u8; 8192]);
        bch.iter(|| black_box(a.call(NodeId(2), 1, payload.clone()).unwrap()));
    });
    group.finish();
}

fn bench_frames(c: &mut Criterion) {
    let net = Network::new(CostModel::zero());
    let a = net.register(NodeId(11)).unwrap();
    let b = net.register(NodeId(12)).unwrap();

    let mut group = c.benchmark_group("simnet");
    group.bench_function("frame_send_recv", |bch| {
        bch.iter(|| {
            a.send(NodeId(12), Bytes::from_static(b"ping")).unwrap();
            black_box(b.recv_timeout(std::time::Duration::from_secs(1)).unwrap());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ratp, bench_frames);
criterion_main!(benches);
