//! Criterion wall-clock benches for the DSM coherence protocol and the
//! codec (supporting E4 and the parameter-passing path).

use clouds_codec as codec;
use clouds_dsm::{DsmClientPartition, DsmServer};
use clouds_ra::{AddressSpace, PageCache, Partition, SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn dsm_pair() -> (AddressSpace, AddressSpace, SysName) {
    let net = Network::new(CostModel::zero());
    let ds = RatpNode::spawn(net.register(NodeId(100)).unwrap(), RatpConfig::default());
    let _server = DsmServer::install(&ds);
    let mk = |id| {
        let ratp = RatpNode::spawn(net.register(id).unwrap(), RatpConfig::default());
        let cache = Arc::new(PageCache::new(64));
        DsmClientPartition::install(&ratp, cache, vec![NodeId(100)])
    };
    let a = mk(NodeId(1));
    let b = mk(NodeId(2));
    let seg = SysName::from_parts(9, 9);
    a.create_segment(seg, PAGE_SIZE as u64).unwrap();
    let mut sa = AddressSpace::new(Arc::clone(a.cache()), a as Arc<dyn Partition>);
    let mut sb = AddressSpace::new(Arc::clone(b.cache()), b as Arc<dyn Partition>);
    sa.map(0, seg, 0, PAGE_SIZE as u64, true).unwrap();
    sb.map(0, seg, 0, PAGE_SIZE as u64, true).unwrap();
    (sa, sb, seg)
}

fn bench_dsm(c: &mut Criterion) {
    let (sa, sb, _seg) = dsm_pair();
    let mut group = c.benchmark_group("dsm");
    group.sample_size(10);
    group.bench_function("page_ping_pong", |b| {
        let mut i = 0u64;
        b.iter(|| {
            sa.write_u64(0, i).unwrap();
            black_box(sb.read_u64(0).unwrap());
            sb.write_u64(0, i + 1).unwrap();
            black_box(sa.read_u64(0).unwrap());
            i += 2;
        });
    });
    group.bench_function("local_hit_read", |b| {
        sa.write_u64(0, 7).unwrap();
        b.iter(|| black_box(sa.read_u64(0).unwrap()));
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let value: Vec<(String, u64, Vec<u8>)> = (0..64)
        .map(|i| (format!("key-{i}"), i, vec![i as u8; 100]))
        .collect();
    let encoded = codec::to_bytes(&value).unwrap();

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| black_box(codec::to_bytes(&value).unwrap()));
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            black_box(
                codec::from_bytes::<Vec<(String, u64, Vec<u8>)>>(&encoded).unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dsm, bench_codec);
criterion_main!(benches);
