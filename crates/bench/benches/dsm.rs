//! Criterion wall-clock benches for the DSM coherence protocol and the
//! codec (supporting E4 and the parameter-passing path).

use clouds_codec as codec;
use clouds_codec::PageBytes;
use clouds_dsm::{DsmClientPartition, DsmServer};
use clouds_ra::{AddressSpace, PageCache, Partition, SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId};
use clouds_dsm::proto::{self, ports, DsmReply, DsmRequest, WireInstallAck, WireMode};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn dsm_pair() -> (AddressSpace, AddressSpace, SysName) {
    let net = Network::new(CostModel::zero());
    let ds = RatpNode::spawn(net.register(NodeId(100)).unwrap(), RatpConfig::default());
    let _server = DsmServer::install(&ds);
    let mk = |id| {
        let ratp = RatpNode::spawn(net.register(id).unwrap(), RatpConfig::default());
        let cache = Arc::new(PageCache::new(64));
        DsmClientPartition::install(&ratp, cache, vec![NodeId(100)])
    };
    let a = mk(NodeId(1));
    let b = mk(NodeId(2));
    let seg = SysName::from_parts(9, 9);
    a.create_segment(seg, PAGE_SIZE as u64).unwrap();
    let mut sa = AddressSpace::new(Arc::clone(a.cache()), a as Arc<dyn Partition>);
    let mut sb = AddressSpace::new(Arc::clone(b.cache()), b as Arc<dyn Partition>);
    sa.map(0, seg, 0, PAGE_SIZE as u64, true).unwrap();
    sb.map(0, seg, 0, PAGE_SIZE as u64, true).unwrap();
    (sa, sb, seg)
}

fn bench_dsm(c: &mut Criterion) {
    let (sa, sb, _seg) = dsm_pair();
    let mut group = c.benchmark_group("dsm");
    group.sample_size(10);
    group.bench_function("page_ping_pong", |b| {
        let mut i = 0u64;
        b.iter(|| {
            sa.write_u64(0, i).unwrap();
            black_box(sb.read_u64(0).unwrap());
            sb.write_u64(0, i + 1).unwrap();
            black_box(sa.read_u64(0).unwrap());
            i += 2;
        });
    });
    group.bench_function("local_hit_read", |b| {
        sa.write_u64(0, 7).unwrap();
        b.iter(|| black_box(sa.read_u64(0).unwrap()));
    });
    group.finish();
}

/// Batched-paging benches: a cold 1 MiB sequential scan (read-ahead
/// collapses ~128 fetch RPCs into ~17) and a 32-dirty-page commit flush
/// (one coalesced `WriteBackBatch` instead of 32 `WriteBack`s).
fn bench_dsm_batching(c: &mut Criterion) {
    const PAGES: u64 = (1 << 20) / PAGE_SIZE as u64; // 1 MiB of pages
    let net = Network::new(CostModel::zero());
    let ds = RatpNode::spawn(net.register(NodeId(100)).unwrap(), RatpConfig::default());
    let server = DsmServer::install(&ds);

    // Seed the canonical store over the raw wire (written back and
    // released) so scans page from the server, not from another client.
    let raw = RatpNode::spawn(net.register(NodeId(99)).unwrap(), RatpConfig::default());
    let scan_seg = SysName::from_parts(9, 10);
    let call = |req: &DsmRequest| {
        let reply = raw.call(NodeId(100), ports::DSM_SERVER, proto::encode(req)).unwrap();
        assert!(matches!(proto::decode(&reply).unwrap(), DsmReply::Ok));
    };
    call(&DsmRequest::CreateSegment {
        seg: scan_seg,
        len: PAGES * PAGE_SIZE as u64,
    });
    for page in 0..PAGES {
        call(&DsmRequest::WriteBack {
            seg: scan_seg,
            page: page as u32,
            data: PageBytes::from(vec![page as u8; PAGE_SIZE]),
            release: true,
        });
    }

    let mk = |id, frames| {
        let ratp = RatpNode::spawn(net.register(id).unwrap(), RatpConfig::default());
        DsmClientPartition::install(&ratp, Arc::new(PageCache::new(frames)), vec![NodeId(100)])
    };
    let reader = mk(NodeId(1), 2 * PAGES as usize);
    let mut rs = AddressSpace::new(
        Arc::clone(reader.cache()),
        Arc::clone(&reader) as Arc<dyn Partition>,
    );
    rs.map(0, scan_seg, 0, PAGES * PAGE_SIZE as u64, true).unwrap();

    let mut group = c.benchmark_group("dsm");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(PAGES * PAGE_SIZE as u64));
    group.bench_function("sequential_scan_1mb", |b| {
        // Cold-start every sample: drop the cached frames and the
        // server's memory of them, so each scan demand-pages afresh.
        reader.cache().clear();
        server.clear_directory();
        b.iter(|| {
            for page in 0..PAGES {
                black_box(rs.read_u64(page * PAGE_SIZE as u64).unwrap());
            }
        });
    });

    const DIRTY: u64 = 32;
    let writer = mk(NodeId(2), 64);
    let flush_seg = SysName::from_parts(9, 11);
    writer
        .create_segment(flush_seg, DIRTY * PAGE_SIZE as u64)
        .unwrap();
    let mut ws = AddressSpace::new(
        Arc::clone(writer.cache()),
        Arc::clone(&writer) as Arc<dyn Partition>,
    );
    ws.map(0, flush_seg, 0, DIRTY * PAGE_SIZE as u64, true).unwrap();
    group.throughput(Throughput::Bytes(DIRTY * PAGE_SIZE as u64));
    group.bench_function("commit_flush_32_dirty", |b| {
        // Re-dirty the working set outside the timed region.
        for page in 0..DIRTY {
            ws.write_u64(page * PAGE_SIZE as u64, page).unwrap();
        }
        b.iter(|| ws.flush().unwrap());
    });
    group.finish();
}

/// Four clients scanning four disjoint segments against one data
/// server: every fetch races the others for the coherence directory, so
/// aggregate throughput is governed by how finely the directory locks.
/// The scans drive the server's wire handler in-process (the same
/// decode → directory → grant → encode path RaTP dispatches to) so the
/// directory is the bottleneck rather than transport threads. Run once
/// with the production stripe count and once with a single stripe (the
/// pre-sharding coarse lock) so the speedup is measurable from one
/// bench invocation.
fn concurrent_scan(c: &mut Criterion, name: &str, shards: usize) {
    const CLIENTS: u64 = 4;
    const PAGES: u32 = 64;
    let net = Network::new(CostModel::zero());
    let ds = RatpNode::spawn(net.register(NodeId(100)).unwrap(), RatpConfig::default());
    let server = DsmServer::install_sharded(&ds, clouds_ra::SegmentStore::new(), shards);

    let seed = |req: &DsmRequest| {
        let reply = server.serve_wire(NodeId(99), &proto::encode(req));
        assert!(matches!(proto::decode(&reply).unwrap(), DsmReply::Ok));
    };
    let seg_of = |i: u64| SysName::from_parts(9, 20 + i);
    for i in 0..CLIENTS {
        seed(&DsmRequest::CreateSegment {
            seg: seg_of(i),
            len: u64::from(PAGES) * PAGE_SIZE as u64,
        });
        for page in 0..PAGES {
            seed(&DsmRequest::WriteBack {
                seg: seg_of(i),
                page,
                data: PageBytes::from(vec![page as u8; PAGE_SIZE]),
                release: true,
            });
        }
    }

    let mut group = c.benchmark_group("dsm");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(
        CLIENTS * u64::from(PAGES) * PAGE_SIZE as u64,
    ));
    group.bench_function(name, |b| {
        b.iter(|| {
            // Cold-start every iteration: all four scans demand-page
            // concurrently, acking each grant like a real client.
            server.clear_directory();
            std::thread::scope(|s| {
                for i in 0..CLIENTS {
                    let server = &server;
                    s.spawn(move || {
                        let src = NodeId(1 + i as u32);
                        let seg = seg_of(i);
                        for page in 0..PAGES {
                            let fetch = proto::encode(&DsmRequest::FetchPage {
                                seg,
                                page,
                                mode: WireMode::Read,
                            });
                            let reply = server.serve_wire(src, &fetch);
                            let DsmReply::Page { data, grant_seq, .. } =
                                proto::decode_shared(&reply).unwrap()
                            else {
                                panic!("fetch not granted");
                            };
                            black_box(&data);
                            let ack = proto::encode(&DsmRequest::InstallAckBatch {
                                seg,
                                acks: vec![WireInstallAck {
                                    page,
                                    grant_seq,
                                    installed: true,
                                }],
                            });
                            black_box(server.serve_wire(src, &ack));
                        }
                    });
                }
            });
        });
    });
    group.finish();
}

fn bench_dsm_concurrent(c: &mut Criterion) {
    concurrent_scan(c, "concurrent_scan_4_clients", 8);
    concurrent_scan(c, "concurrent_scan_4_clients_coarse", 1);
}

fn bench_codec(c: &mut Criterion) {
    // The message that dominates DSM wire traffic: an 8 KiB page grant.
    // Encode is one length-prefixed memcpy out of the `PageBytes`;
    // decode adopts the payload as a refcounted slice of the reply
    // buffer instead of copying it out field by field.
    let grant = DsmReply::Page {
        data: PageBytes::from(vec![7u8; PAGE_SIZE]),
        version: 9,
        zero_filled: false,
        grant_seq: 42,
    };
    let encoded = proto::encode(&grant);

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| black_box(proto::encode(&grant)));
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(proto::decode_shared::<DsmReply>(&encoded).unwrap()));
    });

    // The original mixed small-field workload, kept for continuity:
    // many short strings and integers, no dominant byte payload.
    let value: Vec<(String, u64, Vec<u8>)> = (0..64)
        .map(|i| (format!("key-{i}"), i, vec![i as u8; 100]))
        .collect();
    let mixed = codec::to_bytes(&value).unwrap();
    group.throughput(Throughput::Bytes(mixed.len() as u64));
    group.bench_function("encode_mixed", |b| {
        b.iter(|| black_box(codec::to_bytes(&value).unwrap()));
    });
    group.bench_function("decode_mixed", |b| {
        b.iter(|| {
            black_box(
                codec::from_bytes::<Vec<(String, u64, Vec<u8>)>>(&mixed).unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dsm, bench_dsm_batching, bench_dsm_concurrent, bench_codec);
criterion_main!(benches);
