//! End-to-end tests of the Clouds object–thread model: the paper's §2
//! programming model, §3 environment, and §4.2 system objects, running
//! on a full simulated cluster.

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_simnet::CostModel;

/// The paper's §2.4 rectangle class.
struct Rectangle;

impl ObjectCode for Rectangle {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "size" => {
                let (x, y): (i32, i32) = decode_args(args)?;
                ctx.persistent().write_i32(0, x)?;
                ctx.persistent().write_i32(4, y)?;
                encode_result(&())
            }
            "area" => {
                let x = ctx.persistent().read_i32(0)?;
                let y = ctx.persistent().read_i32(4)?;
                encode_result(&(x * y))
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

/// A counter exercising constructors, nested invocation and I/O.
struct Counter;

impl ObjectCode for Counter {
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        ctx.persistent().write_u64(0, 1000) // counters start at 1000
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "add" => {
                let delta: u64 = decode_args(args)?;
                let v = ctx.persistent().read_u64(0)? + delta;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&v)
            }
            "get" => encode_result(&ctx.persistent().read_u64(0)?),
            "announce" => {
                let v = ctx.persistent().read_u64(0)?;
                ctx.write_line(&format!("counter is {v}"))?;
                encode_result(&())
            }
            "add_via" => {
                // Nested invocation: add to *another* counter by name.
                let (peer, delta): (String, u64) = decode_args(args)?;
                let encoded = clouds::encode_args(&delta)?;
                let reply = ctx.invoke_named(&peer, "add", &encoded)?;
                Ok(reply)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn fast_cluster(computes: usize, datas: usize) -> Cluster {
    Cluster::builder()
        .compute_servers(computes)
        .data_servers(datas)
        .workstations(1)
        .cost_model(CostModel::zero())
        .build()
        .unwrap()
}

#[test]
fn rectangle_quickstart_from_the_paper() {
    let cluster = fast_cluster(1, 1);
    cluster.register_class("rectangle", Rectangle).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("rectangle", "Rect01").unwrap();
    ws.run_wait("Rect01", "size", &(5i32, 10i32)).unwrap();
    let area: i32 = ws.run_wait_decode("Rect01", "area", &()).unwrap();
    assert_eq!(area, 50); // "will print 50"
}

#[test]
fn objects_persist_across_invocations_and_servers() {
    let cluster = fast_cluster(2, 1);
    cluster.register_class("counter", Counter).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("counter", "C1").unwrap();

    // Constructor ran.
    let v: u64 = ws.run_wait_decode("C1", "get", &()).unwrap();
    assert_eq!(v, 1000);

    // Workstation round-robins across both compute servers; state is
    // one-copy regardless of where each invocation lands.
    for i in 1..=10u64 {
        let v: u64 = ws.run_wait_decode("C1", "add", &1u64).unwrap();
        assert_eq!(v, 1000 + i);
    }
}

#[test]
fn unknown_names_classes_and_entries_error_cleanly() {
    let cluster = fast_cluster(1, 1);
    cluster.register_class("rectangle", Rectangle).unwrap();
    let ws = cluster.workstation(0);

    assert!(matches!(
        ws.create_object("nonexistent-class", "X"),
        Err(CloudsError::NoSuchClass(_))
    ));
    assert!(ws.run_wait("NoSuchName", "area", &()).is_err());

    ws.create_object("rectangle", "R").unwrap();
    assert!(matches!(
        ws.run_wait("R", "perimeter", &()),
        Err(CloudsError::NoSuchEntryPoint(_))
    ));
}

#[test]
fn duplicate_user_name_rejected() {
    let cluster = fast_cluster(1, 1);
    cluster.register_class("rectangle", Rectangle).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("rectangle", "R").unwrap();
    assert!(ws.create_object("rectangle", "R").is_err());
}

#[test]
fn output_routes_to_origin_workstation_terminal() {
    let cluster = fast_cluster(2, 1);
    cluster.register_class("counter", Counter).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("counter", "C").unwrap();

    // Run announce on both compute servers; output must appear on the
    // workstation terminal of each thread regardless of execution site.
    let t1 = ws.spawn("C", "announce", clouds::encode_args(&()).unwrap());
    let id1 = t1.id();
    t1.join().unwrap();
    let t2 = ws.spawn("C", "announce", clouds::encode_args(&()).unwrap());
    let id2 = t2.id();
    t2.join().unwrap();
    assert_eq!(ws.output(id1), "counter is 1000\n");
    assert_eq!(ws.output(id2), "counter is 1000\n");
}

#[test]
fn nested_invocation_between_objects() {
    let cluster = fast_cluster(1, 1);
    cluster.register_class("counter", Counter).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("counter", "A").unwrap();
    ws.create_object("counter", "B").unwrap();

    // A.add_via(B, 5): the thread leaves A, enters B, and returns.
    let v: u64 = ws
        .run_wait_decode("A", "add_via", &("B".to_string(), 5u64))
        .unwrap();
    assert_eq!(v, 1005);
    let b: u64 = ws.run_wait_decode("B", "get", &()).unwrap();
    assert_eq!(b, 1005);
    // A itself is untouched.
    let a: u64 = ws.run_wait_decode("A", "get", &()).unwrap();
    assert_eq!(a, 1000);
}

#[test]
fn concurrent_threads_with_semaphore_mutual_exclusion() {
    struct SafeCounter;
    impl ObjectCode for SafeCounter {
        fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
            let sem = ctx.sem_create(1)?;
            ctx.persistent().write_value(64, &sem)?;
            ctx.persistent().write_u64(0, 0)
        }
        fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
            match entry {
                "incr" => {
                    let times: u64 = decode_args(args)?;
                    let sem: SysName = ctx.persistent().read_value(64)?;
                    for _ in 0..times {
                        // The paper's §2.2: in-object concurrency control
                        // is the programmer's job, via system semaphores.
                        assert!(ctx.sem_p(sem, 30_000)?);
                        let v = ctx.persistent().read_u64(0)?;
                        ctx.persistent().write_u64(0, v + 1)?;
                        ctx.sem_v(sem)?;
                    }
                    encode_result(&())
                }
                "get" => encode_result(&ctx.persistent().read_u64(0)?),
                other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
            }
        }
    }

    let cluster = fast_cluster(2, 1);
    cluster.register_class("safe-counter", SafeCounter).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("safe-counter", "S").unwrap();

    let threads: Vec<_> = (0..4)
        .map(|_| ws.spawn("S", "incr", clouds::encode_args(&25u64).unwrap()))
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let v: u64 = ws.run_wait_decode("S", "get", &()).unwrap();
    assert_eq!(v, 100);
}

#[test]
fn per_thread_memory_is_thread_private() {
    struct Stamps;
    impl ObjectCode for Stamps {
        fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
            match entry {
                "stamp" => {
                    let tag: String = decode_args(args)?;
                    // Per-thread memory survives across invocations by the
                    // same thread, but is invisible to other threads.
                    let seen = ctx
                        .per_thread_get("tag")
                        .map(|b| String::from_utf8_lossy(&b).to_string());
                    ctx.per_thread_set("tag", tag.clone().into_bytes());
                    encode_result(&seen)
                }
                other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
            }
        }
    }

    let cluster = fast_cluster(1, 1);
    cluster.register_class("stamps", Stamps).unwrap();
    let cs = cluster.compute(0);
    let obj = cs.create_object("stamps", Some("ST"), None).unwrap();

    // Thread 1: sees nothing, then its own value — within ONE thread we
    // must drive two invocations through the same ThreadState, which the
    // public API exposes via nested invocation; emulate with invoke()
    // twice under one synchronous thread each and confirm isolation
    // between those two separate threads instead.
    let first: Option<String> = clouds::decode_args(
        &cs.invoke(obj, "stamp", &clouds::encode_args(&"one".to_string()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(first, None);
    // A different thread does not see thread 1's tag.
    let second: Option<String> = clouds::decode_args(
        &cs.invoke(obj, "stamp", &clouds::encode_args(&"two".to_string()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(second, None);
}

#[test]
fn objects_survive_compute_server_crash() {
    let cluster = fast_cluster(2, 1);
    cluster.register_class("counter", Counter).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("counter", "C").unwrap();
    // Write through compute 0 explicitly.
    let sys = cluster.naming().lookup("C").unwrap();
    cluster
        .compute(0)
        .invoke(sys, "add", &clouds::encode_args(&7u64).unwrap(), None)
        .unwrap();

    // Crash compute 0: the object is persistent, compute 1 still reads
    // the committed state ("a Clouds object exists forever and survives
    // system crashes", §2.1).
    cluster.crash_compute(0);
    let v: u64 = clouds::decode_args(
        &cluster
            .compute(1)
            .invoke(sys, "get", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(v, 1007);
}

#[test]
fn explicit_remote_invocation_spans_machines() {
    struct Prober;
    impl ObjectCode for Prober {
        fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
            match entry {
                "where" => encode_result(&ctx.node_id().0),
                "probe_remote" => {
                    let (target_node, obj): (u32, SysName) = decode_args(args)?;
                    // RPC-style: run `where` on the given compute server.
                    let reply = ctx.invoke_remote(
                        clouds_simnet::NodeId(target_node),
                        obj,
                        "where",
                        &clouds::encode_args(&())?,
                    )?;
                    Ok(reply)
                }
                other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
            }
        }
    }

    let cluster = fast_cluster(2, 1);
    cluster.register_class("prober", Prober).unwrap();
    let cs0 = cluster.compute(0);
    let obj = cs0.create_object("prober", Some("P"), None).unwrap();

    let here: u32 = clouds::decode_args(
        &cs0.invoke(obj, "where", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(here, cs0.node_id().0);

    let there: u32 = clouds::decode_args(
        &cs0.invoke(
            obj,
            "probe_remote",
            &clouds::encode_args(&(cluster.compute(1).node_id().0, obj)).unwrap(),
            None,
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(there, cluster.compute(1).node_id().0);
}

#[test]
fn persistent_heap_backs_linked_data() {
    struct LinkedList;
    impl ObjectCode for LinkedList {
        // data[0] = head offset (0 = empty)
        fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
            match entry {
                "push" => {
                    let value: u64 = decode_args(args)?;
                    let node = ctx.persistent().heap_alloc(16)?;
                    let head = ctx.persistent().read_u64(0)?;
                    ctx.persistent().heap_write(node, &value.to_le_bytes())?;
                    ctx.persistent()
                        .heap_write(node + 8, &head.to_le_bytes())?;
                    ctx.persistent().write_u64(0, node)?;
                    encode_result(&())
                }
                "to_vec" => {
                    let mut out = Vec::new();
                    let mut cursor = ctx.persistent().read_u64(0)?;
                    while cursor != 0 {
                        let raw = ctx.persistent().heap_read(cursor, 16)?;
                        out.push(u64::from_le_bytes(raw[..8].try_into().unwrap()));
                        cursor = u64::from_le_bytes(raw[8..].try_into().unwrap());
                    }
                    encode_result(&out)
                }
                other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
            }
        }
    }

    let cluster = fast_cluster(2, 1);
    cluster.register_class("list", LinkedList).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("list", "L").unwrap();
    for v in [1u64, 2, 3] {
        ws.run_wait("L", "push", &v).unwrap();
    }
    // "The data can be kept in memory, in a form controlled by the
    // programs (e.g. lists, trees), even when not in use" — and read
    // back from any compute server.
    let vec: Vec<u64> = ws.run_wait_decode("L", "to_vec", &()).unwrap();
    assert_eq!(vec, vec![3, 2, 1]);
}

#[test]
fn terminal_input_reaches_thread() {
    struct Greeter;
    impl ObjectCode for Greeter {
        fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, _args: &[u8]) -> EntryResult {
            match entry {
                "greet" => {
                    let name = ctx
                        .read_line(5000)?
                        .unwrap_or_else(|| "nobody".to_string());
                    ctx.write_line(&format!("hello {name}"))?;
                    encode_result(&())
                }
                other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
            }
        }
    }

    let cluster = fast_cluster(1, 1);
    cluster.register_class("greeter", Greeter).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("greeter", "G").unwrap();
    let t = ws.spawn("G", "greet", clouds::encode_args(&()).unwrap());
    let id = t.id();
    ws.type_line(id, "clouds");
    t.join().unwrap();
    assert_eq!(ws.output(id), "hello clouds\n");
}
