//! Asynchronous invocation (§2.4) and load-aware thread placement
//! (§3.2 "may depend on such factors as scheduling policies and the
//! load at each compute server").

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_simnet::CostModel;

struct Fanout;

impl ObjectCode for Fanout {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "slow_add" => {
                // Each caller owns a distinct slot: slow_add is an s-thread,
                // so concurrent read-modify-writes of a *shared* word would
                // be a lost-update race (that spectrum is E5's subject, not
                // this test's).
                let (slot, delta): (u64, u64) = decode_args(args)?;
                std::thread::sleep(std::time::Duration::from_millis(20));
                let v = ctx.persistent().read_u64(slot * 8)? + delta;
                ctx.persistent().write_u64(slot * 8, v)?;
                encode_result(&v)
            }
            "total" => {
                let slots: u64 = decode_args(args)?;
                let mut sum = 0;
                for slot in 0..slots {
                    sum += ctx.persistent().read_u64(slot * 8)?;
                }
                encode_result(&sum)
            }
            "fan" => {
                // Start three asynchronous children on this server, then
                // continue immediately and finally collect their results.
                let (peer, n): (SysName, u64) = decode_args(args)?;
                let handles: Vec<_> = (0..n)
                    .map(|slot| {
                        ctx.invoke_async(
                            peer,
                            "slow_add",
                            &clouds::encode_args(&(slot, 1u64)).expect("args"),
                        )
                    })
                    .collect();
                // The caller keeps working while children run.
                let concurrent_marker = ctx.persistent().read_u64(0)?;
                let mut results = Vec::new();
                for h in handles {
                    let v: u64 = clouds::decode_args(&h.join()?)?;
                    results.push(v);
                }
                encode_result(&(concurrent_marker, results))
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

#[test]
fn asynchronous_invocations_run_concurrently() {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(0)
        .cost_model(CostModel::zero())
        .cpus(8)
        .build()
        .unwrap();
    cluster.register_class("fanout", Fanout).unwrap();
    let a = cluster.compute(0).create_object("fanout", Some("A"), None).unwrap();
    let b = cluster.compute(0).create_object("fanout", Some("B"), None).unwrap();

    let started = std::time::Instant::now();
    let (_, results): (u64, Vec<u64>) = decode_args(
        &cluster
            .compute(0)
            .invoke(a, "fan", &clouds::encode_args(&(b, 3u64)).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    let elapsed = started.elapsed();
    // Three 20 ms children; they must overlap (well under 3×20 ms plus
    // slack) and all take effect exactly once.
    assert_eq!(results.len(), 3);
    let final_b: u64 = decode_args(
        &cluster
            .compute(0)
            .invoke(b, "total", &clouds::encode_args(&3u64).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(final_b, 3);
    assert!(
        elapsed < std::time::Duration::from_millis(500),
        "children did not overlap: {elapsed:?}"
    );
}

#[test]
fn least_loaded_placement_avoids_busy_server() {
    let cluster = Cluster::builder()
        .compute_servers(2)
        .data_servers(1)
        .workstations(1)
        .cost_model(CostModel::zero())
        .cpus(1)
        .build()
        .unwrap();
    cluster.register_class("fanout", Fanout).unwrap();
    let ws = cluster.workstation(0);
    ws.create_object("fanout", "F").unwrap();
    let obj = cluster.naming().lookup("F").unwrap();

    // Saturate compute 0's single virtual CPU with queued IsiBas.
    let busy: Vec<_> = (0..6)
        .map(|_| {
            cluster.compute(0).start_thread(
                obj,
                "slow_add",
                clouds::encode_args(&(0u64, 0u64)).unwrap(),
                None,
            )
        })
        .collect();
    // Give the queue a moment to fill.
    std::thread::sleep(std::time::Duration::from_millis(10));

    let picked = ws.least_loaded_compute();
    assert_eq!(picked, cluster.compute(1).node_id());

    for h in busy {
        let _ = h.join();
    }

    // With a dead server, the live one is chosen regardless of load.
    cluster.crash_compute(1);
    let picked = ws.least_loaded_compute();
    assert_eq!(picked, cluster.compute(0).node_id());
}
