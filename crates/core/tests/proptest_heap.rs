//! Property-based tests for the persistent heap allocator: allocated
//! blocks never overlap, survive frees of other blocks, and freed space
//! is reused.

use clouds::prelude::*;
use clouds_simnet::CostModel;
use proptest::prelude::*;

struct HeapBox;

impl ObjectCode for HeapBox {
    fn heap_segment_len(&self) -> u64 {
        64 * clouds_ra::PAGE_SIZE as u64
    }

    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "alloc" => {
                let len: u64 = decode_args(args)?;
                encode_result(&ctx.persistent().heap_alloc(len)?)
            }
            "free" => {
                let (offset, len): (u64, u64) = decode_args(args)?;
                ctx.persistent().heap_free(offset, len)?;
                encode_result(&())
            }
            "write" => {
                let (offset, data): (u64, Vec<u8>) = decode_args(args)?;
                ctx.persistent().heap_write(offset, &data)?;
                encode_result(&())
            }
            "read" => {
                let (offset, len): (u64, u64) = decode_args(args)?;
                encode_result(&ctx.persistent().heap_read(offset, len as usize)?)
            }
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

struct Bed {
    cluster: Cluster,
    obj: SysName,
}

impl Bed {
    fn new() -> Bed {
        let cluster = Cluster::builder()
            .compute_servers(1)
            .data_servers(1)
            .workstations(0)
            .cost_model(CostModel::zero())
            .build()
            .unwrap();
        cluster.register_class("heapbox", HeapBox).unwrap();
        let obj = cluster
            .compute(0)
            .create_object("heapbox", None, None)
            .unwrap();
        Bed { cluster, obj }
    }

    fn call<T: serde::Serialize, R: serde::de::DeserializeOwned>(
        &self,
        entry: &str,
        args: &T,
    ) -> Result<R, CloudsError> {
        let bytes = self.cluster.compute(0).invoke(
            self.obj,
            entry,
            &clouds::encode_args(args)?,
            None,
        )?;
        clouds::decode_args(&bytes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random alloc/write/free interleavings: every live block holds
    /// exactly the bytes written to it (no overlap, no corruption), and
    /// blocks never overlap each other.
    #[test]
    fn heap_blocks_are_disjoint_and_stable(
        script in prop::collection::vec((1u64..700, any::<u8>(), any::<bool>()), 1..24)
    ) {
        let bed = Bed::new();
        // live: (offset, len, fill)
        let mut live: Vec<(u64, u64, u8)> = Vec::new();
        for (len, fill, do_free) in script {
            if do_free && !live.is_empty() {
                let (offset, len, _) = live.remove(fill as usize % live.len());
                let _: () = bed.call("free", &(offset, len)).unwrap();
                continue;
            }
            let offset: u64 = bed.call("alloc", &len).unwrap();
            // No overlap with any live block.
            for (o, l, _) in &live {
                prop_assert!(
                    offset + len <= *o || o + l <= offset,
                    "new block [{offset}, +{len}) overlaps [{o}, +{l})"
                );
            }
            let _: () = bed
                .call("write", &(offset, vec![fill; len as usize]))
                .unwrap();
            live.push((offset, len, fill));
            // Every live block still holds its fill byte.
            for (o, l, f) in &live {
                let data: Vec<u8> = bed.call("read", &(*o, *l)).unwrap();
                prop_assert!(data.iter().all(|b| b == f), "block at {o} corrupted");
            }
        }
    }

    /// Freeing everything allows the space to be reused: allocations
    /// after a full free cycle do not run the heap out.
    #[test]
    fn heap_space_is_reused(rounds in 2u32..6, len in 64u64..2048) {
        let bed = Bed::new();
        let mut first_round: Vec<u64> = Vec::new();
        for round in 0..rounds {
            let mut offsets = Vec::new();
            for _ in 0..8 {
                let offset: u64 = bed.call("alloc", &len).unwrap();
                offsets.push(offset);
            }
            if round == 0 {
                first_round = offsets.clone();
            } else {
                // Reuse: at least one block lands on a first-round slot.
                prop_assert!(
                    offsets.iter().any(|o| first_round.contains(o)),
                    "no reuse: {offsets:?} vs {first_round:?}"
                );
            }
            for &offset in &offsets {
                let _: () = bed.call("free", &(offset, len)).unwrap();
            }
        }
    }
}
