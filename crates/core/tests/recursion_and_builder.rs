//! Recursive invocations (§2.2 "object invocations can be nested or
//! recursive") and cluster-builder behaviour.

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_simnet::CostModel;

/// Recursion through the OS: factorial where every level is a full
/// object invocation.
struct Recursor;

impl ObjectCode for Recursor {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "factorial" => {
                let n: u64 = decode_args(args)?;
                if n <= 1 {
                    return encode_result(&1u64);
                }
                let below: u64 = decode_args(&ctx.invoke(
                    ctx.object(),
                    "factorial",
                    &clouds::encode_args(&(n - 1))?,
                )?)?;
                encode_result(&(n * below))
            }
            "forever" => {
                // Unbounded self-recursion: must be stopped by the kernel,
                // not by a host stack overflow.
                ctx.invoke(ctx.object(), "forever", &clouds::encode_args(&())?)
            }
            "depth" => encode_result(&ctx.visited().len()),
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn bed() -> Cluster {
    let cluster = Cluster::builder()
        .compute_servers(1)
        .data_servers(1)
        .workstations(0)
        .cost_model(CostModel::zero())
        .build()
        .unwrap();
    cluster.register_class("recursor", Recursor).unwrap();
    cluster
}

#[test]
fn recursive_invocation_works() {
    let cluster = bed();
    let obj = cluster.compute(0).create_object("recursor", None, None).unwrap();
    let v: u64 = decode_args(
        &cluster
            .compute(0)
            .invoke(obj, "factorial", &clouds::encode_args(&10u64).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(v, 3_628_800);
}

#[test]
fn runaway_recursion_is_faulted_not_crashed() {
    let cluster = bed();
    let obj = cluster.compute(0).create_object("recursor", None, None).unwrap();
    let err = cluster
        .compute(0)
        .invoke(obj, "forever", &clouds::encode_args(&()).unwrap(), None)
        .unwrap_err();
    assert!(matches!(err, CloudsError::ThreadFailed(_)), "{err}");
}

#[test]
fn visited_objects_are_tracked() {
    let cluster = bed();
    let obj = cluster.compute(0).create_object("recursor", None, None).unwrap();
    // Depth 5 recursion: the thread visited the object 5 times when the
    // innermost frame asks.
    let inner_visits: usize = decode_args(
        &cluster
            .compute(0)
            .invoke(obj, "factorial", &clouds::encode_args(&5u64).unwrap(), None)
            .unwrap(),
    )
    .map(|_: u64| 0usize)
    .unwrap_or(0);
    let _ = inner_visits;
    let depth: usize = decode_args(
        &cluster
            .compute(0)
            .invoke(obj, "depth", &clouds::encode_args(&()).unwrap(), None)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(depth, 1); // fresh thread: one visited object
}

#[test]
#[should_panic(expected = "at least one compute server")]
fn builder_rejects_zero_computes() {
    let _ = Cluster::builder().compute_servers(0).build();
}

#[test]
#[should_panic(expected = "at least one data server")]
fn builder_rejects_zero_data_servers() {
    let _ = Cluster::builder().data_servers(0).build();
}

#[test]
fn builder_shapes_cluster() {
    let cluster = Cluster::builder()
        .compute_servers(3)
        .data_servers(2)
        .workstations(2)
        .cost_model(CostModel::zero())
        .build()
        .unwrap();
    assert_eq!(cluster.computes().len(), 3);
    assert_eq!(cluster.data_servers().len(), 2);
    assert_eq!(cluster.workstations().len(), 2);
    // Only the first data server hosts the name server.
    assert!(cluster.data_server(0).naming().is_some());
    assert!(cluster.data_server(1).naming().is_none());
    // All node ids distinct.
    let mut ids: Vec<u32> = cluster
        .computes()
        .iter()
        .map(|c| c.node_id().0)
        .chain(cluster.data_servers().iter().map(|d| d.node_id().0))
        .chain(cluster.workstations().iter().map(|w| w.node_id().0))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 7);
}
