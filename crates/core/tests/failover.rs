//! End-to-end failover of replicated segment homes: heartbeats flow
//! between data servers, the first backup detects a crashed primary,
//! verifies, promotes itself, re-homes the segment in the naming
//! directory — and in-flight client traffic lands on the new primary
//! with the committed bytes intact.

use clouds::node::DataServer;
use clouds::FailoverConfig;
use clouds_dsm::DsmClientPartition;
use clouds_naming::NameClient;
use clouds_ra::{AddressSpace, PageCache, Partition, SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId, Vt};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn seg(n: u64) -> SysName {
    SysName::from_parts(9, n)
}

fn ratp_cfg() -> RatpConfig {
    RatpConfig {
        retry_interval: Duration::from_millis(5),
        max_retries: 60,
        ..RatpConfig::default()
    }
}

struct Bed {
    net: Network,
    datas: Vec<DataServer>,
    nodes: Vec<NodeId>,
    config: FailoverConfig,
}

/// Three data servers (`100` hosts naming) with failover monitors
/// beaconing each other.
fn bed() -> Bed {
    let net = Network::new(CostModel::zero());
    let nodes: Vec<NodeId> = (100..103).map(NodeId).collect();
    let datas: Vec<DataServer> = nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| DataServer::boot(&net, node, ratp_cfg(), i == 0))
        .collect();
    // Zero-cost network: frames arrive without delay, so the only
    // "jitter" is beacon/tick interleaving — half a beacon is plenty.
    let config = FailoverConfig::for_jitter(Vt::from_micros(2_500));
    for (i, ds) in datas.iter().enumerate() {
        let peers: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|&n| n != nodes[i])
            .collect();
        ds.start_failover(peers, nodes[0], config);
    }
    Bed {
        net,
        datas,
        nodes,
        config,
    }
}

struct Client {
    part: Arc<DsmClientPartition>,
}

impl Client {
    fn new(bed: &Bed, id: u32) -> Client {
        let ratp = RatpNode::spawn(bed.net.register(NodeId(id)).unwrap(), ratp_cfg());
        Client {
            part: DsmClientPartition::install(
                &ratp,
                Arc::new(PageCache::new(16)),
                bed.nodes.clone(),
            ),
        }
    }

    fn space(&self, seg: SysName, pages: u64) -> AddressSpace {
        let mut s = AddressSpace::new(
            Arc::clone(self.part.cache()),
            Arc::clone(&self.part) as Arc<dyn Partition>,
        );
        s.map(0, seg, 0, pages * PAGE_SIZE as u64, true).unwrap();
        s
    }
}

/// Detection and promotion are driven by real-time monitor ticks, so
/// these tests are timing sensitive: run in parallel, one bed's nine
/// monitor/beacon threads can starve another's detector past the
/// client's failover-retry budget. Each test holds this guard to run
/// alone (poison from an earlier panic is irrelevant — the guard
/// carries no data).
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poll `check` until it passes or `deadline` elapses.
fn wait_for(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn primary_crash_promotes_backup_and_re_homes() {
    let _serial = serial();
    let bed = bed();
    let s = seg(1);
    // Primary on 101 so the naming host (100) stays up through the crash.
    let members = [bed.nodes[1], bed.nodes[2], bed.nodes[0]];
    let writer = Client::new(&bed, 1);
    writer
        .part
        .create_replicated_segment(s, PAGE_SIZE as u64, &members)
        .unwrap();
    let directory = NameClient::new(writer.part.ratp(), bed.nodes[0]);
    directory
        .register_replicas(s, members[0], &members[1..])
        .unwrap();

    let ws = writer.space(s, 1);
    ws.write(0, b"survives").unwrap();
    ws.flush().unwrap(); // confirmed: on the primary and both backups

    bed.datas[1].crash(&bed.net);

    // A fresh client (no cached home) must read the committed bytes:
    // its home probes ride through detection + promotion and land on
    // the promoted backup (102).
    let reader = Client::new(&bed, 2);
    let rs = reader.space(s, 1);
    assert_eq!(rs.read(0, 8).unwrap(), b"survives");

    // The naming directory re-homed the segment at the bumped epoch.
    assert!(
        wait_for(Duration::from_secs(10), || {
            bed.datas[0]
                .naming()
                .unwrap()
                .replica_set(s)
                .is_some_and(|set| set.primary_node() == bed.nodes[2] && set.epoch == 2)
        }),
        "directory never re-homed: {:?}",
        bed.datas[0].naming().unwrap().replica_set(s)
    );

    // The promoting backup measured the availability gap: bounded by
    // the detector budget, plus one verification window (a preceding
    // verify call can delay the detection tick by its full wall time),
    // plus a few beacon quanta of scan granularity.
    let gap = bed.datas[2]
        .ratp()
        .obs()
        .registry()
        .histogram_summary("core.failover.gap");
    assert_eq!(gap.count, 1, "exactly one promotion: {gap:?}");
    let verify_window =
        Vt::from_nanos(ratp_cfg().retry_interval.as_nanos() as u64).mul(bed.config.verify_retries as u64);
    let bound = bed.config.detector().budget() + verify_window + bed.config.beacon_interval.mul(4);
    assert!(gap.max <= bound, "gap {} > bound {bound}", gap.max);

    // The restarted ex-primary resyncs from the directory into its
    // demoted role and catches up via mirror pushes on the next write.
    bed.datas[1].restart(&bed.net);
    let expected = (
        vec![bed.nodes[2], bed.nodes[0], bed.nodes[1]],
        2u64,
    );
    assert_eq!(bed.datas[1].dsm().replica_view(s), Some(expected.clone()));
    assert_eq!(bed.datas[2].dsm().replica_view(s), Some(expected));

    let applied_before = bed.datas[1].dsm().stats().mirror_applies;
    ws.write(0, b"rejoined").unwrap();
    ws.flush().unwrap();
    assert!(bed.datas[1].dsm().stats().mirror_applies > applied_before);
    // Coherence grants are as volatile as the directory that issued
    // them: `reader`'s pre-write copy may be stale (exactly as after a
    // crash+restart of an unreplicated home), so the one-copy check
    // uses a client with no cached state.
    let fresh = Client::new(&bed, 3);
    assert_eq!(fresh.space(s, 1).read(0, 8).unwrap(), b"rejoined");
}

/// A rebooted ex-primary that cannot reach the naming directory must
/// NOT resume serving on its stale pre-crash view (in which it is still
/// primary) — that is the split brain the recovery fence exists to
/// prevent. It stays fenced, and the failover monitor's per-tick retry
/// lifts the fence once the directory is reachable again.
#[test]
fn restart_with_unreachable_directory_stays_fenced_until_resync() {
    let _serial = serial();
    let bed = bed();
    let s = seg(3);
    let members = [bed.nodes[1], bed.nodes[2], bed.nodes[0]];
    let writer = Client::new(&bed, 1);
    writer
        .part
        .create_replicated_segment(s, PAGE_SIZE as u64, &members)
        .unwrap();
    let directory = NameClient::new(writer.part.ratp(), bed.nodes[0]);
    directory
        .register_replicas(s, members[0], &members[1..])
        .unwrap();
    let ws = writer.space(s, 1);
    ws.write(0, b"fenced!!").unwrap();
    ws.flush().unwrap();

    bed.datas[1].crash(&bed.net);
    assert!(
        wait_for(Duration::from_secs(10), || {
            bed.datas[0]
                .naming()
                .unwrap()
                .replica_set(s)
                .is_some_and(|set| set.primary_node() == bed.nodes[2] && set.epoch == 2)
        }),
        "directory never re-homed after the primary crash"
    );

    // Cut the naming host off, then restart the demoted ex-primary: its
    // resync cannot learn of the demotion, so serving must stay fenced.
    bed.net.crash(bed.nodes[0]);
    bed.datas[1].restart(&bed.net);
    assert!(
        bed.datas[1].dsm().is_recovering(),
        "resumed serving on a stale pre-crash view with the directory unreachable"
    );

    // Directory back: the monitor's per-tick retry finishes the resync,
    // adopting the demoted view before the fence lifts.
    bed.net.restart(bed.nodes[0]);
    assert!(
        wait_for(Duration::from_secs(10), || {
            !bed.datas[1].dsm().is_recovering()
        }),
        "fence never lifted after the directory became reachable"
    );
    assert_eq!(
        bed.datas[1].dsm().replica_view(s),
        Some((vec![bed.nodes[2], bed.nodes[0], bed.nodes[1]], 2))
    );
    // And the committed bytes are still served by the promoted backup.
    let fresh = Client::new(&bed, 4);
    assert_eq!(fresh.space(s, 1).read(0, 8).unwrap(), b"fenced!!");
}

#[test]
fn healthy_primary_is_never_deposed() {
    let _serial = serial();
    let bed = bed();
    let s = seg(2);
    let members = [bed.nodes[1], bed.nodes[2], bed.nodes[0]];
    let client = Client::new(&bed, 1);
    client
        .part
        .create_replicated_segment(s, PAGE_SIZE as u64, &members)
        .unwrap();
    let directory = NameClient::new(client.part.ratp(), bed.nodes[0]);
    directory
        .register_replicas(s, members[0], &members[1..])
        .unwrap();

    // Let many detection windows elapse with everyone alive.
    std::thread::sleep(Duration::from_millis(400));

    for ds in &bed.datas {
        assert_eq!(ds.dsm().stats().promotions, 0, "node {}", ds.node_id().0);
    }
    let set = bed.datas[0].naming().unwrap().replica_set(s).unwrap();
    assert_eq!((set.primary_node(), set.epoch), (members[0], 1));
    // Beacons actually flowed while nothing was promoted.
    let heard = bed.datas[2].ratp().last_heartbeat(bed.nodes[1]);
    assert!(heard.is_some(), "no beacon from the primary ever arrived");
}
