//! Active objects (§2.1 box "What can objects do?").
//!
//! "Objects can be active. An active object has one or more processes
//! associated with it that communicate with the external world and
//! handle housekeeping chores internal to the object. For example a
//! process may monitor the environment of the object and may inform
//! some other entity (another object) on the occurrence of an event.
//! This feature is particularly useful in objects that manage sensor
//! monitoring devices."
//!
//! An [`ActiveHandle`] attaches a daemon IsiBa to an object: the IsiBa
//! periodically invokes a designated entry point (the "housekeeping
//! chore") until stopped or until the object disappears. The daemon is
//! an ordinary Clouds thread, so the entry point has the full
//! [`crate::Invocation`] API — including invoking other objects to
//! report events.

use crate::error::CloudsError;
use crate::node::ComputeServer;
use crate::thread::ThreadId;
use clouds_ra::SysName;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to an object's daemon process.
pub struct ActiveHandle {
    stop: Arc<AtomicBool>,
    ticks: Arc<AtomicU64>,
    thread_id: ThreadId,
    joiner: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ActiveHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveHandle")
            .field("thread", &self.thread_id)
            .field("ticks", &self.ticks())
            .finish()
    }
}

impl ActiveHandle {
    /// The daemon's Clouds thread id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread_id
    }

    /// Completed housekeeping invocations so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }

    /// Stop the daemon and wait for it to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(joiner) = self.joiner.take() {
            let _ = joiner.join();
        }
    }
}

impl Drop for ActiveHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Don't join in drop (C-DTOR-BLOCK): the daemon notices the flag
        // within one period and exits on its own.
    }
}

impl ComputeServer {
    /// Make `object` active: spawn a daemon thread on this compute
    /// server that invokes `entry` (with empty arguments) every
    /// `period` until stopped.
    ///
    /// The daemon stops by itself if the entry point starts failing
    /// persistently (e.g. the object was destroyed).
    pub fn start_active_object(
        &self,
        object: SysName,
        entry: &str,
        period: Duration,
    ) -> ActiveHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let ticks = Arc::new(AtomicU64::new(0));
        let entry = entry.to_string();
        let server = self.clone();
        let stop2 = Arc::clone(&stop);
        let ticks2 = Arc::clone(&ticks);
        // The daemon gets its own Clouds thread identity from the
        // thread manager.
        let thread_id = self.inner().next_thread_id();

        let joiner = std::thread::Builder::new()
            .name(format!("active-{object}"))
            .spawn(move || {
                let args = crate::encode_args(&()).expect("unit encodes");
                let mut consecutive_failures = 0u32;
                while !stop2.load(Ordering::Acquire) {
                    match server.invoke(object, &entry, &args, None) {
                        Ok(_) => {
                            consecutive_failures = 0;
                            ticks2.fetch_add(1, Ordering::AcqRel);
                        }
                        Err(CloudsError::NoSuchObject(_)) => break,
                        Err(_) => {
                            consecutive_failures += 1;
                            if consecutive_failures >= 5 {
                                break;
                            }
                        }
                    }
                    std::thread::sleep(period);
                }
            })
            .expect("spawn active-object daemon");
        ActiveHandle {
            stop,
            ticks,
            thread_id,
            joiner: Some(joiner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use clouds_simnet::CostModel;

    struct Sensor;
    impl ObjectCode for Sensor {
        fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, _args: &[u8]) -> EntryResult {
            match entry {
                "sample" => {
                    let n = ctx.persistent().read_u64(0)? + 1;
                    ctx.persistent().write_u64(0, n)?;
                    // On every 3rd sample, inform another object (the
                    // "event notification" use case from the box).
                    if n % 3 == 0 {
                        if let Ok(sink) = ctx.bind("Sink") {
                            let _ = ctx.invoke(sink, "event", &crate::encode_args(&n)?);
                        }
                    }
                    encode_result(&n)
                }
                "count" => encode_result(&ctx.persistent().read_u64(0)?),
                "event" => {
                    let n: u64 = crate::decode_args(_args)?;
                    let events = ctx.persistent().read_u64(8)? + 1;
                    ctx.persistent().write_u64(8, events)?;
                    ctx.persistent().write_u64(16, n)?;
                    encode_result(&())
                }
                "events" => {
                    encode_result(&(ctx.persistent().read_u64(8)?, ctx.persistent().read_u64(16)?))
                }
                other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
            }
        }
    }

    #[test]
    fn active_object_samples_until_stopped() {
        let cluster = Cluster::builder()
            .compute_servers(1)
            .data_servers(1)
            .workstations(0)
            .cost_model(CostModel::zero())
            .build()
            .unwrap();
        cluster.register_class("sensor", Sensor).unwrap();
        let obj = cluster.compute(0).create_object("sensor", Some("S1"), None).unwrap();
        cluster.compute(0).create_object("sensor", Some("Sink"), None).unwrap();

        let handle =
            cluster
                .compute(0)
                .start_active_object(obj, "sample", Duration::from_millis(5));
        while handle.ticks() < 7 {
            std::thread::yield_now();
        }
        handle.stop();

        let count: u64 = crate::decode_args(
            &cluster
                .compute(0)
                .invoke(obj, "count", &crate::encode_args(&()).unwrap(), None)
                .unwrap(),
        )
        .unwrap();
        assert!(count >= 7);
        // Ticks stop advancing after stop().
        let sink = cluster.naming().lookup("Sink").unwrap();
        let (events, last): (u64, u64) = crate::decode_args(
            &cluster
                .compute(0)
                .invoke(sink, "events", &crate::encode_args(&()).unwrap(), None)
                .unwrap(),
        )
        .unwrap();
        assert!(events >= 2, "sink saw {events} events");
        assert!(last % 3 == 0);
    }

    #[test]
    fn daemon_exits_when_object_destroyed() {
        let cluster = Cluster::builder()
            .compute_servers(1)
            .data_servers(1)
            .workstations(0)
            .cost_model(CostModel::zero())
            .build()
            .unwrap();
        cluster.register_class("sensor", Sensor).unwrap();
        let obj = cluster.compute(0).create_object("sensor", None, None).unwrap();
        let handle =
            cluster
                .compute(0)
                .start_active_object(obj, "sample", Duration::from_millis(5));
        while handle.ticks() < 2 {
            std::thread::yield_now();
        }
        cluster.compute(0).destroy_object(obj).unwrap();
        // The daemon notices (NoSuchObject or persistent failure) and
        // exits; stop() then simply joins.
        std::thread::sleep(Duration::from_millis(120));
        let before = handle.ticks();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(handle.ticks(), before, "daemon kept running");
        handle.stop();
    }
}
