//! Clouds threads (§2.2).
//!
//! "The only form of user activity in the Clouds system is the user
//! thread. A thread is a logical path of execution that executes code in
//! objects, traversing objects as it executes. Thus unlike a process in
//! a conventional operating system, a Clouds thread is not bound to a
//! single address space."
//!
//! A [`ThreadId`] is global; when a thread's invocation hops to another
//! compute server (remote invocation, §3.2) the same id continues there,
//! executed by a fresh Clouds process (IsiBa + stack + virtual space) on
//! the target node — "a thread may span machine boundaries and is
//! implemented as a collection of Clouds processes" (§4.2).

use crate::consistency_hooks::CpSession;
use clouds_ra::SysName;
use clouds_simnet::NodeId;
use crossbeam::channel::Receiver;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Globally unique Clouds thread identifier: creating node in the high
/// half, per-node counter in the low half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u64);

impl ThreadId {
    /// Compose an id from its parts.
    pub fn new(node: NodeId, counter: u32) -> ThreadId {
        ThreadId(((node.0 as u64) << 32) | counter as u64)
    }

    /// The node that created the thread.
    pub fn origin_node(self) -> NodeId {
        NodeId((self.0 >> 32) as u32)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}.{}", self.0 >> 32, self.0 & 0xFFFF_FFFF)
    }
}

/// Mutable per-thread state carried through (nested) invocations on one
/// node. The thread manager's bookkeeping: "information associated with
/// a thread such as the objects it may have visited, the user
/// workstation from which it was created" (§4.2).
pub struct ThreadState {
    /// The thread's global id.
    pub id: ThreadId,
    /// Workstation whose terminal this thread's I/O is routed to.
    pub origin_workstation: Option<NodeId>,
    /// Per-thread memory (§5.1): "global to the routines in the object
    /// but specific to a particular thread and lasts until the thread
    /// terminates". Keyed by (object, name).
    pub per_thread: HashMap<(SysName, String), Vec<u8>>,
    /// Consistency session when this is a cp-thread; `None` for
    /// s-threads.
    pub session: Option<Arc<CpSession>>,
    /// Objects visited, in invocation order (bookkeeping/diagnostics).
    pub visited: Vec<SysName>,
    /// Current invocation nesting depth.
    pub depth: u32,
    /// Trace roots this thread has started (top-level invocations with
    /// no ambient causal context). Together with the deterministic
    /// [`ThreadId`] this seeds the derived trace id, keeping same-seed
    /// traces byte-identical.
    pub trace_roots: u64,
}

impl fmt::Debug for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadState")
            .field("id", &self.id)
            .field("depth", &self.depth)
            .field("visited", &self.visited.len())
            .finish()
    }
}

impl ThreadState {
    /// Fresh state for a newly created thread.
    pub fn new(id: ThreadId, origin_workstation: Option<NodeId>) -> ThreadState {
        ThreadState {
            id,
            origin_workstation,
            per_thread: HashMap::new(),
            session: None,
            visited: Vec::new(),
            depth: 0,
            trace_roots: 0,
        }
    }

    /// State with an attached consistency session (cp-thread).
    pub fn with_session(mut self, session: Arc<CpSession>) -> ThreadState {
        self.session = Some(session);
        self
    }
}

/// Handle to an asynchronously started Clouds thread.
pub struct ThreadHandle {
    pub(crate) id: ThreadId,
    pub(crate) rx: Receiver<Result<Vec<u8>, crate::error::CloudsError>>,
}

impl fmt::Debug for ThreadHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadHandle").field("id", &self.id).finish()
    }
}

impl ThreadHandle {
    /// The thread's id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Wait for the thread's top-level invocation to finish and take its
    /// encoded result.
    ///
    /// # Errors
    ///
    /// The invocation's error, or [`crate::CloudsError::ThreadFailed`]
    /// if the executing thread disappeared.
    pub fn join(self) -> Result<Vec<u8>, crate::error::CloudsError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(crate::error::CloudsError::ThreadFailed(
                "executor disappeared".to_string(),
            )))
    }

    /// Like [`ThreadHandle::join`], decoding the result.
    ///
    /// # Errors
    ///
    /// As for [`ThreadHandle::join`], plus decode failures.
    pub fn join_decode<R: serde::de::DeserializeOwned>(
        self,
    ) -> Result<R, crate::error::CloudsError> {
        let bytes = self.join()?;
        crate::decode_args(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_parts() {
        let id = ThreadId::new(NodeId(3), 17);
        assert_eq!(id.origin_node(), NodeId(3));
        assert_eq!(id.to_string(), "thread3.17");
    }

    #[test]
    fn thread_state_defaults() {
        let st = ThreadState::new(ThreadId::new(NodeId(1), 1), Some(NodeId(200)));
        assert_eq!(st.depth, 0);
        assert!(st.session.is_none());
        assert!(st.visited.is_empty());
        assert_eq!(st.origin_workstation, Some(NodeId(200)));
    }
}
