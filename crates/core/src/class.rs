//! Classes: the templates Clouds objects are instantiated from (§2.4).
//!
//! "To the programmer, there are two kinds of Clouds objects: classes
//! and instances. A class is a template that is used to generate
//! instances … a class is a compiled program module."
//!
//! In the original system, classes were produced by the CC++ or
//! Distributed Eiffel compilers and loaded onto a data server. In this
//! reproduction the "compiled program module" is a Rust value
//! implementing [`ObjectCode`], registered under the class name in every
//! node's [`ClassRegistry`] at cluster boot (the instance *state* still
//! lives entirely in data-server segments — only code is distributed
//! this way, mirroring how every Sun-3 ran the same kernel image).

use crate::error::CloudsError;
use crate::invocation::Invocation;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Result of an entry-point execution: codec-encoded result bytes.
pub type EntryResult = Result<Vec<u8>, CloudsError>;

/// The static consistency label of an operation (§5.2.1).
///
/// "Each operation has a static label that declares the consistency
/// needs of the operation. The labels are S (for standard), LCP (for
/// local consistency preserving) and GCP (for global consistency
/// preserving)."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OperationLabel {
    /// Standard: no system locking or recovery; free interleaving.
    #[default]
    S,
    /// Local consistency: automatic locking + recovery, committed
    /// per data server without cross-server atomicity (lightweight).
    Lcp,
    /// Global consistency: automatic locking + recovery with a full
    /// two-phase commit across all involved data servers (heavyweight).
    Gcp,
}

/// The code of a Clouds class.
///
/// `dispatch` is the object's set of entry points; `construct` runs once
/// when an instance is created (the paper's constructor entry, e.g.
/// `entry rectangle`). Implementations must be stateless — all instance
/// state lives in the object's persistent segments, reached through the
/// [`Invocation`] context. See the crate-level example.
pub trait ObjectCode: Send + Sync + 'static {
    /// Initialize a fresh instance's persistent state.
    ///
    /// # Errors
    ///
    /// Any [`CloudsError`]; creation fails and the object is not
    /// registered.
    fn construct(&self, ctx: &mut Invocation<'_>) -> Result<(), CloudsError> {
        let _ = ctx;
        Ok(())
    }

    /// Execute the entry point named `entry` with encoded `args`.
    ///
    /// # Errors
    ///
    /// [`CloudsError::NoSuchEntryPoint`] for unknown names; anything
    /// else the entry point raises.
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult;

    /// The consistency label of an entry point (default: `S`).
    fn label(&self, entry: &str) -> OperationLabel {
        let _ = entry;
        OperationLabel::S
    }

    /// Size in bytes of the instance's persistent data segment.
    fn data_segment_len(&self) -> u64 {
        clouds_ra::PAGE_SIZE as u64
    }

    /// Size in bytes of the instance's persistent heap segment.
    fn heap_segment_len(&self) -> u64 {
        4 * clouds_ra::PAGE_SIZE as u64
    }
}

/// A registered class: name plus code.
#[derive(Clone)]
pub struct Class {
    name: String,
    code: Arc<dyn ObjectCode>,
}

impl fmt::Debug for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Class").field("name", &self.name).finish()
    }
}

impl Class {
    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class code.
    pub fn code(&self) -> &Arc<dyn ObjectCode> {
        &self.code
    }
}

/// Per-node table of loaded classes.
///
/// Cheap to clone; clones share the same table.
#[derive(Clone, Default)]
pub struct ClassRegistry {
    classes: Arc<RwLock<HashMap<String, Class>>>,
}

impl fmt::Debug for ClassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassRegistry")
            .field("classes", &self.classes.read().len())
            .finish()
    }
}

impl ClassRegistry {
    /// An empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry::default()
    }

    /// Load (or replace) a class.
    pub fn register<C: ObjectCode>(&self, name: &str, code: C) {
        self.register_arc(name, Arc::new(code));
    }

    /// Load a class from an existing `Arc` (shared across nodes).
    pub fn register_arc(&self, name: &str, code: Arc<dyn ObjectCode>) {
        self.classes.write().insert(
            name.to_string(),
            Class {
                name: name.to_string(),
                code,
            },
        );
    }

    /// Look up a class.
    ///
    /// # Errors
    ///
    /// [`CloudsError::NoSuchClass`] if absent.
    pub fn get(&self, name: &str) -> Result<Class, CloudsError> {
        self.classes
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| CloudsError::NoSuchClass(name.to_string()))
    }

    /// Names of all loaded classes.
    pub fn names(&self) -> Vec<String> {
        // lint:allow(hash-iter) — sorted before returning.
        let mut names: Vec<String> = self.classes.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of loaded classes.
    pub fn len(&self) -> usize {
        self.classes.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl ObjectCode for Nop {
        fn dispatch(&self, entry: &str, _ctx: &mut Invocation<'_>, _args: &[u8]) -> EntryResult {
            Err(CloudsError::NoSuchEntryPoint(entry.to_string()))
        }
    }

    #[test]
    fn register_and_get() {
        let reg = ClassRegistry::new();
        assert!(reg.is_empty());
        reg.register("nop", Nop);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("nop").unwrap().name(), "nop");
        assert!(matches!(
            reg.get("ghost"),
            Err(CloudsError::NoSuchClass(_))
        ));
    }

    #[test]
    fn clones_share_table() {
        let reg = ClassRegistry::new();
        let alias = reg.clone();
        reg.register("nop", Nop);
        assert!(alias.get("nop").is_ok());
    }

    #[test]
    fn names_are_sorted() {
        let reg = ClassRegistry::new();
        reg.register("zeta", Nop);
        reg.register("alpha", Nop);
        assert_eq!(reg.names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }

    #[test]
    fn default_segment_sizes() {
        assert_eq!(Nop.data_segment_len(), clouds_ra::PAGE_SIZE as u64);
        assert_eq!(Nop.heap_segment_len(), 4 * clouds_ra::PAGE_SIZE as u64);
    }
}
