//! Object metadata: the on-store representation of a Clouds object.
//!
//! An object is "a persistent virtual address space" (§2.1) made of
//! segments. Its *header* — what §3.2 calls "a header for the object"
//! that a compute server "retrieves from the appropriate data server" —
//! is a one-page meta segment whose sysname **is** the object's sysname.
//! The header names the class and the data/heap segments, so activating
//! an object anywhere requires only its sysname plus the DSM.

use crate::error::CloudsError;
use clouds_ra::{Partition, SysName, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Magic marking a valid object header page.
pub const OBJECT_MAGIC: u64 = 0xC1_0D5_0B1;

/// The persistent header of a Clouds object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Identifies a valid header ([`OBJECT_MAGIC`]).
    pub magic: u64,
    /// The object's own sysname (= the header segment's sysname).
    pub sysname: SysName,
    /// Name of the class this object instantiates.
    pub class_name: String,
    /// Segment holding the persistent instance data.
    pub data_seg: SysName,
    /// Length of the data segment in bytes.
    pub data_len: u64,
    /// Segment holding the persistent heap.
    pub heap_seg: SysName,
    /// Length of the heap segment in bytes.
    pub heap_len: u64,
}

impl ObjectMeta {
    /// Serialize the header into a full page image.
    ///
    /// # Errors
    ///
    /// [`CloudsError::BadArguments`] if the meta does not fit in a page
    /// (a pathological class name).
    pub fn to_page(&self) -> Result<Vec<u8>, CloudsError> {
        let bytes = clouds_codec::to_bytes(self)?;
        if bytes.len() > PAGE_SIZE {
            return Err(CloudsError::BadArguments(
                "object header exceeds one page".to_string(),
            ));
        }
        let mut page = vec![0u8; PAGE_SIZE];
        page[..bytes.len()].copy_from_slice(&bytes);
        Ok(page)
    }

    /// Parse a header from its page image.
    ///
    /// # Errors
    ///
    /// [`CloudsError::NoSuchObject`] when the page is not a valid header
    /// (wrong magic, corrupt encoding).
    pub fn from_page(sysname: SysName, page: &[u8]) -> Result<ObjectMeta, CloudsError> {
        // The codec rejects trailing bytes, so decode from a prefix scan:
        // the header is self-delimiting because every field is
        // length-prefixed; decode with a forgiving reader.
        let mut de = clouds_codec::Deserializer::new(page);
        let meta: ObjectMeta = serde::Deserialize::deserialize(&mut de)
            .map_err(|_| CloudsError::NoSuchObject(sysname))?;
        if meta.magic != OBJECT_MAGIC || meta.sysname != sysname {
            return Err(CloudsError::NoSuchObject(sysname));
        }
        Ok(meta)
    }

    /// Read and parse an object header through a partition.
    ///
    /// # Errors
    ///
    /// [`CloudsError::NoSuchObject`] for missing/invalid headers,
    /// [`CloudsError::Ra`] for storage failures.
    pub fn load(partition: &dyn Partition, sysname: SysName) -> Result<ObjectMeta, CloudsError> {
        let fetch = partition
            .fetch_page_transient(sysname, 0)
            .map_err(|e| match e {
                clouds_ra::RaError::SegmentNotFound(_) => CloudsError::NoSuchObject(sysname),
                other => CloudsError::Ra(other),
            })?;
        ObjectMeta::from_page(sysname, &fetch.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ObjectMeta {
        ObjectMeta {
            magic: OBJECT_MAGIC,
            sysname: SysName::from_parts(1, 1),
            class_name: "rectangle".to_string(),
            data_seg: SysName::from_parts(1, 2),
            data_len: 8192,
            heap_seg: SysName::from_parts(1, 3),
            heap_len: 16384,
        }
    }

    #[test]
    fn page_roundtrip() {
        let m = meta();
        let page = m.to_page().unwrap();
        assert_eq!(page.len(), PAGE_SIZE);
        let back = ObjectMeta::from_page(m.sysname, &page).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn bad_magic_rejected() {
        let m = meta();
        let mut page = m.to_page().unwrap();
        page[0] ^= 0xFF;
        assert!(matches!(
            ObjectMeta::from_page(m.sysname, &page),
            Err(CloudsError::NoSuchObject(_))
        ));
    }

    #[test]
    fn sysname_mismatch_rejected() {
        let m = meta();
        let page = m.to_page().unwrap();
        assert!(matches!(
            ObjectMeta::from_page(SysName::from_parts(9, 9), &page),
            Err(CloudsError::NoSuchObject(_))
        ));
    }

    #[test]
    fn zero_page_is_not_an_object() {
        let page = vec![0u8; PAGE_SIZE];
        assert!(ObjectMeta::from_page(SysName::from_parts(1, 1), &page).is_err());
    }
}
