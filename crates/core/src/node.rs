//! The three machine roles of the Clouds environment (§3, Figure 3):
//! compute servers, data servers, and user workstations.
//!
//! * A [`ComputeServer`] is "a machine that is available for use as a
//!   computational engine": diskless, reaching all storage through the
//!   DSM client partition, running the object manager and thread
//!   manager, and exposing an invocation service so threads can span
//!   machines.
//! * A [`DataServer`] is "a machine whose purpose is to function as a
//!   repository for long-lived (i.e., persistent) data": the DSM server
//!   with its canonical segment store, the lock manager and the
//!   distributed semaphore service (and, on the first data server, the
//!   name server).
//! * A [`Workstation`] "provides the programming environment": it
//!   creates objects and threads on compute servers, runs the user I/O
//!   manager, and owns the terminals threads print to.

use crate::class::ClassRegistry;
use crate::consistency_hooks::CpSession;
use crate::error::CloudsError;
use crate::failover::{self, FailoverConfig};
use crate::invocation::Invocation;
use crate::io::{IoReply, IoRequest, UserIoManager, USER_IO_PORT};
use crate::object_manager::ObjectManager;
use crate::thread::{ThreadHandle, ThreadId, ThreadState};
use clouds_dsm::{ports, DsmClientPartition, DsmServer, LockService, SemaphoreService};
use clouds_naming::{NameClient, NameServer};
use clouds_obs::{MetricsRegistry, NodeObs, TraceSink};
use clouds_ra::{PageCache, RaKernel, SysName};
use clouds_ratp::{RatpConfig, RatpNode, Request};
use clouds_simnet::{Network, NodeId};
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Wire form of an invocation target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireTarget {
    /// A sysname.
    Sysname(SysName),
    /// A user name, resolved by the executing compute server.
    Name(String),
}

/// Wire form of [`CloudsError`] for cross-node invocation results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireError {
    /// Unknown object.
    NoSuchObject(SysName),
    /// Unknown class.
    NoSuchClass(String),
    /// Unknown entry point.
    NoSuchEntryPoint(String),
    /// Application-raised error.
    Application(String),
    /// Consistency abort.
    Consistency(String),
    /// Anything else, as text.
    Other(String),
}

impl From<CloudsError> for WireError {
    fn from(e: CloudsError) -> WireError {
        match e {
            CloudsError::NoSuchObject(s) => WireError::NoSuchObject(s),
            CloudsError::NoSuchClass(c) => WireError::NoSuchClass(c),
            CloudsError::NoSuchEntryPoint(e) => WireError::NoSuchEntryPoint(e),
            CloudsError::Application(m) => WireError::Application(m),
            CloudsError::ConsistencyAbort(m) => WireError::Consistency(m),
            other => WireError::Other(other.to_string()),
        }
    }
}

impl From<WireError> for CloudsError {
    fn from(e: WireError) -> CloudsError {
        match e {
            WireError::NoSuchObject(s) => CloudsError::NoSuchObject(s),
            WireError::NoSuchClass(c) => CloudsError::NoSuchClass(c),
            WireError::NoSuchEntryPoint(e) => CloudsError::NoSuchEntryPoint(e),
            WireError::Application(m) => CloudsError::Application(m),
            WireError::Consistency(m) => CloudsError::ConsistencyAbort(m),
            WireError::Other(m) => CloudsError::Transport(m),
        }
    }
}

/// Requests accepted by a compute server's invocation service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ComputeRequest {
    /// Run one (possibly continuing) thread invocation to completion.
    Invoke {
        /// Existing thread id to continue, or `None` to create one.
        thread: Option<u64>,
        /// Originating workstation (raw node id) for terminal I/O.
        origin_ws: Option<u32>,
        /// What to invoke.
        target: WireTarget,
        /// Entry point name.
        entry: String,
        /// Encoded arguments.
        args: Vec<u8>,
    },
    /// Create an object of a class.
    CreateObject {
        /// Class name.
        class: String,
        /// Explicit data-server placement (raw node id).
        placement: Option<u32>,
    },
    /// Destroy an object.
    DestroyObject {
        /// Victim object.
        sysname: SysName,
    },
    /// Query scheduler load (for placement policies).
    Load,
}

/// Replies from a compute server's invocation service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ComputeReply {
    /// Invocation result.
    Result(Result<Vec<u8>, WireError>),
    /// Created object sysname.
    Created(Result<SysName, WireError>),
    /// Generic ack.
    Ok(Result<(), WireError>),
    /// Load report.
    Load(u64),
}

/// Shared internals of a compute server (used by [`Invocation`]).
pub(crate) struct ComputeInner {
    pub node: NodeId,
    pub kernel: Arc<RaKernel>,
    pub ratp: Arc<RatpNode>,
    pub dsm: Arc<DsmClientPartition>,
    pub object_manager: ObjectManager,
    pub naming: NameClient,
    /// Data server hosting the semaphore service.
    pub sync_server: NodeId,
    pub thread_counter: AtomicU32,
    /// Console output of headless threads (no workstation attached).
    pub console: Mutex<String>,
    /// Weak self-reference so invocations can hand `Arc<ComputeInner>`
    /// to nested contexts; set once at boot.
    pub(crate) self_ref: Mutex<Option<std::sync::Weak<ComputeInner>>>,
}

/// Deepest allowed invocation nesting per thread segment. Invocations
/// "can be nested or recursive" (§2.2), but unbounded recursion would
/// exhaust the (host) stack; a real kernel would fault the thread.
pub const MAX_INVOCATION_DEPTH: u32 = 64;

impl ComputeInner {
    /// Execute a (possibly nested) invocation on this node.
    pub(crate) fn invoke_local(
        &self,
        thread: &mut ThreadState,
        target: SysName,
        entry: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, CloudsError> {
        if thread.depth >= MAX_INVOCATION_DEPTH {
            return Err(CloudsError::ThreadFailed(format!(
                "invocation depth limit ({MAX_INVOCATION_DEPTH}) exceeded by {}",
                thread.id
            )));
        }
        let self_arc = self.self_arc();
        let obs = self.ratp.obs();
        let detail = format!("obj={target} entry={entry} depth={}", thread.depth);
        // Invocation entry is where causal traces begin. A top-level
        // invocation (no ambient context — a fresh thread, or a caller
        // outside the traced stack) roots a new trace whose id is
        // derived from the deterministic thread id and the thread's
        // root counter; nested and remotely continued invocations
        // attach to the ambient context instead (for the remote path
        // the RaTP handler installed the caller's wire context).
        let mut span = if clouds_obs::current_ctx().is_some() {
            obs.traced_span("invoke", "invoke", &detail)
        } else {
            thread.trace_roots += 1;
            let trace_id = clouds_obs::derive_trace_id(thread.id.0, thread.trace_roots);
            obs.root_span(trace_id, "invoke", "invoke", &detail)
        }
        .with_histogram(obs.histogram("invoke.call"));
        span.set_args(detail);
        let activation = self.object_manager.activate(target)?;
        let cost = self.kernel.cost().clone();
        // Entering the object: context switch + stack remap (§4.3).
        self.kernel
            .clock()
            .charge(cost.context_switch + cost.invocation_setup);
        let memory = self
            .object_manager
            .build_memory(&activation, thread.session.clone())?;
        thread.visited.push(target);
        thread.depth += 1;
        let mut ctx = Invocation {
            object: target,
            entry: entry.to_string(),
            memory,
            thread,
            services: self_arc,
            per_invocation: std::collections::HashMap::new(),
        };
        let result = activation.class.code().dispatch(entry, &mut ctx, args);
        ctx.thread.depth -= 1;
        // Leaving the object.
        self.kernel
            .clock()
            .charge(cost.context_switch + cost.invocation_setup);
        result
    }

    /// Run an object's constructor.
    pub(crate) fn construct_object(
        &self,
        meta: &crate::object::ObjectMeta,
        class: &crate::class::Class,
    ) -> Result<(), CloudsError> {
        let self_arc = self.self_arc();
        let id = self.next_thread_id();
        let mut thread = ThreadState::new(id, None);
        let activation = crate::object_manager::Activation {
            meta: meta.clone(),
            class: class.clone(),
        };
        let memory = self.object_manager.build_memory(&activation, None)?;
        let mut ctx = Invocation {
            object: meta.sysname,
            entry: "<constructor>".to_string(),
            memory,
            thread: &mut thread,
            services: self_arc,
            per_invocation: std::collections::HashMap::new(),
        };
        class.code().construct(&mut ctx)
    }

    pub(crate) fn next_thread_id(&self) -> ThreadId {
        ThreadId::new(self.node, self.thread_counter.fetch_add(1, Ordering::Relaxed))
    }

    /// Create an object, optionally registering a user name.
    pub(crate) fn create_object(
        &self,
        class: &str,
        user_name: Option<&str>,
        placement: Option<NodeId>,
    ) -> Result<SysName, CloudsError> {
        let meta = self
            .object_manager
            .create_object(class, placement, |meta, class| {
                self.construct_object(meta, class)
            })?;
        if let Some(name) = user_name {
            self.naming.register(name, meta.sysname)?;
        }
        Ok(meta.sysname)
    }

    /// Ship an invocation to another compute server and wait for its
    /// result.
    pub(crate) fn invoke_remote(
        &self,
        thread: ThreadId,
        origin_ws: Option<NodeId>,
        node: NodeId,
        target: SysName,
        entry: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, CloudsError> {
        let req = ComputeRequest::Invoke {
            thread: Some(thread.0),
            origin_ws: origin_ws.map(|n| n.0),
            target: WireTarget::Sysname(target),
            entry: entry.to_string(),
            args: args.to_vec(),
        };
        let reply = self
            .ratp
            .call(node, ports::INVOCATION, encode(&req))
            .map_err(|e| CloudsError::Transport(e.to_string()))?;
        match decode::<ComputeReply>(&reply)? {
            ComputeReply::Result(Ok(bytes)) => Ok(bytes),
            ComputeReply::Result(Err(e)) => Err(e.into()),
            other => Err(CloudsError::Transport(format!(
                "unexpected compute reply {other:?}"
            ))),
        }
    }

    pub(crate) fn io_write(
        &self,
        origin: Option<NodeId>,
        thread: ThreadId,
        text: &str,
    ) -> Result<(), CloudsError> {
        match origin {
            None => {
                self.console.lock().push_str(text);
                Ok(())
            }
            Some(ws) => {
                let req = IoRequest::Write {
                    thread: thread.0,
                    text: text.to_string(),
                };
                let reply = self
                    .ratp
                    .call(ws, USER_IO_PORT, encode(&req))
                    .map_err(|e| CloudsError::Transport(e.to_string()))?;
                match decode::<IoReply>(&reply)? {
                    IoReply::Ok => Ok(()),
                    other => Err(CloudsError::Transport(format!(
                        "unexpected io reply {other:?}"
                    ))),
                }
            }
        }
    }

    pub(crate) fn io_read(
        &self,
        origin: Option<NodeId>,
        thread: ThreadId,
        wait_ms: u64,
    ) -> Result<Option<String>, CloudsError> {
        match origin {
            None => Ok(None),
            Some(ws) => {
                let req = IoRequest::ReadLine {
                    thread: thread.0,
                    wait_ms,
                };
                let reply = self
                    .ratp
                    .call(ws, USER_IO_PORT, encode(&req))
                    .map_err(|e| CloudsError::Transport(e.to_string()))?;
                match decode::<IoReply>(&reply)? {
                    IoReply::Line(l) => Ok(Some(l)),
                    IoReply::NoInput => Ok(None),
                    other => Err(CloudsError::Transport(format!(
                        "unexpected io reply {other:?}"
                    ))),
                }
            }
        }
    }

    pub(crate) fn sem_create(&self, count: u32) -> Result<SysName, CloudsError> {
        use clouds_dsm::{SemReply, SemRequest};
        let id = self.kernel.new_sysname();
        let reply = self
            .ratp
            .call(
                self.sync_server,
                ports::SEMAPHORES,
                encode(&SemRequest::Create { id, count }),
            )
            .map_err(|e| CloudsError::Transport(e.to_string()))?;
        match decode::<SemReply>(&reply)? {
            SemReply::Ok => Ok(id),
            other => Err(CloudsError::Transport(format!("semaphore create: {other:?}"))),
        }
    }

    pub(crate) fn sem_p(&self, sem: SysName, wait_ms: u64) -> Result<bool, CloudsError> {
        use clouds_dsm::{SemReply, SemRequest};
        let reply = self
            .ratp
            .call(
                self.sync_server,
                ports::SEMAPHORES,
                encode(&SemRequest::P { id: sem, wait_ms }),
            )
            .map_err(|e| CloudsError::Transport(e.to_string()))?;
        match decode::<SemReply>(&reply)? {
            SemReply::Ok => Ok(true),
            SemReply::Timeout => Ok(false),
            other => Err(CloudsError::Transport(format!("semaphore p: {other:?}"))),
        }
    }

    pub(crate) fn sem_v(&self, sem: SysName) -> Result<(), CloudsError> {
        use clouds_dsm::{SemReply, SemRequest};
        let reply = self
            .ratp
            .call(
                self.sync_server,
                ports::SEMAPHORES,
                encode(&SemRequest::V { id: sem }),
            )
            .map_err(|e| CloudsError::Transport(e.to_string()))?;
        match decode::<SemReply>(&reply)? {
            SemReply::Ok => Ok(()),
            other => Err(CloudsError::Transport(format!("semaphore v: {other:?}"))),
        }
    }

    /// Start a new Clouds thread (fresh id) running on this node's
    /// scheduler; used by asynchronous invocation.
    pub(crate) fn start_thread_async(
        &self,
        target: SysName,
        entry: &str,
        args: Vec<u8>,
        origin_workstation: Option<NodeId>,
    ) -> ThreadHandle {
        let id = self.next_thread_id();
        let (tx, rx) = bounded(1);
        let inner = self.self_arc();
        let entry = entry.to_string();
        self.kernel.scheduler().spawn(
            clouds_ra::sched::StackKind::User,
            move |ictx| {
                let result = ictx.blocking(|| {
                    let mut thread = ThreadState::new(id, origin_workstation);
                    let r = inner.invoke_local(&mut thread, target, &entry, &args);
                    let _ = inner
                        .kernel
                        .page_cache()
                        .flush(&**inner.object_manager.partition());
                    r
                });
                let _ = tx.send(result);
            },
        );
        ThreadHandle { id, rx }
    }

    /// The `Arc` this inner lives in (set once at construction).
    fn self_arc(&self) -> Arc<ComputeInner> {
        self.self_ref
            .lock()
            .as_ref()
            .and_then(|w| w.upgrade())
            .expect("compute inner self-reference set at construction")
    }
}

/// Build a node's observability handle: joined to the cluster-shared
/// trace sink when one is given, otherwise standalone.
fn make_obs(
    net: &Network,
    node: NodeId,
    sink: Option<&Arc<TraceSink>>,
) -> Arc<NodeObs> {
    let clock = net.clock(node).expect("node registered");
    match sink {
        Some(sink) => NodeObs::new(
            node.0 as u64,
            clock,
            Arc::new(MetricsRegistry::new()),
            Arc::clone(sink),
        ),
        None => NodeObs::solo(node.0 as u64, clock),
    }
}

fn encode<T: Serialize>(value: &T) -> bytes::Bytes {
    bytes::Bytes::from(clouds_codec::to_bytes(value).expect("protocol types encode"))
}

fn decode<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, CloudsError> {
    clouds_codec::from_bytes(bytes)
        .map_err(|e| CloudsError::Transport(format!("malformed message: {e}")))
}

/// A Clouds compute server.
#[derive(Clone)]
pub struct ComputeServer {
    inner: Arc<ComputeInner>,
}

impl fmt::Debug for ComputeServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComputeServer")
            .field("node", &self.inner.node)
            .finish()
    }
}

impl ComputeServer {
    /// Boot a compute server on `node`: registers it on the network,
    /// spawns RaTP, the DSM client partition, the Ra kernel, the object
    /// manager and the invocation service.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already registered on the network.
    #[allow(clippy::too_many_arguments)]
    pub fn boot(
        net: &Network,
        node: NodeId,
        data_servers: Vec<NodeId>,
        naming_server: NodeId,
        registry: ClassRegistry,
        ratp_config: RatpConfig,
        cpus: usize,
        cache_frames: usize,
    ) -> ComputeServer {
        ComputeServer::boot_traced(
            net,
            node,
            data_servers,
            naming_server,
            registry,
            ratp_config,
            cpus,
            cache_frames,
            None,
        )
    }

    /// [`ComputeServer::boot`], joining the node to a cluster-shared
    /// trace sink when one is given.
    #[allow(clippy::too_many_arguments)]
    pub fn boot_traced(
        net: &Network,
        node: NodeId,
        data_servers: Vec<NodeId>,
        naming_server: NodeId,
        registry: ClassRegistry,
        ratp_config: RatpConfig,
        cpus: usize,
        cache_frames: usize,
        sink: Option<&Arc<TraceSink>>,
    ) -> ComputeServer {
        let endpoint = net.register(node).expect("node id unique");
        let clock = net.clock(node).expect("registered above");
        let cost = net.cost_model().clone();
        let obs = make_obs(net, node, sink);
        let ratp = RatpNode::spawn_with_obs(endpoint, ratp_config, obs);
        let cache = Arc::new(PageCache::new(cache_frames));
        let dsm = DsmClientPartition::install(&ratp, Arc::clone(&cache), data_servers);
        let kernel = RaKernel::new_with_cache(
            node,
            clock,
            cost,
            Arc::clone(&dsm) as Arc<dyn clouds_ra::Partition>,
            cpus,
            cache,
        );
        // The scheduler cannot depend on the transport layer, so its
        // trace hookup is installed here at boot.
        kernel.scheduler().set_obs(Arc::clone(ratp.obs()));
        let object_manager =
            ObjectManager::new_dsm(Arc::clone(&kernel), Arc::clone(&dsm), registry);
        let naming = NameClient::new(&ratp, naming_server);
        let inner = Arc::new(ComputeInner {
            node,
            kernel,
            ratp: Arc::clone(&ratp),
            dsm,
            object_manager,
            naming,
            sync_server: naming_server,
            thread_counter: AtomicU32::new(1),
            console: Mutex::new(String::new()),
            self_ref: Mutex::new(None),
        });
        *inner.self_ref.lock() = Some(Arc::downgrade(&inner));

        // The invocation service: lets workstations and other compute
        // servers run thread segments here.
        let service_inner = Arc::clone(&inner);
        ratp.register_service(ports::INVOCATION, move |req: Request| {
            let reply = match clouds_codec::from_bytes::<ComputeRequest>(&req.payload) {
                Ok(message) => service_inner.handle_compute_request(message),
                Err(e) => ComputeReply::Result(Err(WireError::Other(format!(
                    "malformed request: {e}"
                )))),
            };
            encode(&reply)
        });

        ComputeServer { inner }
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.inner.node
    }

    /// The Ra kernel.
    pub fn kernel(&self) -> &Arc<RaKernel> {
        &self.inner.kernel
    }

    /// The RaTP transport.
    pub fn ratp(&self) -> &Arc<RatpNode> {
        &self.inner.ratp
    }

    /// The DSM client partition.
    pub fn dsm(&self) -> &Arc<DsmClientPartition> {
        &self.inner.dsm
    }

    /// The object manager.
    pub fn object_manager(&self) -> &ObjectManager {
        &self.inner.object_manager
    }

    /// The name client bound to the cluster's name server.
    pub fn naming(&self) -> &NameClient {
        &self.inner.naming
    }

    /// Console output of headless threads run on this server.
    pub fn console(&self) -> String {
        self.inner.console.lock().clone()
    }

    /// Create an object (optionally registering `user_name`, optionally
    /// placed on a specific data server).
    ///
    /// # Errors
    ///
    /// Unknown class, storage/naming failures, constructor errors.
    pub fn create_object(
        &self,
        class: &str,
        user_name: Option<&str>,
        placement: Option<NodeId>,
    ) -> Result<SysName, CloudsError> {
        self.inner.create_object(class, user_name, placement)
    }

    /// Destroy an object and its segments.
    ///
    /// # Errors
    ///
    /// Unknown object or storage failures.
    pub fn destroy_object(&self, sysname: SysName) -> Result<(), CloudsError> {
        self.inner.object_manager.destroy_object(sysname)
    }

    /// The consistency label of `entry` on the target's class.
    ///
    /// # Errors
    ///
    /// Unknown object / class errors from activation.
    pub fn entry_label(
        &self,
        target: SysName,
        entry: &str,
    ) -> Result<crate::class::OperationLabel, CloudsError> {
        let activation = self.inner.object_manager.activate(target)?;
        Ok(activation.class.code().label(entry))
    }

    /// Run an invocation synchronously on the calling thread, creating a
    /// fresh Clouds thread (optionally a cp-thread via `session`).
    ///
    /// # Errors
    ///
    /// As for [`Invocation::invoke`].
    pub fn invoke(
        &self,
        target: SysName,
        entry: &str,
        args: &[u8],
        session: Option<Arc<CpSession>>,
    ) -> Result<Vec<u8>, CloudsError> {
        let id = self.inner.next_thread_id();
        let mut thread = ThreadState::new(id, None);
        thread.session = session;
        let result = self.inner.invoke_local(&mut thread, target, entry, args);
        if thread.session.is_none() {
            // s-thread durability point: flush dirty pages at thread end.
            self.inner
                .kernel
                .page_cache()
                .flush(&**self.inner.object_manager.partition())?;
        }
        result
    }

    /// Start a Clouds thread on this server's IsiBa scheduler and return
    /// a handle to await it.
    pub fn start_thread(
        &self,
        target: SysName,
        entry: &str,
        args: Vec<u8>,
        origin_workstation: Option<NodeId>,
    ) -> ThreadHandle {
        let id = self.inner.next_thread_id();
        self.start_thread_with_id(id, target, entry, args, origin_workstation)
    }

    /// [`ComputeServer::start_thread`] with an externally allocated id
    /// (continuing a distributed thread).
    pub fn start_thread_with_id(
        &self,
        id: ThreadId,
        target: SysName,
        entry: &str,
        args: Vec<u8>,
        origin_workstation: Option<NodeId>,
    ) -> ThreadHandle {
        let (tx, rx) = bounded(1);
        let inner = Arc::clone(&self.inner);
        let entry = entry.to_string();
        self.inner.kernel.scheduler().spawn(
            clouds_ra::sched::StackKind::User,
            move |ictx| {
                // Clouds threads spend their blocking time (page faults,
                // remote calls) off the virtual CPU.
                let result = ictx.blocking(|| {
                    let mut thread = ThreadState::new(id, origin_workstation);
                    let r = inner.invoke_local(&mut thread, target, &entry, &args);
                    let _ = inner
                        .kernel
                        .page_cache()
                        .flush(&**inner.object_manager.partition());
                    r
                });
                let _ = tx.send(result);
            },
        );
        ThreadHandle { id, rx }
    }

    /// Scheduler load (live IsiBas: running, ready or blocked), for
    /// placement policies.
    pub fn load(&self) -> u64 {
        self.inner.kernel.scheduler().live_count() as u64
    }

    /// Crash this compute server: volatile state (page frames,
    /// activations, transport state) is lost and the node drops off the
    /// network until [`ComputeServer::restart`].
    pub fn crash(&self, net: &Network) {
        net.crash(self.inner.node);
        self.inner.kernel.crash_volatile_state();
        self.inner.object_manager.deactivate_all();
        self.inner.ratp.reset_volatile_state();
    }

    /// Restart after a crash.
    pub fn restart(&self, net: &Network) {
        net.restart(self.inner.node);
    }

    pub(crate) fn inner(&self) -> &Arc<ComputeInner> {
        &self.inner
    }
}

impl ComputeInner {
    fn handle_compute_request(self: &Arc<Self>, req: ComputeRequest) -> ComputeReply {
        match req {
            ComputeRequest::Invoke {
                thread,
                origin_ws,
                target,
                entry,
                args,
            } => {
                let id = match thread {
                    Some(raw) => ThreadId(raw),
                    None => self.next_thread_id(),
                };
                let origin = origin_ws.map(NodeId);
                let target = match target {
                    WireTarget::Sysname(s) => Ok(s),
                    WireTarget::Name(n) => {
                        self.naming.lookup(&n).map_err(CloudsError::from)
                    }
                };
                let result = target.and_then(|t| {
                    let mut state = ThreadState::new(id, origin);
                    let r = self.invoke_local(&mut state, t, &entry, &args);
                    let _ = self
                        .kernel
                        .page_cache()
                        .flush(&**self.object_manager.partition());
                    r
                });
                ComputeReply::Result(result.map_err(WireError::from))
            }
            ComputeRequest::CreateObject { class, placement } => ComputeReply::Created(
                self.create_object(&class, None, placement.map(NodeId))
                    .map_err(WireError::from),
            ),
            ComputeRequest::DestroyObject { sysname } => ComputeReply::Ok(
                self.object_manager
                    .destroy_object(sysname)
                    .map_err(WireError::from),
            ),
            ComputeRequest::Load => {
                ComputeReply::Load(self.kernel.scheduler().live_count() as u64)
            }
        }
    }
}

/// A Clouds data server.
pub struct DataServer {
    node: NodeId,
    ratp: Arc<RatpNode>,
    dsm: Arc<DsmServer>,
    locks: Arc<LockService>,
    semaphores: Arc<SemaphoreService>,
    naming: Option<Arc<NameServer>>,
    failover: Mutex<Option<FailoverState>>,
}

/// Book-keeping for a running failover monitor: its stop flag, plus the
/// naming node a restarted server resyncs its replica views from.
struct FailoverState {
    stop: Arc<AtomicBool>,
    naming_server: NodeId,
}

/// Restart-time directory resync attempts before the remaining work is
/// left to the failover monitor's per-tick retry (the server stays
/// fenced meanwhile).
const RESYNC_ATTEMPTS: u32 = 3;
/// Pause between restart-time resync attempts.
const RESYNC_BACKOFF: std::time::Duration = std::time::Duration::from_millis(5);

impl fmt::Debug for DataServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataServer")
            .field("node", &self.node)
            .field("naming", &self.naming.is_some())
            .finish()
    }
}

impl DataServer {
    /// Boot a data server on `node`. `with_naming` additionally hosts
    /// the cluster's name server here.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already registered on the network.
    pub fn boot(
        net: &Network,
        node: NodeId,
        ratp_config: RatpConfig,
        with_naming: bool,
    ) -> DataServer {
        DataServer::boot_traced(net, node, ratp_config, with_naming, None)
    }

    /// [`DataServer::boot`], joining the node to a cluster-shared trace
    /// sink when one is given.
    pub fn boot_traced(
        net: &Network,
        node: NodeId,
        ratp_config: RatpConfig,
        with_naming: bool,
        sink: Option<&Arc<TraceSink>>,
    ) -> DataServer {
        let endpoint = net.register(node).expect("node id unique");
        let obs = make_obs(net, node, sink);
        let ratp = RatpNode::spawn_with_obs(endpoint, ratp_config, obs);
        let dsm = DsmServer::install(&ratp);
        let locks = LockService::install(&ratp);
        let semaphores = SemaphoreService::install(&ratp);
        let naming = with_naming.then(|| NameServer::install(&ratp));
        DataServer {
            node,
            ratp,
            dsm,
            locks,
            semaphores,
            naming,
            failover: Mutex::new(None),
        }
    }

    /// Start this server's failover monitor: beacon the peer data
    /// servers, watch the primaries of replicated segments this server
    /// backs up, and promote on a confirmed primary death (see
    /// [`crate::failover`]). `naming_server` is also remembered so a
    /// post-crash [`DataServer::restart`] resyncs replica views from the
    /// directory before serving again.
    pub fn start_failover(
        &self,
        peers: Vec<NodeId>,
        naming_server: NodeId,
        config: FailoverConfig,
    ) {
        let stop = failover::spawn_monitor(
            Arc::clone(&self.ratp),
            Arc::clone(&self.dsm),
            peers,
            naming_server,
            config,
        );
        let mut slot = self.failover.lock();
        if let Some(prev) = slot.take() {
            prev.stop.store(true, Ordering::SeqCst);
        }
        *slot = Some(FailoverState {
            stop,
            naming_server,
        });
    }

    /// Stop the failover monitor (it exits within one tick). The
    /// remembered naming server is kept so restart resync still works.
    pub fn stop_failover(&self) {
        if let Some(st) = self.failover.lock().as_ref() {
            st.stop.store(true, Ordering::SeqCst);
        }
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The DSM server (canonical store + coherence directory).
    pub fn dsm(&self) -> &Arc<DsmServer> {
        &self.dsm
    }

    /// The lock manager.
    pub fn locks(&self) -> &Arc<LockService> {
        &self.locks
    }

    /// The semaphore service.
    pub fn semaphores(&self) -> &Arc<SemaphoreService> {
        &self.semaphores
    }

    /// The name server, if hosted here.
    pub fn naming(&self) -> Option<&Arc<NameServer>> {
        self.naming.as_ref()
    }

    /// The RaTP transport (to co-locate more services, e.g. the 2PC
    /// participant).
    pub fn ratp(&self) -> &Arc<RatpNode> {
        &self.ratp
    }

    /// Crash the data server: only the append-only log survives (it is
    /// disk); the segment cache, coherence directory, replica views and
    /// transport state are all volatile and lost. Replicated segments
    /// stop being served until the restart replays the log and resyncs
    /// views — the crash may sleep through a demotion.
    pub fn crash(&self, net: &Network) {
        net.crash(self.node);
        self.lose_volatile_state();
    }

    /// The machine-reboot half of [`DataServer::crash`], without touching
    /// the network — for harnesses whose fault injector already cut the
    /// node off (e.g. a schedule-driven crash window): the append-only
    /// log survives, everything else — including the in-memory segment
    /// cache — is lost, and replicated segments stop being served until
    /// [`DataServer::resync_replicas`].
    pub fn lose_volatile_state(&self) {
        self.dsm.begin_recovery();
        self.dsm.clear_directory();
        self.dsm.wipe_store();
        self.ratp.reset_volatile_state();
    }

    /// Restart after a crash: replay the surviving log to reconstruct
    /// pages, replica views and pending transaction state, then — if a
    /// failover monitor was configured — refresh every replicated
    /// segment's view from the naming directory *before* serving
    /// resumes: a rebooted ex-primary must learn it was demoted while
    /// down, or two servers would answer home probes for the same
    /// segment.
    pub fn restart(&self, net: &Network) {
        net.restart(self.node);
        self.resync_replicas();
    }

    /// The recovery half of [`DataServer::restart`], without touching the
    /// network: refresh every replicated segment's view from the naming
    /// directory, then resume serving. The counterpart of
    /// [`DataServer::lose_volatile_state`] for harnesses that restore
    /// connectivity themselves.
    ///
    /// Serving resumes only once *every* replicated segment's view was
    /// successfully refreshed. If the directory stays unreachable past a
    /// short retry budget the server remains fenced — resuming on the
    /// stale pre-crash view (in which this server may still be primary)
    /// is exactly the split brain the fence exists to prevent — and the
    /// failover monitor, which retries naming calls every tick, lifts
    /// the fence when a later full refresh succeeds.
    pub fn resync_replicas(&self) {
        // Phase one of recovery: replay the append-only log to rebuild
        // the segment cache, replica views and pending-transaction state
        // from durable records alone (charging the virtual clock the
        // scan cost). Only then is the naming directory consulted to
        // refine the — possibly stale — replayed replica views.
        self.dsm.recover_from_log();
        let naming_server = self.failover.lock().as_ref().map(|st| st.naming_server);
        let Some(ns) = naming_server else {
            // No failover monitor was ever configured, so nothing could
            // have re-homed segments while this server was down.
            self.dsm.finish_recovery();
            return;
        };
        let directory = NameClient::new(&self.ratp, ns);
        for _ in 0..RESYNC_ATTEMPTS {
            if failover::refresh_replica_views(&self.dsm, &directory) {
                self.dsm.finish_recovery();
                return;
            }
            std::thread::sleep(RESYNC_BACKOFF);
        }
        self.ratp.obs().instant(
            "core.failover",
            "resync_deferred",
            "naming directory unreachable; replicated segments stay fenced".to_string(),
        );
    }
}

/// A user workstation.
pub struct Workstation {
    node: NodeId,
    ratp: Arc<RatpNode>,
    io: Arc<UserIoManager>,
    naming: NameClient,
    computes: Vec<NodeId>,
    rr: AtomicU32,
    thread_counter: AtomicU32,
}

impl fmt::Debug for Workstation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workstation")
            .field("node", &self.node)
            .finish()
    }
}

/// Handle to a thread started from a workstation.
pub struct WsThread {
    id: ThreadId,
    rx: crossbeam::channel::Receiver<Result<Vec<u8>, CloudsError>>,
}

impl fmt::Debug for WsThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WsThread").field("id", &self.id).finish()
    }
}

impl WsThread {
    /// The thread's id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Wait for completion and take the encoded result.
    ///
    /// # Errors
    ///
    /// The invocation's error, or [`CloudsError::ThreadFailed`].
    pub fn join(self) -> Result<Vec<u8>, CloudsError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(CloudsError::ThreadFailed("executor disappeared".into()))
        })
    }

    /// Wait for completion and decode the result.
    ///
    /// # Errors
    ///
    /// As for [`WsThread::join`], plus decode failures.
    pub fn join_decode<R: serde::de::DeserializeOwned>(self) -> Result<R, CloudsError> {
        let bytes = self.join()?;
        crate::decode_args(&bytes)
    }
}

impl Workstation {
    /// Boot a workstation on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already registered on the network.
    pub fn boot(
        net: &Network,
        node: NodeId,
        computes: Vec<NodeId>,
        naming_server: NodeId,
        ratp_config: RatpConfig,
    ) -> Workstation {
        Workstation::boot_traced(net, node, computes, naming_server, ratp_config, None)
    }

    /// [`Workstation::boot`], joining the node to a cluster-shared trace
    /// sink when one is given.
    pub fn boot_traced(
        net: &Network,
        node: NodeId,
        computes: Vec<NodeId>,
        naming_server: NodeId,
        ratp_config: RatpConfig,
        sink: Option<&Arc<TraceSink>>,
    ) -> Workstation {
        let endpoint = net.register(node).expect("node id unique");
        let obs = make_obs(net, node, sink);
        let ratp = RatpNode::spawn_with_obs(endpoint, ratp_config, obs);
        let io = UserIoManager::install(&ratp);
        let naming = NameClient::new(&ratp, naming_server);
        Workstation {
            node,
            ratp,
            io,
            naming,
            computes,
            rr: AtomicU32::new(0),
            thread_counter: AtomicU32::new(1),
        }
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The name client.
    pub fn naming(&self) -> &NameClient {
        &self.naming
    }

    /// The terminal multiplexer.
    pub fn io(&self) -> &Arc<UserIoManager> {
        &self.io
    }

    /// The workstation's transport endpoint (its observability handle —
    /// metrics registry and trace sink — hangs off it).
    pub fn ratp(&self) -> &Arc<RatpNode> {
        &self.ratp
    }

    fn pick_compute(&self) -> NodeId {
        // The "scheduling decision" of §3.2: round-robin by default.
        let i = self.rr.fetch_add(1, Ordering::Relaxed) as usize;
        self.computes[i % self.computes.len()]
    }

    /// Ask every compute server for its scheduler load and return the
    /// least loaded one — the load-aware variant of §3.2's "may depend
    /// on … the load at each compute server".
    pub fn least_loaded_compute(&self) -> NodeId {
        let mut best = (u64::MAX, self.computes[0]);
        for &node in &self.computes {
            let load = self
                .ratp
                .call_with_budget(node, ports::INVOCATION, encode(&ComputeRequest::Load), 5)
                .ok()
                .and_then(|b| decode::<ComputeReply>(&b).ok())
                .and_then(|r| match r {
                    ComputeReply::Load(l) => Some(l),
                    _ => None,
                })
                .unwrap_or(u64::MAX); // unreachable server: never pick
            if load < best.0 {
                best = (load, node);
            }
        }
        best.1
    }

    /// Create an object of `class` and register `user_name` for it.
    ///
    /// # Errors
    ///
    /// Unknown class, storage/naming failures.
    pub fn create_object(&self, class: &str, user_name: &str) -> Result<SysName, CloudsError> {
        let req = ComputeRequest::CreateObject {
            class: class.to_string(),
            placement: None,
        };
        let compute = self.pick_compute();
        let reply = self
            .ratp
            .call(compute, ports::INVOCATION, encode(&req))
            .map_err(|e| CloudsError::Transport(e.to_string()))?;
        match decode::<ComputeReply>(&reply)? {
            ComputeReply::Created(Ok(sysname)) => {
                self.naming.register(user_name, sysname)?;
                Ok(sysname)
            }
            ComputeReply::Created(Err(e)) => Err(e.into()),
            other => Err(CloudsError::Transport(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// Start a thread invoking `name.entry(args)` on a compute server
    /// chosen round-robin. Output appears on this workstation's
    /// terminal for the returned thread id.
    pub fn spawn(&self, name: &str, entry: &str, args: Vec<u8>) -> WsThread {
        self.spawn_at(None, name, entry, args)
    }

    /// [`Workstation::spawn`] on an explicit compute server.
    pub fn spawn_at(
        &self,
        compute: Option<NodeId>,
        name: &str,
        entry: &str,
        args: Vec<u8>,
    ) -> WsThread {
        let id = ThreadId::new(
            self.node,
            self.thread_counter.fetch_add(1, Ordering::Relaxed),
        );
        let compute = compute.unwrap_or_else(|| self.pick_compute());
        let req = ComputeRequest::Invoke {
            thread: Some(id.0),
            origin_ws: Some(self.node.0),
            target: WireTarget::Name(name.to_string()),
            entry: entry.to_string(),
            args,
        };
        let (tx, rx) = bounded(1);
        let ratp = Arc::clone(&self.ratp);
        std::thread::Builder::new()
            .name(format!("ws-{id}"))
            .spawn(move || {
                let result = (|| {
                    let reply = ratp
                        .call(compute, ports::INVOCATION, encode(&req))
                        .map_err(|e| CloudsError::Transport(e.to_string()))?;
                    match decode::<ComputeReply>(&reply)? {
                        ComputeReply::Result(Ok(bytes)) => Ok(bytes),
                        ComputeReply::Result(Err(e)) => Err(e.into()),
                        other => Err(CloudsError::Transport(format!(
                            "unexpected reply {other:?}"
                        ))),
                    }
                })();
                let _ = tx.send(result);
            })
            .expect("spawn workstation thread");
        WsThread { id, rx }
    }

    /// Invoke synchronously and return the encoded result.
    ///
    /// # Errors
    ///
    /// As for [`Invocation::invoke`].
    pub fn run_wait<T: Serialize>(
        &self,
        name: &str,
        entry: &str,
        args: &T,
    ) -> Result<Vec<u8>, CloudsError> {
        let encoded = crate::encode_args(args)?;
        self.spawn(name, entry, encoded).join()
    }

    /// Invoke synchronously and decode the result.
    ///
    /// # Errors
    ///
    /// As for [`Workstation::run_wait`], plus decode failures.
    pub fn run_wait_decode<T: Serialize, R: serde::de::DeserializeOwned>(
        &self,
        name: &str,
        entry: &str,
        args: &T,
    ) -> Result<R, CloudsError> {
        let bytes = self.run_wait(name, entry, args)?;
        crate::decode_args(&bytes)
    }

    /// Destroy an object through a compute server.
    ///
    /// # Errors
    ///
    /// Unknown object or storage/transport failures.
    pub fn destroy_object(&self, sysname: SysName) -> Result<(), CloudsError> {
        let compute = self.pick_compute();
        let reply = self
            .ratp
            .call(
                compute,
                ports::INVOCATION,
                encode(&ComputeRequest::DestroyObject { sysname }),
            )
            .map_err(|e| CloudsError::Transport(e.to_string()))?;
        match decode::<ComputeReply>(&reply)? {
            ComputeReply::Ok(Ok(())) => Ok(()),
            ComputeReply::Ok(Err(e)) => Err(e.into()),
            other => Err(CloudsError::Transport(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// Terminal output of one thread.
    pub fn output(&self, thread: ThreadId) -> String {
        self.io.output_of(thread.0)
    }

    /// Type a line at a thread's terminal.
    pub fn type_line(&self, thread: ThreadId, line: &str) {
        self.io.push_input(thread.0, line);
    }
}
