//! Cluster assembly: one simulated Ethernet, any number of compute
//! servers, data servers and workstations (§3, Figure 3).

use crate::class::{ClassRegistry, ObjectCode};
use crate::error::CloudsError;
use crate::node::{ComputeServer, DataServer, Workstation};
use clouds_naming::NameClient;
use clouds_obs::{MetricsRegistry, TraceSink};
use clouds_ra::SysName;
use clouds_ratp::RatpConfig;
use clouds_simnet::{CostModel, Network, NodeId};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// First node id used for compute servers.
pub const COMPUTE_BASE: u32 = 1;
/// First node id used for data servers.
pub const DATA_BASE_ID: u32 = 100;
/// First node id used for workstations.
pub const WS_BASE: u32 = 200;

/// Builder for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    compute_servers: usize,
    data_servers: usize,
    workstations: usize,
    cost: CostModel,
    seed: u64,
    cpus: usize,
    cache_frames: usize,
    server_ratp: Option<RatpConfig>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            compute_servers: 1,
            data_servers: 1,
            workstations: 1,
            cost: CostModel::sun3_ethernet(),
            seed: 0xC10D5,
            cpus: 4,
            cache_frames: 512,
            server_ratp: None,
        }
    }
}

impl ClusterBuilder {
    /// Number of compute servers (default 1).
    pub fn compute_servers(mut self, n: usize) -> Self {
        self.compute_servers = n;
        self
    }

    /// Number of data servers (default 1).
    pub fn data_servers(mut self, n: usize) -> Self {
        self.data_servers = n;
        self
    }

    /// Number of workstations (default 1).
    pub fn workstations(mut self, n: usize) -> Self {
        self.workstations = n;
        self
    }

    /// Virtual-time cost model (default: the calibrated Sun-3 model).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Fault-injection RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Virtual CPUs per compute server (default 4; 1 is the faithful
    /// Sun-3/60).
    pub fn cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self
    }

    /// Page frames per compute server (default 512 = 4 MB).
    pub fn cache_frames(mut self, frames: usize) -> Self {
        self.cache_frames = frames;
        self
    }

    /// Override the RaTP settings used by compute and data servers.
    ///
    /// The retransmission budget doubles as the failure detector: a peer
    /// silent for the whole budget is treated as dead (recalled pages are
    /// reclaimed, calls fail). Test harnesses that stall nodes for real
    /// wall-clock time — chaos schedules, heavily loaded CI machines —
    /// should raise the budget so a merely *slow* node is not declared
    /// dead, which would otherwise sacrifice one-copy semantics to
    /// availability.
    pub fn server_ratp_config(mut self, config: RatpConfig) -> Self {
        self.server_ratp = Some(config);
        self
    }

    /// Boot the cluster.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns `Result` so future
    /// wiring failures stay non-breaking.
    ///
    /// # Panics
    ///
    /// Panics if any server count is zero (except workstations).
    pub fn build(self) -> Result<Cluster, CloudsError> {
        assert!(self.compute_servers > 0, "need at least one compute server");
        assert!(self.data_servers > 0, "need at least one data server");

        let net = Network::with_seed(self.cost, self.seed);
        let registry = ClassRegistry::new();
        // One ring buffer for the whole cluster: every node's NodeObs
        // shares it, so the canonical stream interleaves all layers on
        // the common virtual timeline. `CLOUDS_TRACE=<path>` makes the
        // cluster write it out on drop (`.json` → Chrome trace_event,
        // anything else → JSONL); `CLOUDS_TRACE_CAP=<n>` overrides the
        // ring capacity.
        let trace_sink = Arc::new(TraceSink::from_env());
        let trace_path = std::env::var_os("CLOUDS_TRACE").map(PathBuf::from);

        let data_nodes: Vec<NodeId> = (0..self.data_servers)
            .map(|i| NodeId(DATA_BASE_ID + i as u32))
            .collect();
        let compute_nodes: Vec<NodeId> = (0..self.compute_servers)
            .map(|i| NodeId(COMPUTE_BASE + i as u32))
            .collect();
        let naming_server = data_nodes[0];
        let server_ratp = self.server_ratp.unwrap_or_else(server_ratp_config);

        // Data servers first so the DSM clients can discover them.
        let datas: Vec<DataServer> = data_nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                DataServer::boot_traced(&net, node, server_ratp.clone(), i == 0, Some(&trace_sink))
            })
            .collect();

        let computes: Vec<ComputeServer> = compute_nodes
            .iter()
            .map(|&node| {
                ComputeServer::boot_traced(
                    &net,
                    node,
                    data_nodes.clone(),
                    naming_server,
                    registry.clone(),
                    server_ratp.clone(),
                    self.cpus,
                    self.cache_frames,
                    Some(&trace_sink),
                )
            })
            .collect();

        let stations: Vec<Workstation> = (0..self.workstations)
            .map(|i| {
                Workstation::boot_traced(
                    &net,
                    NodeId(WS_BASE + i as u32),
                    compute_nodes.clone(),
                    naming_server,
                    workstation_ratp_config(),
                    Some(&trace_sink),
                )
            })
            .collect();

        Ok(Cluster {
            net,
            registry,
            computes,
            datas,
            stations,
            trace_sink,
            trace_path,
            dropped_reported: AtomicU64::new(0),
        })
    }
}

/// RaTP settings for system servers: patient enough for coherence
/// transitions under load.
fn server_ratp_config() -> RatpConfig {
    RatpConfig {
        retry_interval: Duration::from_millis(15),
        max_retries: 200,
        dup_cache_size: 4096,
    }
}

/// Workstation calls block for the whole computation, so the budget is
/// effectively unbounded (hours).
fn workstation_ratp_config() -> RatpConfig {
    RatpConfig {
        retry_interval: Duration::from_millis(25),
        max_retries: 1_000_000,
        dup_cache_size: 4096,
    }
}

/// A booted Clouds system.
pub struct Cluster {
    net: Network,
    registry: ClassRegistry,
    computes: Vec<ComputeServer>,
    datas: Vec<DataServer>,
    stations: Vec<Workstation>,
    trace_sink: Arc<TraceSink>,
    trace_path: Option<PathBuf>,
    /// Ring-buffer drops already surfaced (warning + counter), so the
    /// explicit [`Cluster::write_trace`] and the drop-time write don't
    /// double-count.
    dropped_reported: AtomicU64,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("compute_servers", &self.computes.len())
            .field("data_servers", &self.datas.len())
            .field("workstations", &self.stations.len())
            .finish()
    }
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The simulated network (fault injection, stats, clocks).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The cluster-shared trace sink (every node's events, one virtual
    /// timeline).
    pub fn trace_sink(&self) -> &Arc<TraceSink> {
        &self.trace_sink
    }

    /// Write the trace out now: `.json` extension selects the Chrome
    /// `trace_event` format, anything else canonical JSONL.
    ///
    /// If the ring buffer overflowed since the last write, warns on
    /// stderr and bumps the `obs.trace.dropped` counter (compute
    /// server 0's registry) by the number of newly lost events, so a
    /// truncated trace never passes silently for a complete one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.surface_dropped();
        self.trace_sink.write_to_path(path)
    }

    fn surface_dropped(&self) {
        let total = self.trace_sink.dropped();
        let seen = self.dropped_reported.swap(total, Ordering::Relaxed);
        let new = total.saturating_sub(seen);
        if new > 0 {
            eprintln!(
                "CLOUDS_TRACE: ring buffer overflowed, {new} event(s) lost \
                 ({total} total); raise {} to keep them",
                clouds_obs::TRACE_CAP_ENV
            );
            self.computes[0]
                .ratp()
                .obs()
                .counter("obs.trace.dropped")
                .add(new);
        }
    }

    /// Every node's metrics registry, keyed by node id: compute
    /// servers, then data servers, then workstations. Feed this to the
    /// chaos flight recorder or [`clouds_obs::merged_registry_text`]
    /// for a cluster-wide canonical dump.
    pub fn registries(&self) -> Vec<(u64, Arc<MetricsRegistry>)> {
        let mut out: Vec<(u64, Arc<MetricsRegistry>)> = Vec::new();
        for c in &self.computes {
            out.push((c.node_id().0 as u64, Arc::clone(c.ratp().obs().registry())));
        }
        for d in &self.datas {
            out.push((d.node_id().0 as u64, Arc::clone(d.ratp().obs().registry())));
        }
        for w in &self.stations {
            out.push((w.node_id().0 as u64, Arc::clone(w.ratp().obs().registry())));
        }
        out
    }

    /// Load a class on every compute server ("the compiler loads the
    /// generated classes on a Clouds data server. Now these classes are
    /// available to all Clouds compute servers", §3.1).
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` keeps the API future-proof.
    pub fn register_class<C: ObjectCode>(&self, name: &str, code: C) -> Result<(), CloudsError> {
        self.registry.register(name, code);
        Ok(())
    }

    /// The shared class registry.
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// Compute server `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn compute(&self, i: usize) -> &ComputeServer {
        &self.computes[i]
    }

    /// All compute servers.
    pub fn computes(&self) -> &[ComputeServer] {
        &self.computes
    }

    /// Data server `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn data_server(&self, i: usize) -> &DataServer {
        &self.datas[i]
    }

    /// All data servers.
    pub fn data_servers(&self) -> &[DataServer] {
        &self.datas
    }

    /// Workstation `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn workstation(&self, i: usize) -> &Workstation {
        &self.stations[i]
    }

    /// All workstations.
    pub fn workstations(&self) -> &[Workstation] {
        &self.stations
    }

    /// A name client speaking from compute server 0.
    pub fn naming(&self) -> &NameClient {
        self.computes[0].naming()
    }

    /// Create an object from compute server 0 and register its name.
    ///
    /// # Errors
    ///
    /// Unknown class, storage/naming failures, constructor errors.
    pub fn create_object(&self, class: &str, user_name: &str) -> Result<SysName, CloudsError> {
        self.computes[0].create_object(class, Some(user_name), None)
    }

    /// Crash data server `i` (volatile state lost, store survives).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn crash_data_server(&self, i: usize) {
        self.datas[i].crash(&self.net);
    }

    /// Restart data server `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn restart_data_server(&self, i: usize) {
        self.datas[i].restart(&self.net);
    }

    /// Crash compute server `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn crash_compute(&self, i: usize) {
        self.computes[i].crash(&self.net);
    }

    /// Restart compute server `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn restart_compute(&self, i: usize) {
        self.computes[i].restart(&self.net);
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(path) = &self.trace_path {
            self.surface_dropped();
            if let Err(e) = self.trace_sink.write_to_path(path) {
                eprintln!("CLOUDS_TRACE: could not write {}: {e}", path.display());
            }
        }
    }
}
