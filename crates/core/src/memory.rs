//! Per-object memory: persistent data, the persistent heap, and the
//! cp-thread shadow routing (§2.1, §5.1).
//!
//! "A Clouds object contains user defined code, persistent data, a
//! volatile heap for temporary memory allocation, and a persistent heap
//! for allocating memory that becomes a part of the persistent data
//! structures in the object."
//!
//! [`ObjectMemory`] is the window an executing entry point gets onto the
//! object's address space. Reads and writes are demand-paged through the
//! node's DSM partition; for cp-threads every access is re-routed
//! through the thread's [`CpSession`] (locks + shadow pages). The
//! volatile heap is simply Rust values on the invocation's stack; the
//! *persistent* heap is a first-fit allocator whose free list itself
//! lives in the heap segment — so heap state enjoys exactly the same
//! persistence and consistency semantics as the data it allocates.

use crate::consistency_hooks::CpSession;
use crate::error::CloudsError;
use clouds_ra::{AddressSpace, SysName, PAGE_SIZE};
use serde::{de::DeserializeOwned, Serialize};
use std::sync::Arc;

/// Virtual base address of the persistent data segment in an object's
/// space.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Virtual base address of the persistent heap segment.
pub const HEAP_BASE: u64 = 0x8000_0000;

const HEAP_MAGIC: u64 = 0x000C_10D5_4EA9;
/// Heap header: magic, bump pointer, free-list head.
const HEAP_HEADER: u64 = 24;
/// Minimum allocation granule (must hold a free-list node).
const HEAP_GRANULE: u64 = 16;

/// Which of the object's segments an accessor targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    Data,
    Heap,
}

/// The executing entry point's view of its object's persistent memory.
pub struct ObjectMemory {
    space: AddressSpace,
    data_seg: SysName,
    data_len: u64,
    heap_seg: SysName,
    heap_len: u64,
    session: Option<Arc<CpSession>>,
}

impl std::fmt::Debug for ObjectMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectMemory")
            .field("data_seg", &self.data_seg)
            .field("cp", &self.session.is_some())
            .finish()
    }
}

impl ObjectMemory {
    /// Assemble the memory view. `space` must already map the data
    /// segment at [`DATA_BASE`] and the heap segment at [`HEAP_BASE`].
    pub(crate) fn new(
        space: AddressSpace,
        data_seg: SysName,
        data_len: u64,
        heap_seg: SysName,
        heap_len: u64,
        session: Option<Arc<CpSession>>,
    ) -> ObjectMemory {
        ObjectMemory {
            space,
            data_seg,
            data_len,
            heap_seg,
            heap_len,
            session,
        }
    }

    /// Size of the persistent data segment in bytes.
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Size of the persistent heap segment in bytes.
    pub fn heap_len(&self) -> u64 {
        self.heap_len
    }

    fn region_parts(&self, region: Region) -> (SysName, u64, u64) {
        match region {
            Region::Data => (self.data_seg, DATA_BASE, self.data_len),
            Region::Heap => (self.heap_seg, HEAP_BASE, self.heap_len),
        }
    }

    fn check(&self, region: Region, offset: u64, len: u64) -> Result<(), CloudsError> {
        let (seg, _, region_len) = self.region_parts(region);
        if offset.saturating_add(len) > region_len {
            return Err(CloudsError::Ra(clouds_ra::RaError::OutOfRange {
                segment: seg,
                offset,
                len,
                segment_len: region_len,
            }));
        }
        Ok(())
    }

    /// Length in bytes of `page` within a segment of `seg_len` bytes.
    fn page_len(seg_len: u64, page: u32) -> usize {
        let start = page as u64 * PAGE_SIZE as u64;
        ((seg_len - start).min(PAGE_SIZE as u64)) as usize
    }

    fn read_region(&self, region: Region, offset: u64, len: usize) -> Result<Vec<u8>, CloudsError> {
        self.check(region, offset, len as u64)?;
        let (seg, base, seg_len) = self.region_parts(region);
        match &self.session {
            None => Ok(self.space.read(base + offset, len)?),
            Some(session) => {
                session.ensure_read(seg)?;
                let mut out = vec![0u8; len];
                let mut done = 0usize;
                while done < len {
                    let pos = offset as usize + done;
                    let page = (pos / PAGE_SIZE) as u32;
                    let in_page = pos % PAGE_SIZE;
                    let chunk = (PAGE_SIZE - in_page).min(len - done);
                    // Read-your-writes: shadows first, canonical second.
                    match session.shadow(seg, page) {
                        Some(shadow) => {
                            out[done..done + chunk]
                                .copy_from_slice(&shadow[in_page..in_page + chunk]);
                        }
                        None => {
                            let bytes = self
                                .space
                                .read(base + pos as u64, chunk)?;
                            out[done..done + chunk].copy_from_slice(&bytes);
                        }
                    }
                    done += chunk;
                    let _ = seg_len;
                }
                Ok(out)
            }
        }
    }

    fn write_region(&self, region: Region, offset: u64, data: &[u8]) -> Result<(), CloudsError> {
        self.check(region, offset, data.len() as u64)?;
        let (seg, base, seg_len) = self.region_parts(region);
        match &self.session {
            None => Ok(self.space.write(base + offset, data)?),
            Some(session) => {
                session.ensure_write(seg)?;
                let mut done = 0usize;
                while done < data.len() {
                    let pos = offset as usize + done;
                    let page = (pos / PAGE_SIZE) as u32;
                    let in_page = pos % PAGE_SIZE;
                    let chunk = (PAGE_SIZE - in_page).min(data.len() - done);
                    let page_len = Self::page_len(seg_len, page);
                    session.with_shadow(
                        seg,
                        page,
                        || {
                            // First touch: shadow starts from the
                            // canonical image.
                            Ok(self
                                .space
                                .read(base + page as u64 * PAGE_SIZE as u64, page_len)?)
                        },
                        |shadow| {
                            shadow[in_page..in_page + chunk]
                                .copy_from_slice(&data[done..done + chunk]);
                        },
                    )?;
                    done += chunk;
                }
                Ok(())
            }
        }
    }

    /// Read raw bytes from the persistent data segment.
    ///
    /// # Errors
    ///
    /// Out-of-range accesses, DSM failures, or consistency aborts.
    pub fn read_bytes(&self, offset: u64, len: usize) -> Result<Vec<u8>, CloudsError> {
        self.read_region(Region::Data, offset, len)
    }

    /// Write raw bytes to the persistent data segment.
    ///
    /// # Errors
    ///
    /// As for [`ObjectMemory::read_bytes`].
    pub fn write_bytes(&self, offset: u64, data: &[u8]) -> Result<(), CloudsError> {
        self.write_region(Region::Data, offset, data)
    }

    /// Read a little-endian `u64` from persistent data.
    ///
    /// # Errors
    ///
    /// As for [`ObjectMemory::read_bytes`].
    pub fn read_u64(&self, offset: u64) -> Result<u64, CloudsError> {
        let b = self.read_bytes(offset, 8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Write a little-endian `u64` to persistent data.
    ///
    /// # Errors
    ///
    /// As for [`ObjectMemory::read_bytes`].
    pub fn write_u64(&self, offset: u64, value: u64) -> Result<(), CloudsError> {
        self.write_bytes(offset, &value.to_le_bytes())
    }

    /// Read a little-endian `i32` from persistent data.
    ///
    /// # Errors
    ///
    /// As for [`ObjectMemory::read_bytes`].
    pub fn read_i32(&self, offset: u64) -> Result<i32, CloudsError> {
        let b = self.read_bytes(offset, 4)?;
        Ok(i32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Write a little-endian `i32` to persistent data.
    ///
    /// # Errors
    ///
    /// As for [`ObjectMemory::read_bytes`].
    pub fn write_i32(&self, offset: u64, value: i32) -> Result<(), CloudsError> {
        self.write_bytes(offset, &value.to_le_bytes())
    }

    /// Store a serializable value at `offset`, length-prefixed. Returns
    /// the total bytes used.
    ///
    /// # Errors
    ///
    /// Encoding failures and the usual access errors.
    pub fn write_value<T: Serialize>(&self, offset: u64, value: &T) -> Result<u64, CloudsError> {
        let bytes = clouds_codec::to_bytes(value)?;
        self.write_bytes(offset, &(bytes.len() as u64).to_le_bytes())?;
        self.write_bytes(offset + 8, &bytes)?;
        Ok(8 + bytes.len() as u64)
    }

    /// Load a value previously stored with [`ObjectMemory::write_value`].
    ///
    /// # Errors
    ///
    /// Decoding failures and the usual access errors.
    pub fn read_value<T: DeserializeOwned>(&self, offset: u64) -> Result<T, CloudsError> {
        let len = self.read_u64(offset)?;
        if len > self.data_len {
            return Err(CloudsError::BadArguments(format!(
                "stored value length {len} is implausible"
            )));
        }
        let bytes = self.read_bytes(offset + 8, len as usize)?;
        Ok(clouds_codec::from_bytes(&bytes)?)
    }

    // --- persistent heap -------------------------------------------------

    fn heap_read_u64(&self, offset: u64) -> Result<u64, CloudsError> {
        let b = self.read_region(Region::Heap, offset, 8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn heap_write_u64(&self, offset: u64, value: u64) -> Result<(), CloudsError> {
        self.write_region(Region::Heap, offset, &value.to_le_bytes())
    }

    fn heap_init_if_needed(&self) -> Result<(), CloudsError> {
        if self.heap_read_u64(0)? != HEAP_MAGIC {
            self.heap_write_u64(0, HEAP_MAGIC)?;
            self.heap_write_u64(8, HEAP_HEADER)?; // bump pointer
            self.heap_write_u64(16, 0)?; // free-list head
        }
        Ok(())
    }

    /// Allocate `len` bytes on the persistent heap, returning the heap
    /// offset. The block becomes part of the object's persistent state.
    ///
    /// # Errors
    ///
    /// [`CloudsError::Heap`] when the heap is exhausted.
    pub fn heap_alloc(&self, len: u64) -> Result<u64, CloudsError> {
        self.heap_init_if_needed()?;
        let need = len.max(HEAP_GRANULE).div_ceil(8) * 8;

        // First-fit scan of the free list.
        let mut prev: Option<u64> = None;
        let mut cursor = self.heap_read_u64(16)?;
        while cursor != 0 {
            let block_len = self.heap_read_u64(cursor)?;
            let next = self.heap_read_u64(cursor + 8)?;
            if block_len >= need {
                match prev {
                    Some(p) => self.heap_write_u64(p + 8, next)?,
                    None => self.heap_write_u64(16, next)?,
                }
                return Ok(cursor);
            }
            prev = Some(cursor);
            cursor = next;
        }

        // Bump allocation.
        let bump = self.heap_read_u64(8)?;
        if bump + need > self.heap_len {
            return Err(CloudsError::Heap(format!(
                "out of persistent heap: need {need} bytes, {} free",
                self.heap_len.saturating_sub(bump)
            )));
        }
        self.heap_write_u64(8, bump + need)?;
        Ok(bump)
    }

    /// Return a block to the heap. `len` must be the original request.
    ///
    /// # Errors
    ///
    /// Access errors; freeing garbage offsets corrupts the object's own
    /// heap only (as on any real heap).
    pub fn heap_free(&self, offset: u64, len: u64) -> Result<(), CloudsError> {
        self.heap_init_if_needed()?;
        let need = len.max(HEAP_GRANULE).div_ceil(8) * 8;
        let head = self.heap_read_u64(16)?;
        self.heap_write_u64(offset, need)?;
        self.heap_write_u64(offset + 8, head)?;
        self.heap_write_u64(16, offset)
    }

    /// Read raw bytes from a heap block.
    ///
    /// # Errors
    ///
    /// As for [`ObjectMemory::read_bytes`].
    pub fn heap_read(&self, offset: u64, len: usize) -> Result<Vec<u8>, CloudsError> {
        self.read_region(Region::Heap, offset, len)
    }

    /// Write raw bytes into a heap block.
    ///
    /// # Errors
    ///
    /// As for [`ObjectMemory::read_bytes`].
    pub fn heap_write(&self, offset: u64, data: &[u8]) -> Result<(), CloudsError> {
        self.write_region(Region::Heap, offset, data)
    }

    /// Flush dirty pages through to the data servers (s-thread
    /// durability point).
    ///
    /// # Errors
    ///
    /// Propagates write-back failures.
    pub fn flush(&self) -> Result<(), CloudsError> {
        Ok(self.space.flush()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency_hooks::{CpSession, LockHooks};
    use clouds_ra::{LocalPartition, PageCache, Partition, SegmentStore};
    use clouds_simnet::{CostModel, VirtualClock};

    struct NopHooks;
    impl LockHooks for NopHooks {
        fn lock_read(&self, _o: u64, _s: SysName) -> Result<(), CloudsError> {
            Ok(())
        }
        fn lock_write(&self, _o: u64, _s: SysName) -> Result<(), CloudsError> {
            Ok(())
        }
    }

    fn memory(session: Option<Arc<CpSession>>) -> (ObjectMemory, SegmentStore) {
        let store = SegmentStore::new();
        let data = SysName::from_parts(1, 1);
        let heap = SysName::from_parts(1, 2);
        let data_len = 2 * PAGE_SIZE as u64;
        let heap_len = 4 * PAGE_SIZE as u64;
        store.create(data, data_len).unwrap();
        store.create(heap, heap_len).unwrap();
        let part: Arc<dyn Partition> = Arc::new(LocalPartition::new(
            store.clone(),
            Arc::new(VirtualClock::new()),
            CostModel::zero(),
        ));
        let cache = Arc::new(PageCache::new(64));
        let mut space = AddressSpace::new(cache, part);
        space.map(DATA_BASE, data, 0, data_len, true).unwrap();
        space.map(HEAP_BASE, heap, 0, heap_len, true).unwrap();
        (
            ObjectMemory::new(space, data, data_len, heap, heap_len, session),
            store,
        )
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let (m, _store) = memory(None);
        m.write_u64(0, 99).unwrap();
        m.write_i32(8, -5).unwrap();
        assert_eq!(m.read_u64(0).unwrap(), 99);
        assert_eq!(m.read_i32(8).unwrap(), -5);
    }

    #[test]
    fn value_storage_roundtrip() {
        let (m, _store) = memory(None);
        let v = vec!["a".to_string(), "bc".to_string()];
        let used = m.write_value(100, &v).unwrap();
        assert!(used > 8);
        let back: Vec<String> = m.read_value(100).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn out_of_range_rejected() {
        let (m, _store) = memory(None);
        assert!(m.read_bytes(2 * PAGE_SIZE as u64 - 4, 8).is_err());
        assert!(m.write_u64(2 * PAGE_SIZE as u64, 1).is_err());
    }

    #[test]
    fn heap_alloc_free_reuse() {
        let (m, _store) = memory(None);
        let a = m.heap_alloc(100).unwrap();
        let b = m.heap_alloc(100).unwrap();
        assert_ne!(a, b);
        m.heap_write(a, b"heap data").unwrap();
        assert_eq!(m.heap_read(a, 9).unwrap(), b"heap data");
        m.heap_free(a, 100).unwrap();
        // First-fit reuses the freed block.
        let c = m.heap_alloc(64).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn heap_exhaustion_is_reported() {
        let (m, _store) = memory(None);
        let mut allocated = 0u64;
        loop {
            match m.heap_alloc(PAGE_SIZE as u64) {
                Ok(_) => allocated += 1,
                Err(CloudsError::Heap(_)) => break,
                Err(other) => panic!("unexpected error {other}"),
            }
            assert!(allocated < 10, "heap should exhaust after <4 pages");
        }
        assert!(allocated >= 3);
    }

    #[test]
    fn cp_session_writes_are_shadowed_not_canonical() {
        let hooks: Arc<dyn LockHooks> = Arc::new(NopHooks);
        let session = CpSession::new(1, hooks);
        let (m, store) = memory(Some(Arc::clone(&session)));
        m.write_u64(0, 777).unwrap();
        // Read-your-writes through the shadow.
        assert_eq!(m.read_u64(0).unwrap(), 777);
        // The canonical store is untouched.
        let raw = store
            .get(SysName::from_parts(1, 1))
            .unwrap()
            .read()
            .read(0, 8)
            .unwrap();
        assert_eq!(u64::from_le_bytes(raw.try_into().unwrap()), 0);
        assert_eq!(session.shadow_count(), 1);
        assert_eq!(session.write_set().len(), 1);
    }

    #[test]
    fn cp_session_reads_lock_and_pass_through() {
        let hooks: Arc<dyn LockHooks> = Arc::new(NopHooks);
        let session = CpSession::new(1, hooks);
        // Seed canonical data with a non-cp writer first.
        let (plain, store) = memory(None);
        plain.write_u64(16, 31337).unwrap();
        plain.flush().unwrap();
        drop(plain);
        let data = SysName::from_parts(1, 1);
        let heap = SysName::from_parts(1, 2);
        let part: Arc<dyn Partition> = Arc::new(LocalPartition::new(
            store,
            Arc::new(VirtualClock::new()),
            CostModel::zero(),
        ));
        let cache = Arc::new(PageCache::new(64));
        let mut space = AddressSpace::new(cache, part);
        space
            .map(DATA_BASE, data, 0, 2 * PAGE_SIZE as u64, true)
            .unwrap();
        space
            .map(HEAP_BASE, heap, 0, 4 * PAGE_SIZE as u64, true)
            .unwrap();
        let m = ObjectMemory::new(
            space,
            data,
            2 * PAGE_SIZE as u64,
            heap,
            4 * PAGE_SIZE as u64,
            Some(Arc::clone(&session)),
        );
        assert_eq!(m.read_u64(16).unwrap(), 31337);
        assert_eq!(session.read_set(), vec![data]);
        assert_eq!(session.shadow_count(), 0);
    }

    #[test]
    fn cp_heap_allocation_is_transactional() {
        let hooks: Arc<dyn LockHooks> = Arc::new(NopHooks);
        let session = CpSession::new(1, hooks);
        let (m, store) = memory(Some(Arc::clone(&session)));
        let a = m.heap_alloc(64).unwrap();
        m.heap_write(a, b"txn").unwrap();
        assert_eq!(m.heap_read(a, 3).unwrap(), b"txn");
        // Nothing reached the canonical heap segment: even the heap
        // header is still zero.
        let raw = store
            .get(SysName::from_parts(1, 2))
            .unwrap()
            .read()
            .read(0, 8)
            .unwrap();
        assert_eq!(raw, vec![0u8; 8]);
    }

    #[test]
    fn write_spanning_pages_under_session() {
        let hooks: Arc<dyn LockHooks> = Arc::new(NopHooks);
        let session = CpSession::new(1, hooks);
        let (m, _store) = memory(Some(session.clone()));
        let data: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        let off = PAGE_SIZE as u64 - 150;
        m.write_bytes(off, &data).unwrap();
        assert_eq!(m.read_bytes(off, 300).unwrap(), data);
        assert_eq!(session.shadow_count(), 2);
    }
}
