//! Automated data-server failover for replicated segment homes.
//!
//! Data servers beacon one another with RaTP heartbeats
//! ([`RatpNode::send_heartbeat`]) on a fixed real-time tick. Each tick
//! also charges the node's virtual clock one beacon interval: an
//! otherwise idle system (zero cost model, no workload traffic) would
//! never advance virtual time, and a failure detector that compares
//! virtual stamps needs silence to *accumulate*. Because detection runs
//! entirely in virtual time, a monitor thread stalled by a loaded CI
//! machine cannot manufacture silence — real-time stalls simply do not
//! advance the clock.
//!
//! For every replicated segment, the **first backup** (and only it — a
//! single deterministic successor, so two backups never race to promote)
//! watches the primary with a [`FailureDetector`]. When the beacon gap
//! exceeds the budget it double-checks with a bounded verification call:
//! the primary's transport answers even when its own monitor thread is
//! busy, so a merely-slow primary is never deposed. Only then does the
//! backup promote itself — locally first ([`DsmServer::promote_segment`]
//! flips who answers home probes, which is what actually re-homes
//! in-flight client traffic), then in the naming directory, so a later
//! restart of the dead ex-primary resyncs into its demoted role instead
//! of waking up believing it still owns the segment.

use clouds_dsm::proto::{self, DsmRequest};
use clouds_dsm::{ports, DsmServer};
use clouds_naming::NameClient;
use clouds_ra::SysName;
use clouds_ratp::{CallError, FailureDetector, RatpNode};
use clouds_simnet::{NodeId, Vt};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for the failover monitor on a data server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Virtual-time beacon period; also the quantum charged to the
    /// node's clock per real-time tick.
    pub beacon_interval: Vt,
    /// Consecutive beacon losses the detector tolerates.
    pub missed_beacons: u64,
    /// Worst-case extra delivery delay the detector absorbs (chaos
    /// schedules jitter frames by up to `horizon / 32`).
    pub max_jitter: Vt,
    /// Real-time period of the monitor loop.
    pub tick: Duration,
    /// Retry budget for the verification call to a suspected-dead
    /// primary. Deliberately small: the call *blocks the monitor loop*,
    /// so its wall time (`verify_retries` × the node's RaTP retry
    /// interval) both delays the promotion and widens the worst-case
    /// measured gap. False-positive safety comes from the silence
    /// re-check after the call, not from a long retry budget.
    pub verify_retries: u32,
}

impl FailoverConfig {
    /// The default cadence (5 ms beacons, two tolerated losses, 5 ms
    /// real ticks) sized for `max_jitter` of network delay.
    pub fn for_jitter(max_jitter: Vt) -> FailoverConfig {
        FailoverConfig {
            beacon_interval: Vt::from_millis(5),
            missed_beacons: 2,
            max_jitter,
            tick: Duration::from_millis(5),
            verify_retries: 4,
        }
    }

    /// The failure detector this configuration implies.
    pub fn detector(&self) -> FailureDetector {
        FailureDetector::tolerant(self.beacon_interval, self.missed_beacons, self.max_jitter)
    }
}

impl Default for FailoverConfig {
    /// Jitter allowance of 7 ms: covers the chaos schedules' bound
    /// (`horizon / 32` = 6.25 ms at the CI horizon of 200 ms).
    fn default() -> FailoverConfig {
        FailoverConfig::for_jitter(Vt::from_millis(7))
    }
}

/// Spawn the monitor loop; flipping the returned flag stops it after at
/// most one more tick.
pub(crate) fn spawn_monitor(
    ratp: Arc<RatpNode>,
    dsm: Arc<DsmServer>,
    peers: Vec<NodeId>,
    naming_server: NodeId,
    config: FailoverConfig,
) -> Arc<AtomicBool> {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    std::thread::Builder::new()
        .name(format!("failover-{}", ratp.node_id().0))
        .spawn(move || monitor_loop(&ratp, &dsm, &peers, naming_server, config, &stop_flag))
        .expect("spawn failover monitor");
    stop
}

/// Refresh every replicated segment's membership view from the naming
/// directory. Returns `true` only when every lookup reached a verdict —
/// an adopted set, or `NotFound` for a segment the directory never knew
/// (nothing could have re-homed it through the directory). Any
/// transport failure returns `false`: the caller must keep the server
/// fenced and retry, or a rebooted ex-primary would resume serving on a
/// stale pre-crash view in which it is still primary.
pub(crate) fn refresh_replica_views(dsm: &DsmServer, naming: &NameClient) -> bool {
    let mut all_refreshed = true;
    for (seg, _, _) in dsm.replicated_segments() {
        match naming.lookup_replicas(seg) {
            Ok(set) => {
                let mut members = vec![set.primary_node()];
                members.extend(set.backup_nodes());
                dsm.adopt_replica_config(seg, members, set.epoch);
            }
            Err(clouds_naming::NameError::NotFound(_)) => {}
            Err(_) => all_refreshed = false,
        }
    }
    all_refreshed
}

fn monitor_loop(
    ratp: &Arc<RatpNode>,
    dsm: &Arc<DsmServer>,
    peers: &[NodeId],
    naming_server: NodeId,
    config: FailoverConfig,
    stop: &AtomicBool,
) {
    let detector = config.detector();
    let naming = NameClient::new(ratp, naming_server);
    let gap_hist = ratp.obs().histogram("core.failover.gap");
    let false_alarms = ratp.obs().counter("core.failover.false_alarms");
    let me = ratp.node_id();
    // Promotions applied locally but not yet recorded in the naming
    // directory (its host may be briefly unreachable): retried each tick.
    let mut pending: Vec<(SysName, u64)> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(config.tick);
        ratp.clock().charge(config.beacon_interval);
        for &peer in peers {
            ratp.send_heartbeat(peer);
        }
        // A restart that could not reach the directory leaves the
        // server fenced ([`crate::node::DataServer::resync_replicas`]);
        // finish the resync here, where naming calls are already
        // retried every tick. While fenced, skip the promotion sweep
        // too — promoting on a stale pre-crash view could depose the
        // wrong node.
        if dsm.is_recovering() {
            // A wiped-but-not-replayed store means the machine has not
            // rebooted yet: its replica map is empty placeholder state,
            // and "refreshing" zero segments must not lift the fence.
            // Replay is the restart path's job; stand by until then.
            if dsm.needs_replay() || !refresh_replica_views(dsm, &naming) {
                continue;
            }
            dsm.finish_recovery();
        }
        let now = ratp.clock().now();
        for (seg, members, epoch) in dsm.replicated_segments() {
            if members.get(1) != Some(&me) {
                continue; // only the first backup may promote
            }
            let primary = members[0];
            let last = ratp.last_heartbeat(primary);
            if !detector.is_dead(last, now) {
                continue;
            }
            if verify_alive(ratp, primary, seg, config.verify_retries) {
                false_alarms.inc();
                continue;
            }
            // Second chance: the verify call burned several retry
            // intervals of real time. A live primary that merely lost a
            // beacon run to a lossy link will almost surely have landed
            // a fresh one meanwhile; a dead one stays silent. Requiring
            // the silence to *persist* through verification makes a
            // false promotion need an unbroken loss streak across both
            // windows — vanishingly unlikely even at chaos loss rates.
            if ratp.last_heartbeat(primary) > last {
                false_alarms.inc();
                continue;
            }
            // The availability gap this failover leaves: virtual silence
            // observed at the detection decision. Bounded by the
            // detector budget plus one verification window (a preceding
            // verify may have delayed this tick) plus a tick's quantum
            // of granularity; total unavailability adds the final
            // verification window on top.
            gap_hist.record(last.map_or(Vt::ZERO, |l| now.saturating_sub(l)));
            let next_epoch = epoch + 1;
            if dsm.promote_segment(seg, next_epoch).is_ok() {
                pending.push((seg, next_epoch));
            }
        }
        pending.retain(|&(seg, epoch)| match naming.promote(seg, me, epoch) {
            Ok(_) => false,
            // Never registered with the directory: nothing to re-home.
            Err(clouds_naming::NameError::NotFound(_)) => false,
            Err(_) => true, // directory unreachable: retry next tick
        });
    }
}

/// Is the suspected primary actually answering? Any reply — even an
/// error — proves the node's transport is alive, in which case the
/// silence was a beacon pathology and promotion would be a split brain.
fn verify_alive(ratp: &Arc<RatpNode>, primary: NodeId, seg: SysName, retries: u32) -> bool {
    match ratp.call_with_budget(
        primary,
        ports::DSM_SERVER,
        proto::encode(&DsmRequest::SegmentLen { seg }),
        retries,
    ) {
        Ok(_) | Err(CallError::ServiceNotFound(_)) => true,
        Err(_) => false,
    }
}
