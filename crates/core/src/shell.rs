//! The Clouds shell (§3.1).
//!
//! "A user invokes a Clouds object by specifying the object, the entry
//! point and the arguments to the Clouds shell. The Clouds shell sends
//! an invocation request to a compute server and the invocation proceeds
//! under Clouds using a Clouds thread."
//!
//! The shell is a thin command interpreter over a [`Workstation`].
//! Shell-invocable entry points receive their arguments as a
//! codec-encoded `Vec<String>` — the shell is untyped, exactly like
//! typing words at a 1988 terminal. Commands:
//!
//! ```text
//! classes                      list loaded classes
//! create <class> <name>        instantiate and register a user name
//! ls [prefix]                  list registered names
//! invoke <name>.<entry> [w..]  run an entry point, print its terminal output
//! destroy <name>               destroy an object and unregister it
//! help                         this text
//! ```

use crate::error::CloudsError;
use crate::node::Workstation;
use std::fmt::Write as _;

/// A user shell bound to one workstation.
pub struct Shell<'a> {
    ws: &'a Workstation,
    classes: Vec<String>,
}

impl std::fmt::Debug for Shell<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shell").finish()
    }
}

const HELP: &str = "\
commands:
  classes                      list loaded classes
  create <class> <name>        instantiate and register a user name
  ls [prefix]                  list registered names
  invoke <name>.<entry> [w..]  run an entry point (args: whitespace words)
  destroy <name>               destroy an object and unregister it
  help                         this text
";

impl<'a> Shell<'a> {
    /// Open a shell on `ws`. `classes` is shown by the `classes`
    /// command (the registry itself lives on the compute servers).
    pub fn new(ws: &'a Workstation, classes: Vec<String>) -> Shell<'a> {
        Shell { ws, classes }
    }

    /// Execute one command line, returning what the shell prints.
    ///
    /// # Errors
    ///
    /// Malformed commands and all OS-level failures, formatted for the
    /// user.
    pub fn exec(&self, line: &str) -> Result<String, CloudsError> {
        let mut words = line.split_whitespace();
        let Some(command) = words.next() else {
            return Ok(String::new());
        };
        let rest: Vec<&str> = words.collect();
        match command {
            "help" => Ok(HELP.to_string()),
            "classes" => Ok(self
                .classes
                .iter()
                .map(|c| format!("{c}\n"))
                .collect::<String>()),
            "create" => {
                let [class, name] = rest[..] else {
                    return Err(CloudsError::BadArguments(
                        "usage: create <class> <name>".into(),
                    ));
                };
                let sysname = self.ws.create_object(class, name)?;
                Ok(format!("created {name} = {sysname}\n"))
            }
            "ls" => {
                let prefix = rest.first().copied().unwrap_or("");
                let names = self.ws.naming().list(prefix)?;
                let mut out = String::new();
                for (name, sysname) in names {
                    writeln!(out, "{name:<24} {sysname}").expect("string write");
                }
                Ok(out)
            }
            "invoke" => {
                let Some(target) = rest.first() else {
                    return Err(CloudsError::BadArguments(
                        "usage: invoke <name>.<entry> [args..]".into(),
                    ));
                };
                let Some((name, entry)) = target.split_once('.') else {
                    return Err(CloudsError::BadArguments(
                        "target must be <name>.<entry>".into(),
                    ));
                };
                let args: Vec<String> = rest[1..].iter().map(|s| s.to_string()).collect();
                let thread = self.ws.spawn(name, entry, crate::encode_args(&args)?);
                let id = thread.id();
                let result = thread.join()?;
                let mut out = self.ws.output(id);
                // Entry points may also return a displayable string.
                if let Ok(text) = crate::decode_args::<String>(&result) {
                    if !text.is_empty() {
                        writeln!(out, "{text}").expect("string write");
                    }
                }
                Ok(out)
            }
            "destroy" => {
                let [name] = rest[..] else {
                    return Err(CloudsError::BadArguments("usage: destroy <name>".into()));
                };
                let sysname = self.ws.naming().lookup(name)?;
                // Route through a compute server via the naming entry.
                self.ws.destroy_object(sysname)?;
                self.ws.naming().unregister(name)?;
                Ok(format!("destroyed {name}\n"))
            }
            other => Err(CloudsError::BadArguments(format!(
                "unknown command {other:?}; try `help`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use clouds_simnet::CostModel;

    /// A shell-friendly greeter: args arrive as Vec<String>.
    struct Greeter;
    impl ObjectCode for Greeter {
        fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
            match entry {
                "greet" => {
                    let words: Vec<String> = crate::decode_args(args)?;
                    let who = words.first().cloned().unwrap_or_else(|| "world".into());
                    ctx.write_line(&format!("hello {who}"))?;
                    encode_result(&format!("greeted {who}"))
                }
                other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
            }
        }
    }

    fn shell_bed() -> Cluster {
        let cluster = Cluster::builder()
            .compute_servers(1)
            .data_servers(1)
            .workstations(1)
            .cost_model(CostModel::zero())
            .build()
            .unwrap();
        cluster.register_class("greeter", Greeter).unwrap();
        cluster
    }

    #[test]
    fn shell_session() {
        let cluster = shell_bed();
        let shell = Shell::new(cluster.workstation(0), cluster.registry().names());

        assert!(shell.exec("help").unwrap().contains("invoke"));
        assert_eq!(shell.exec("classes").unwrap(), "greeter\n");
        assert!(shell.exec("create greeter G1").unwrap().starts_with("created G1"));
        assert!(shell.exec("ls").unwrap().contains("G1"));

        let out = shell.exec("invoke G1.greet clouds").unwrap();
        assert!(out.contains("hello clouds"), "{out}");
        assert!(out.contains("greeted clouds"), "{out}");

        assert_eq!(shell.exec("destroy G1").unwrap(), "destroyed G1\n");
        assert!(shell.exec("ls").unwrap().is_empty());
    }

    #[test]
    fn shell_errors_are_friendly() {
        let cluster = shell_bed();
        let shell = Shell::new(cluster.workstation(0), vec![]);
        assert!(shell.exec("create greeter").is_err());
        assert!(shell.exec("invoke Nope.greet").is_err());
        assert!(shell.exec("frobnicate").is_err());
        assert!(shell.exec("").unwrap().is_empty());
        assert!(shell.exec("invoke notdotted").is_err());
    }
}
