//! The Clouds operating-system error type.

use clouds_ra::RaError;
use std::fmt;

/// Errors surfaced by the Clouds OS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CloudsError {
    /// A kernel / storage / DSM failure.
    Ra(RaError),
    /// An unknown class name.
    NoSuchClass(String),
    /// An unknown entry point on a class.
    NoSuchEntryPoint(String),
    /// An unknown object (bad sysname or destroyed object).
    NoSuchObject(clouds_ra::SysName),
    /// A name-service failure.
    Naming(String),
    /// Arguments or results failed to encode/decode.
    BadArguments(String),
    /// A transport failure reaching another node.
    Transport(String),
    /// The invoked entry point raised an application error.
    Application(String),
    /// A consistency violation: lock acquisition timed out after all
    /// retries (cp-threads), or commit failed.
    ConsistencyAbort(String),
    /// The object's persistent-heap is exhausted or corrupt.
    Heap(String),
    /// The thread executing the invocation panicked or disappeared.
    ThreadFailed(String),
}

impl fmt::Display for CloudsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudsError::Ra(e) => write!(f, "kernel error: {e}"),
            CloudsError::NoSuchClass(c) => write!(f, "no class named {c:?}"),
            CloudsError::NoSuchEntryPoint(e) => write!(f, "no entry point named {e:?}"),
            CloudsError::NoSuchObject(s) => write!(f, "no object {s}"),
            CloudsError::Naming(m) => write!(f, "naming: {m}"),
            CloudsError::BadArguments(m) => write!(f, "bad arguments: {m}"),
            CloudsError::Transport(m) => write!(f, "transport: {m}"),
            CloudsError::Application(m) => write!(f, "application error: {m}"),
            CloudsError::ConsistencyAbort(m) => write!(f, "consistency abort: {m}"),
            CloudsError::Heap(m) => write!(f, "persistent heap: {m}"),
            CloudsError::ThreadFailed(m) => write!(f, "thread failed: {m}"),
        }
    }
}

impl std::error::Error for CloudsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CloudsError::Ra(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RaError> for CloudsError {
    fn from(e: RaError) -> Self {
        CloudsError::Ra(e)
    }
}

impl From<clouds_naming::NameError> for CloudsError {
    fn from(e: clouds_naming::NameError) -> Self {
        CloudsError::Naming(e.to_string())
    }
}

impl From<clouds_ratp::CallError> for CloudsError {
    fn from(e: clouds_ratp::CallError) -> Self {
        CloudsError::Transport(e.to_string())
    }
}

impl From<clouds_codec::Error> for CloudsError {
    fn from(e: clouds_codec::Error) -> Self {
        CloudsError::BadArguments(e.to_string())
    }
}
