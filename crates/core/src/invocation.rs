//! The invocation context: what an executing entry point can do (§2).
//!
//! An [`Invocation`] is created by the object manager each time a thread
//! enters an object. It provides:
//!
//! * the object's persistent memory ([`Invocation::persistent`]);
//! * nested invocations of other objects, local (DSM-paged to this
//!   node) or on an explicit remote compute server — "the system may
//!   choose to execute the invocation on either A itself or on a
//!   different compute server B" (§3.2);
//! * name binding (§2.4's `rect.bind("Rect01")`);
//! * terminal I/O routed to the thread's originating workstation;
//! * distributed semaphores for inter-thread synchronization (§2.2);
//! * per-invocation and per-thread memory (§5.1);
//! * object creation under program control (§3.1).

use crate::error::CloudsError;
use crate::memory::ObjectMemory;
use crate::node::ComputeInner;
use crate::thread::{ThreadId, ThreadState};
use clouds_ra::SysName;
use clouds_simnet::{NodeId, Vt};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Execution context of one entry-point invocation.
pub struct Invocation<'a> {
    pub(crate) object: SysName,
    pub(crate) entry: String,
    pub(crate) memory: ObjectMemory,
    pub(crate) thread: &'a mut ThreadState,
    pub(crate) services: Arc<ComputeInner>,
    pub(crate) per_invocation: HashMap<String, Vec<u8>>,
}

impl fmt::Debug for Invocation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Invocation")
            .field("object", &self.object)
            .field("entry", &self.entry)
            .field("thread", &self.thread.id)
            .finish()
    }
}

impl Invocation<'_> {
    /// The object being executed.
    pub fn object(&self) -> SysName {
        self.object
    }

    /// The entry point name.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The executing thread's id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread.id
    }

    /// The compute server this invocation runs on.
    pub fn node_id(&self) -> NodeId {
        self.services.node
    }

    /// The object's persistent memory (data segment + persistent heap).
    pub fn persistent(&self) -> &ObjectMemory {
        &self.memory
    }

    /// Charge virtual CPU time for application computation, so
    /// experiments can model compute-bound work.
    pub fn charge(&self, cost: Vt) {
        self.services.kernel.clock().charge(cost);
    }

    // --- nested invocations ----------------------------------------------

    /// Invoke an entry point of another object on *this* compute server
    /// (its pages are demand-paged here through the DSM).
    ///
    /// # Errors
    ///
    /// Unknown objects/entries, storage failures, or the callee's error.
    pub fn invoke(&mut self, target: SysName, entry: &str, args: &[u8]) -> Result<Vec<u8>, CloudsError> {
        let services = Arc::clone(&self.services);
        services.invoke_local(self.thread, target, entry, args)
    }

    /// Invoke by user name (a name-server lookup, then [`Invocation::invoke`]).
    ///
    /// # Errors
    ///
    /// As for [`Invocation::invoke`], plus naming failures.
    pub fn invoke_named(
        &mut self,
        name: &str,
        entry: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, CloudsError> {
        let target = self.bind(name)?;
        self.invoke(target, entry, args)
    }

    /// Ship the invocation to compute server `node` instead of paging
    /// the object here. The thread logically continues there ("the
    /// thread sends an invocation request to B, which invokes the object
    /// and returns the results to the thread at A").
    ///
    /// # Errors
    ///
    /// As for [`Invocation::invoke`], plus transport failures.
    pub fn invoke_remote(
        &mut self,
        node: NodeId,
        target: SysName,
        entry: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, CloudsError> {
        self.services.invoke_remote(
            self.thread.id,
            self.thread.origin_workstation,
            node,
            target,
            entry,
            args,
        )
    }

    /// Invoke asynchronously: start a *new* Clouds thread on this
    /// compute server that runs `target.entry(args)` concurrently with
    /// the caller ("invoking objects both synchronously and
    /// asynchronously", §2.4). The handle joins for the result.
    pub fn invoke_async(
        &self,
        target: SysName,
        entry: &str,
        args: &[u8],
    ) -> crate::thread::ThreadHandle {
        self.services
            .start_thread_async(target, entry, args.to_vec(), self.thread.origin_workstation)
    }

    /// Translate a user name to a sysname via the name server.
    ///
    /// # Errors
    ///
    /// Naming failures.
    pub fn bind(&self, name: &str) -> Result<SysName, CloudsError> {
        Ok(self.services.naming.lookup(name)?)
    }

    /// Create a new object instance under program control, optionally
    /// registering a user name for it.
    ///
    /// # Errors
    ///
    /// Unknown class, storage/naming failures, constructor errors.
    pub fn create_object(
        &self,
        class: &str,
        user_name: Option<&str>,
    ) -> Result<SysName, CloudsError> {
        self.services.create_object(class, user_name, None)
    }

    // --- terminal I/O ------------------------------------------------------

    /// Write text to the thread's controlling terminal (on its
    /// originating workstation), or to the compute server's console for
    /// headless threads.
    ///
    /// # Errors
    ///
    /// Transport failures reaching the workstation.
    pub fn write_str(&self, text: &str) -> Result<(), CloudsError> {
        self.services
            .io_write(self.thread.origin_workstation, self.thread.id, text)
    }

    /// [`Invocation::write_str`] plus a newline.
    ///
    /// # Errors
    ///
    /// As for [`Invocation::write_str`].
    pub fn write_line(&self, text: &str) -> Result<(), CloudsError> {
        self.write_str(&format!("{text}\n"))
    }

    /// Read one line typed at the thread's terminal, waiting up to
    /// `wait_ms` of real time.
    ///
    /// # Errors
    ///
    /// Transport failures; `Ok(None)` when no input arrived.
    pub fn read_line(&self, wait_ms: u64) -> Result<Option<String>, CloudsError> {
        self.services
            .io_read(self.thread.origin_workstation, self.thread.id, wait_ms)
    }

    // --- synchronization ---------------------------------------------------

    /// Create a distributed counting semaphore.
    ///
    /// # Errors
    ///
    /// Transport failures or an already-existing semaphore.
    pub fn sem_create(&self, count: u32) -> Result<SysName, CloudsError> {
        self.services.sem_create(count)
    }

    /// P (down) on a semaphore, waiting up to `wait_ms`.
    ///
    /// Returns `true` if acquired.
    ///
    /// # Errors
    ///
    /// Transport failures or unknown semaphore.
    pub fn sem_p(&self, sem: SysName, wait_ms: u64) -> Result<bool, CloudsError> {
        self.services.sem_p(sem, wait_ms)
    }

    /// V (up) on a semaphore.
    ///
    /// # Errors
    ///
    /// Transport failures or unknown semaphore.
    pub fn sem_v(&self, sem: SysName) -> Result<(), CloudsError> {
        self.services.sem_v(sem)
    }

    // --- memory types (§5.1) ------------------------------------------------

    /// Per-invocation memory: private to this invocation, dropped when
    /// it returns.
    pub fn per_invocation(&mut self) -> &mut HashMap<String, Vec<u8>> {
        &mut self.per_invocation
    }

    /// Read a per-thread memory cell (object-scoped, thread-private,
    /// lives until the thread terminates).
    pub fn per_thread_get(&self, key: &str) -> Option<Vec<u8>> {
        self.thread
            .per_thread
            .get(&(self.object, key.to_string()))
            .cloned()
    }

    /// Write a per-thread memory cell.
    pub fn per_thread_set(&mut self, key: &str, value: Vec<u8>) {
        self.thread
            .per_thread
            .insert((self.object, key.to_string()), value);
    }

    /// Objects this thread has visited so far (thread-manager
    /// bookkeeping, §4.2).
    pub fn visited(&self) -> &[SysName] {
        &self.thread.visited
    }

}
