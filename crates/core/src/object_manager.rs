//! The user object manager system object (§4.2).
//!
//! "User-level objects are implemented through a system object called
//! the object manager. The object manager creates and deletes objects
//! and provides the object invocation facility."
//!
//! Activation builds the object's virtual space (header + data + heap
//! segments demand-paged through the node's partition) and caches it;
//! a *cold* activation additionally touches the object's code pages —
//! in the original system the code segment was demand-paged from the
//! data server like everything else, and that paging dominates the
//! paper's 103 ms worst-case null invocation (§4.3).

use crate::class::Class;
use crate::class::ClassRegistry;
use crate::consistency_hooks::CpSession;
use crate::error::CloudsError;
use crate::memory::{ObjectMemory, DATA_BASE, HEAP_BASE};
use crate::object::{ObjectMeta, OBJECT_MAGIC};
use clouds_ra::{AddressSpace, Partition, RaKernel, SysName, PAGE_SIZE};
use clouds_simnet::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Number of pages in an object's header+code segment beyond the header
/// page itself. Models the class code that had to be demand-paged on a
/// cold activation.
pub const CODE_PAGES: u32 = 8;

/// A cached activation: everything needed to run invocations on an
/// object without touching the data server again.
#[derive(Clone)]
pub(crate) struct Activation {
    pub meta: ObjectMeta,
    pub class: Class,
}

/// Per-compute-server object manager.
pub struct ObjectManager {
    kernel: Arc<RaKernel>,
    partition: Arc<dyn Partition>,
    /// Same partition as `partition` when the node is a DSM client;
    /// used for explicit replica placement.
    dsm: Option<Arc<clouds_dsm::DsmClientPartition>>,
    registry: ClassRegistry,
    activations: Mutex<HashMap<SysName, Activation>>,
}

impl fmt::Debug for ObjectManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectManager")
            .field("node", &self.kernel.node())
            .field("activations", &self.activations.lock().len())
            .finish()
    }
}

impl ObjectManager {
    /// Create the manager for one node.
    pub fn new(
        kernel: Arc<RaKernel>,
        partition: Arc<dyn Partition>,
        registry: ClassRegistry,
    ) -> ObjectManager {
        ObjectManager {
            kernel,
            partition,
            dsm: None,
            registry,
            activations: Mutex::new(HashMap::new()),
        }
    }

    /// Create the manager over a DSM client partition (the normal
    /// compute-server configuration), enabling explicit placement.
    pub fn new_dsm(
        kernel: Arc<RaKernel>,
        dsm: Arc<clouds_dsm::DsmClientPartition>,
        registry: ClassRegistry,
    ) -> ObjectManager {
        ObjectManager {
            kernel,
            partition: Arc::clone(&dsm) as Arc<dyn Partition>,
            dsm: Some(dsm),
            registry,
            activations: Mutex::new(HashMap::new()),
        }
    }

    /// The DSM client partition, when this node is a DSM client.
    pub fn dsm(&self) -> Option<&Arc<clouds_dsm::DsmClientPartition>> {
        self.dsm.as_ref()
    }

    /// The class registry in use.
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// Create a new object of `class_name`. All three segments are
    /// co-located; `placement` selects the data server (defaults to the
    /// partition's hash placement for the header's sysname).
    ///
    /// The constructor entry runs before the sysname is returned.
    ///
    /// # Errors
    ///
    /// Unknown class, storage failures, or constructor errors.
    pub fn create_object(
        &self,
        class_name: &str,
        placement: Option<NodeId>,
        run_construct: impl FnOnce(&ObjectMeta, &Class) -> Result<(), CloudsError>,
    ) -> Result<ObjectMeta, CloudsError> {
        let class = self.registry.get(class_name)?;
        let sysname = self.kernel.new_sysname();
        let data_seg = self.kernel.new_sysname();
        let heap_seg = self.kernel.new_sysname();
        let data_len = class.code().data_segment_len().max(8);
        let heap_len = class.code().heap_segment_len();
        let header_len = (1 + CODE_PAGES) as u64 * PAGE_SIZE as u64;

        let create_at = |seg: SysName, len: u64| -> Result<(), CloudsError> {
            match placement {
                Some(home) => self.create_segment_at(seg, len, home),
                None => Ok(self.partition.create_segment(seg, len)?),
            }
        };
        create_at(sysname, header_len)?;
        create_at(data_seg, data_len)?;
        if heap_len > 0 {
            create_at(heap_seg, heap_len)?;
        }

        let meta = ObjectMeta {
            magic: OBJECT_MAGIC,
            sysname,
            class_name: class_name.to_string(),
            data_seg,
            data_len,
            heap_seg,
            heap_len,
        };
        self.partition.write_back(sysname, 0, &meta.to_page()?)?;
        run_construct(&meta, &class)?;
        Ok(meta)
    }

    fn create_segment_at(&self, seg: SysName, len: u64, home: NodeId) -> Result<(), CloudsError> {
        // Explicit placement is only meaningful on a DSM partition; a
        // local partition has a single store anyway.
        match &self.dsm {
            Some(dsm) => Ok(dsm.create_segment_at(seg, len, home)?),
            None => Ok(self.partition.create_segment(seg, len)?),
        }
    }

    /// Destroy an object and all its segments.
    ///
    /// # Errors
    ///
    /// Unknown object or storage failures.
    pub fn destroy_object(&self, sysname: SysName) -> Result<(), CloudsError> {
        let meta = ObjectMeta::load(&*self.partition, sysname)?;
        self.activations.lock().remove(&sysname);
        self.partition.destroy_segment(meta.data_seg)?;
        if meta.heap_len > 0 {
            self.partition.destroy_segment(meta.heap_seg)?;
        }
        self.partition.destroy_segment(sysname)?;
        Ok(())
    }

    /// Activate an object: load its header (and, cold, its code pages),
    /// resolve the class, and cache the result.
    ///
    /// # Errors
    ///
    /// [`CloudsError::NoSuchObject`] / [`CloudsError::NoSuchClass`] /
    /// storage failures.
    pub(crate) fn activate(&self, sysname: SysName) -> Result<Activation, CloudsError> {
        if let Some(act) = self.activations.lock().get(&sysname) {
            return Ok(act.clone());
        }
        // Cold path: page in the header…
        let meta = ObjectMeta::load(&*self.partition, sysname)?;
        // …and the code pages (demand paging the class code, which
        // dominates the cold invocation cost in §4.3).
        let header_pages = (self.partition.segment_len(sysname)? as usize).div_ceil(PAGE_SIZE);
        for page in 1..header_pages as u32 {
            let _ = self.partition.fetch_page_transient(sysname, page)?;
        }
        let class = self.registry.get(&meta.class_name)?;
        let act = Activation { meta, class };
        self.activations
            .lock()
            .insert(sysname, act.clone());
        Ok(act)
    }

    /// Whether an object is currently activated (hot) on this node.
    pub fn is_activated(&self, sysname: SysName) -> bool {
        self.activations.lock().contains_key(&sysname)
    }

    /// Drop an activation (e.g. for cold-path experiments).
    pub fn deactivate(&self, sysname: SysName) {
        self.activations.lock().remove(&sysname);
    }

    /// Drop all activations (crash simulation).
    pub fn deactivate_all(&self) {
        self.activations.lock().clear();
    }

    /// Build the memory view for one invocation of an activated object.
    pub(crate) fn build_memory(
        &self,
        act: &Activation,
        session: Option<Arc<CpSession>>,
    ) -> Result<ObjectMemory, CloudsError> {
        let mut space = AddressSpace::new(
            Arc::clone(self.kernel.page_cache()),
            Arc::clone(&self.partition),
        );
        space.map(DATA_BASE, act.meta.data_seg, 0, act.meta.data_len, true)?;
        if act.meta.heap_len > 0 {
            space.map(HEAP_BASE, act.meta.heap_seg, 0, act.meta.heap_len, true)?;
        }
        Ok(ObjectMemory::new(
            space,
            act.meta.data_seg,
            act.meta.data_len,
            act.meta.heap_seg,
            act.meta.heap_len,
            session,
        ))
    }

    /// The kernel this manager belongs to.
    pub fn kernel(&self) -> &Arc<RaKernel> {
        &self.kernel
    }

    /// The partition used for all object storage.
    pub fn partition(&self) -> &Arc<dyn Partition> {
        &self.partition
    }
}
